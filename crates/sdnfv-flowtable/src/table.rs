//! The per-host flow table and its thread-safe wrapper.
//!
//! # Classifier layout
//!
//! The table keeps two structures, matching how OpenFlow switches split
//! their TCAM from their exact-match tables:
//!
//! * **Exact index** — fully-specified `/32` five-tuple rules live in a
//!   hash map keyed by `(step, flow key)`. The common case (a packet of an
//!   established flow at a service) is one hash probe; exact insert/remove
//!   is O(1) and never touches the wildcard structure.
//! * **Tuple space** — wildcard rules are grouped by *mask shape* (which
//!   [`FlowMatch`] fields are constrained, plus the two prefix lengths).
//!   Each shape owns a hash table keyed by the rule's masked tuple, so a
//!   lookup probes each shape with one hash of the packet's masked fields.
//!   Shapes are kept sorted by their highest-priority rule, so the probe
//!   loop exits as soon as no remaining shape can beat the best candidate.
//!   Lookup cost is O(distinct mask shapes), not O(rules).
//!
//! # Lifecycle
//!
//! Rules may carry OpenFlow-style idle and hard timeouts. Expiry is
//! *lazy* — a lookup that touches an expired rule evicts it on the spot —
//! plus an amortized [`FlowTable::sweep`] driven from the owner's clock
//! (a lazy-deletion deadline heap, so a sweep only inspects rules whose
//! earliest possible deadline has passed). Evictions are queued as
//! [`EvictedRule`] events for the data plane to drain and forward to the
//! control plane and to NF flow-state cleanup.

use parking_lot::RwLock;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

use sdnfv_proto::flow::{FlowKey, IpProtocol};

use crate::matching::FlowMatch;
use crate::rule::{Action, Decision, FlowRule, RuleId};
use crate::types::{RulePort, ServiceId};

/// Counters exported by a [`FlowTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Total lookups performed.
    pub lookups: u64,
    /// Lookups that matched a rule.
    pub hits: u64,
    /// Lookups that matched no rule (table misses, i.e. controller punts).
    pub misses: u64,
    /// Rules evicted because their idle timeout elapsed without traffic.
    pub evicted_idle: u64,
    /// Rules evicted because their hard timeout elapsed.
    pub evicted_hard: u64,
}

/// Why a rule was evicted from the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The rule's idle timeout elapsed with no lookup hitting it.
    Idle,
    /// The rule's hard timeout elapsed (installation age), regardless of
    /// traffic.
    Hard,
}

/// A rule-eviction event, queued by the table and drained by the data
/// plane ([`FlowTable::take_evicted`]) so the control plane learns which
/// flows died and NF per-flow state can be scrubbed.
#[derive(Debug, Clone, PartialEq)]
pub struct EvictedRule {
    /// The evicted rule's id.
    pub id: RuleId,
    /// The evicted rule itself (its matcher and final action list).
    pub rule: FlowRule,
    /// For exact per-flow rules, the `(step, 5-tuple)` index key — the
    /// handle NF flow-state cleanup needs. `None` for wildcard rules.
    pub exact: Option<(RulePort, FlowKey)>,
    /// Why the rule expired.
    pub reason: EvictReason,
}

/// One installed rule plus its per-entry bookkeeping: the hit counter
/// (folded in, so a lookup does not probe a side map), the shared action
/// list handed out in [`Decision`]s without cloning, and the timestamps
/// the timeout lifecycle runs on.
#[derive(Debug, Clone)]
struct RuleEntry {
    rule: FlowRule,
    /// `rule.actions` shared as an `Arc` so lookups are allocation-free;
    /// rebuilt whenever a bulk mutation changes the action list. The
    /// [`Action::Trace`] marker is stripped here (and surfaced as `trace`),
    /// so decisions only ever carry forwarding actions.
    shared_actions: Arc<[Action]>,
    /// Whether the rule carried an [`Action::Trace`] marker.
    trace: bool,
    hits: u64,
    installed_at_ns: u64,
    last_hit_ns: u64,
}

fn forwarding_actions(actions: &[Action]) -> (Arc<[Action]>, bool) {
    let trace = actions.contains(&Action::Trace);
    let shared: Arc<[Action]> = if trace {
        actions
            .iter()
            .copied()
            .filter(|a| *a != Action::Trace)
            .collect()
    } else {
        actions.to_vec().into()
    };
    (shared, trace)
}

impl RuleEntry {
    fn new(rule: FlowRule, now_ns: u64) -> Self {
        let (shared_actions, trace) = forwarding_actions(&rule.actions);
        RuleEntry {
            rule,
            shared_actions,
            trace,
            hits: 0,
            installed_at_ns: now_ns,
            last_hit_ns: now_ns,
        }
    }

    fn refresh_shared_actions(&mut self) {
        let (shared, trace) = forwarding_actions(&self.rule.actions);
        self.shared_actions = shared;
        self.trace = trace;
    }

    /// The earliest instant at which the entry *could* expire (the
    /// deadline-heap key). `None` when the rule has no timeout.
    fn earliest_deadline(&self) -> Option<u64> {
        let hard = self
            .rule
            .hard_timeout_ns
            .map(|t| self.installed_at_ns.saturating_add(t));
        let idle = self
            .rule
            .idle_timeout_ns
            .map(|t| self.last_hit_ns.saturating_add(t));
        match (hard, idle) {
            (Some(h), Some(i)) => Some(h.min(i)),
            (Some(h), None) => Some(h),
            (None, Some(i)) => Some(i),
            (None, None) => None,
        }
    }

    /// Whether the entry is expired at `now_ns` (hard timeout checked
    /// first, mirroring OpenFlow's removal-reason precedence).
    fn expiry(&self, now_ns: u64) -> Option<EvictReason> {
        if let Some(hard) = self.rule.hard_timeout_ns {
            if now_ns >= self.installed_at_ns.saturating_add(hard) {
                return Some(EvictReason::Hard);
            }
        }
        if let Some(idle) = self.rule.idle_timeout_ns {
            if now_ns >= self.last_hit_ns.saturating_add(idle) {
                return Some(EvictReason::Idle);
            }
        }
        None
    }
}

/// Which [`FlowMatch`] fields a wildcard rule constrains — the tuple-space
/// grouping key. Two rules share a shape iff they mask the same fields
/// with the same prefix lengths, which also fixes their specificity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MaskShape {
    has_step: bool,
    /// `None` = source IP unconstrained; `Some(len)` = prefix of that
    /// length (0 is a legal, match-all prefix with its own specificity).
    src_len: Option<u8>,
    dst_len: Option<u8>,
    has_src_port: bool,
    has_dst_port: bool,
    has_protocol: bool,
}

/// A packet's (or rule's) field values masked down to one shape — the
/// per-shape hash key. Unconstrained fields are zeroed so they hash
/// identically for every packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MaskedTuple {
    step: Option<RulePort>,
    src: u32,
    dst: u32,
    src_port: u16,
    dst_port: u16,
    protocol: Option<IpProtocol>,
}

fn mask_addr(addr: Ipv4Addr, len: u8) -> u32 {
    if len == 0 {
        return 0;
    }
    u32::from(addr) & (u32::MAX << (32 - u32::from(len.min(32))))
}

impl MaskShape {
    fn of(m: &FlowMatch) -> Self {
        MaskShape {
            has_step: m.step.is_some(),
            src_len: m.src_ip.map(|p| p.len),
            dst_len: m.dst_ip.map(|p| p.len),
            has_src_port: m.src_port.is_some(),
            has_dst_port: m.dst_port.is_some(),
            has_protocol: m.protocol.is_some(),
        }
    }

    /// The masked tuple of a rule with this shape.
    fn mask_rule(&self, m: &FlowMatch) -> MaskedTuple {
        MaskedTuple {
            step: m.step,
            src: m.src_ip.map_or(0, |p| mask_addr(p.addr, p.len)),
            dst: m.dst_ip.map_or(0, |p| mask_addr(p.addr, p.len)),
            src_port: m.src_port.unwrap_or(0),
            dst_port: m.dst_port.unwrap_or(0),
            protocol: m.protocol,
        }
    }

    /// Projects a packet's `(step, key)` onto this shape: the resulting
    /// tuple equals a rule's masked tuple iff the rule matches the packet.
    fn project(&self, step: RulePort, key: &FlowKey) -> MaskedTuple {
        MaskedTuple {
            step: self.has_step.then_some(step),
            src: self.src_len.map_or(0, |len| mask_addr(key.src_ip, len)),
            dst: self.dst_len.map_or(0, |len| mask_addr(key.dst_ip, len)),
            src_port: if self.has_src_port { key.src_port } else { 0 },
            dst_port: if self.has_dst_port { key.dst_port } else { 0 },
            protocol: self.has_protocol.then_some(key.protocol),
        }
    }
}

/// All wildcard rules of one mask shape: a hash table keyed by masked
/// tuple, plus a priority histogram so the probe loop knows the shape's
/// current ceiling without scanning.
#[derive(Debug, Clone)]
struct ShapeBucket {
    shape: MaskShape,
    /// Specificity is a pure function of the shape, shared by every rule
    /// in the bucket.
    specificity: u32,
    /// Creation sequence — the deterministic tiebreak when two shapes have
    /// the same max priority.
    seq: u64,
    /// Masked tuple → `(priority, id)` candidates, sorted descending so
    /// the first live entry is the bucket's best match.
    rules: HashMap<MaskedTuple, Vec<(u16, RuleId)>>,
    /// Priority histogram over every rule in the bucket; the last key is
    /// the shape's max priority (the probe-order / early-exit key).
    priorities: std::collections::BTreeMap<u16, usize>,
}

impl ShapeBucket {
    fn max_priority(&self) -> u16 {
        self.priorities.keys().next_back().copied().unwrap_or(0)
    }

    fn is_empty(&self) -> bool {
        self.priorities.is_empty()
    }
}

/// The tuple-space classifier over all wildcard rules: one
/// [`ShapeBucket`] per distinct mask shape, kept sorted by descending max
/// priority (ties broken by creation order) for early-exit probing.
#[derive(Debug, Clone, Default)]
struct TupleSpace {
    shapes: Vec<ShapeBucket>,
    next_seq: u64,
}

impl TupleSpace {
    fn insert(&mut self, id: RuleId, rule: &FlowRule) {
        let shape = MaskShape::of(&rule.matcher);
        let tuple = shape.mask_rule(&rule.matcher);
        let index = match self.shapes.iter().position(|b| b.shape == shape) {
            Some(index) => index,
            None => {
                self.shapes.push(ShapeBucket {
                    shape,
                    specificity: rule.matcher.specificity(),
                    seq: self.next_seq,
                    rules: HashMap::new(),
                    priorities: std::collections::BTreeMap::new(),
                });
                self.next_seq += 1;
                self.shapes.len() - 1
            }
        };
        let bucket = &mut self.shapes[index];
        let ids = bucket.rules.entry(tuple).or_default();
        // Keep (priority desc, id desc): the first live entry wins.
        let at = ids.partition_point(|&(p, other)| (p, other.0) > (rule.priority, id.0));
        ids.insert(at, (rule.priority, id));
        *bucket.priorities.entry(rule.priority).or_insert(0) += 1;
        self.resort();
    }

    fn remove(&mut self, id: RuleId, rule: &FlowRule) {
        let shape = MaskShape::of(&rule.matcher);
        let tuple = shape.mask_rule(&rule.matcher);
        let Some(index) = self.shapes.iter().position(|b| b.shape == shape) else {
            return;
        };
        let bucket = &mut self.shapes[index];
        if let Some(ids) = bucket.rules.get_mut(&tuple) {
            if let Some(at) = ids.iter().position(|&(_, other)| other == id) {
                ids.remove(at);
                if let Some(count) = bucket.priorities.get_mut(&rule.priority) {
                    *count -= 1;
                    if *count == 0 {
                        bucket.priorities.remove(&rule.priority);
                    }
                }
            }
            if ids.is_empty() {
                bucket.rules.remove(&tuple);
            }
        }
        if bucket.is_empty() {
            self.shapes.remove(index);
        }
        self.resort();
    }

    /// Restores the probe order (max priority desc, creation seq asc).
    /// The shape count is small by construction — this is O(S log S) per
    /// rule-churn event, not per lookup.
    fn resort(&mut self) {
        self.shapes.sort_by(|a, b| {
            b.max_priority()
                .cmp(&a.max_priority())
                .then(a.seq.cmp(&b.seq))
        });
    }
}

/// The flow table held by one NF Manager.
///
/// Rules are matched by priority (highest first), then by match
/// specificity, then by recency of installation. Exact per-flow rules
/// take precedence over wildcard rules of equal priority; a
/// strictly-higher-priority wildcard still wins. See the module docs for
/// the classifier layout and the timeout lifecycle.
#[derive(Debug, Default, Clone)]
pub struct FlowTable {
    rules: HashMap<RuleId, RuleEntry>,
    exact: HashMap<(RulePort, FlowKey), RuleId>,
    wildcard: TupleSpace,
    next_id: u64,
    /// The table's notion of "now" (monotone, advanced by the owner's
    /// clock). All timeout comparisons use this, so behavior is identical
    /// under the real and the simulated clock.
    now_ns: u64,
    /// Lazy-deletion deadline heap: `(earliest possible expiry, rule id)`.
    /// Entries are not updated when traffic refreshes an idle deadline;
    /// a popped entry whose rule is gone or not yet expired is re-armed or
    /// discarded.
    deadlines: BinaryHeap<Reverse<(u64, u64)>>,
    /// Eviction events not yet drained by [`FlowTable::take_evicted`].
    evicted: Vec<EvictedRule>,
    stats: TableStats,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Advances the table clock (monotone). Timeouts only ever fire
    /// against this clock, so a table whose owner never advances it never
    /// expires anything.
    pub fn advance_clock(&mut self, now_ns: u64) {
        self.now_ns = self.now_ns.max(now_ns);
    }

    /// The table's current clock, in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.now_ns
    }

    /// Installs a rule and returns its id.
    ///
    /// Exact rules go to the exact index only and wildcard rules to their
    /// shape bucket only — no full-table re-sort on either path, so flow
    /// pinning stays O(1) in the table size. Installing an exact rule for
    /// a `(step, key)` that already has one replaces the old rule.
    pub fn insert(&mut self, rule: FlowRule) -> RuleId {
        let id = RuleId(self.next_id);
        self.next_id += 1;
        let entry = RuleEntry::new(rule, self.now_ns);
        if let Some(step_key) = entry.rule.matcher.exact_key() {
            if let Some(old) = self.exact.insert(step_key, id) {
                // The old rule would be unreachable (exact rules are only
                // found through the index); drop it rather than leak it.
                self.rules.remove(&old);
            }
        } else {
            self.wildcard.insert(id, &entry.rule);
        }
        if let Some(deadline) = entry.earliest_deadline() {
            self.deadlines.push(Reverse((deadline, id.0)));
        }
        self.rules.insert(id, entry);
        id
    }

    /// Removes a rule. O(1) for exact rules; O(shape bucket) for
    /// wildcards.
    pub fn remove(&mut self, id: RuleId) -> Option<FlowRule> {
        let entry = self.rules.remove(&id)?;
        self.unindex(id, &entry.rule);
        Some(entry.rule)
    }

    fn unindex(&mut self, id: RuleId, rule: &FlowRule) {
        if let Some(step_key) = rule.matcher.exact_key() {
            if self.exact.get(&step_key) == Some(&id) {
                self.exact.remove(&step_key);
            }
        } else {
            self.wildcard.remove(id, rule);
        }
    }

    /// Evicts a rule for `reason`: removes it from every index and queues
    /// the [`EvictedRule`] event.
    fn evict(&mut self, id: RuleId, reason: EvictReason) {
        let Some(entry) = self.rules.remove(&id) else {
            return;
        };
        let exact = entry.rule.matcher.exact_key();
        self.unindex_removed(id, &entry.rule, exact);
        match reason {
            EvictReason::Idle => self.stats.evicted_idle += 1,
            EvictReason::Hard => self.stats.evicted_hard += 1,
        }
        self.evicted.push(EvictedRule {
            id,
            rule: entry.rule,
            exact,
            reason,
        });
    }

    fn unindex_removed(&mut self, id: RuleId, rule: &FlowRule, exact: Option<(RulePort, FlowKey)>) {
        if let Some(step_key) = exact {
            if self.exact.get(&step_key) == Some(&id) {
                self.exact.remove(&step_key);
            }
        } else {
            self.wildcard.remove(id, rule);
        }
    }

    /// Looks up the rule governing a packet of flow `key` at `step`,
    /// counting the hit and refreshing the winning rule's idle timer.
    /// Expired rules encountered on the way are evicted lazily.
    pub fn lookup(&mut self, step: RulePort, key: &FlowKey) -> Option<Decision> {
        self.stats.lookups += 1;
        let (winner, expired) = self.probe(step, key);
        for (id, reason) in expired {
            self.evict(id, reason);
        }
        match winner {
            Some(id) => {
                self.stats.hits += 1;
                let now_ns = self.now_ns;
                let entry = self.rules.get_mut(&id).expect("probe returns live ids");
                entry.hits += 1;
                entry.last_hit_ns = now_ns;
                Some(Decision {
                    rule_id: id,
                    actions: Arc::clone(&entry.shared_actions),
                    parallel: entry.rule.parallel,
                    trace: entry.trace,
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Read-only lookup that does not update statistics or idle timers
    /// (used by tests and by the control plane when validating messages).
    /// Expired rules are skipped but not evicted (no `&mut`).
    pub fn peek(&self, step: RulePort, key: &FlowKey) -> Option<&FlowRule> {
        let (winner, _expired) = self.probe(step, key);
        winner.map(|id| &self.rules[&id].rule)
    }

    /// The classifier core: exact fast path + tuple-space probe.
    ///
    /// Returns the winning live rule id (if any) and the expired rules
    /// encountered, which the caller may evict. Win order: priority desc,
    /// then specificity desc, then insertion id desc; an exact rule beats
    /// any wildcard of equal priority.
    fn probe(&self, step: RulePort, key: &FlowKey) -> (Option<RuleId>, Vec<(RuleId, EvictReason)>) {
        let now_ns = self.now_ns;
        let mut expired: Vec<(RuleId, EvictReason)> = Vec::new();
        let exact = match self.exact.get(&(step, *key)).copied() {
            Some(id) => match self.rules[&id].expiry(now_ns) {
                Some(reason) => {
                    expired.push((id, reason));
                    None
                }
                None => Some(id),
            },
            None => None,
        };
        let exact_priority = exact.map(|id| self.rules[&id].rule.priority);
        let mut best: Option<(u16, u32, RuleId)> = None;
        for bucket in &self.wildcard.shapes {
            let ceiling = bucket.max_priority();
            // Shapes are sorted by max priority: once no remaining shape
            // can beat the best candidate (or tie with the exact rule,
            // which wins ties), stop probing.
            if let Some((best_priority, _, _)) = best {
                if ceiling < best_priority {
                    break;
                }
            }
            if let Some(exact_priority) = exact_priority {
                if ceiling <= exact_priority {
                    break;
                }
            }
            let tuple = bucket.shape.project(step, key);
            let Some(ids) = bucket.rules.get(&tuple) else {
                continue;
            };
            for &(priority, id) in ids {
                let entry = &self.rules[&id];
                if let Some(reason) = entry.expiry(now_ns) {
                    expired.push((id, reason));
                    continue;
                }
                debug_assert!(entry.rule.matcher.matches(step, key));
                if exact_priority.is_some_and(|ep| priority <= ep) {
                    break;
                }
                let candidate = (priority, bucket.specificity, id);
                if best.is_none_or(|(bp, bs, bi)| {
                    (priority, bucket.specificity, id.0) > (bp, bs, bi.0)
                }) {
                    best = Some(candidate);
                }
                // Entries are sorted (priority desc, id desc): the first
                // live one is this bucket's best.
                break;
            }
        }
        let winner = match (exact, best) {
            (Some(exact_id), Some((best_priority, _, best_id))) => {
                let exact_priority = self.rules[&exact_id].rule.priority;
                if best_priority > exact_priority {
                    Some(best_id)
                } else {
                    Some(exact_id)
                }
            }
            (Some(exact_id), None) => Some(exact_id),
            (None, Some((_, _, best_id))) => Some(best_id),
            (None, None) => None,
        };
        (winner, expired)
    }

    /// Evicts up to `max_evictions` expired rules whose deadline has
    /// passed, driven by the lazy-deletion deadline heap (only rules whose
    /// earliest possible deadline elapsed are inspected). Exact rules for
    /// which `protected` returns `true` — e.g. rules of a bucket mid
    /// re-home, whose export must not race an eviction — are deferred to a
    /// later sweep. Returns the number of rules evicted.
    pub fn sweep(
        &mut self,
        max_evictions: usize,
        protected: impl Fn(&(RulePort, FlowKey)) -> bool,
    ) -> usize {
        let now_ns = self.now_ns;
        let mut evictions = 0;
        let mut deferred: Vec<Reverse<(u64, u64)>> = Vec::new();
        while evictions < max_evictions {
            let Some(&Reverse((deadline, raw))) = self.deadlines.peek() else {
                break;
            };
            if deadline > now_ns {
                break;
            }
            self.deadlines.pop();
            let id = RuleId(raw);
            let Some(entry) = self.rules.get(&id) else {
                continue; // stale heap entry: the rule is already gone
            };
            match entry.expiry(now_ns) {
                Some(reason) => {
                    if let Some(step_key) = entry.rule.matcher.exact_key() {
                        if protected(&step_key) {
                            deferred.push(Reverse((deadline, raw)));
                            continue;
                        }
                    }
                    self.evict(id, reason);
                    evictions += 1;
                }
                None => {
                    // Traffic pushed the idle deadline forward since this
                    // heap entry was armed: re-arm at the new deadline.
                    if let Some(next) = entry.earliest_deadline() {
                        self.deadlines.push(Reverse((next, raw)));
                    }
                }
            }
        }
        self.deadlines.extend(deferred);
        evictions
    }

    /// Drains the eviction events accumulated by lazy lookup expiry and
    /// [`FlowTable::sweep`], in eviction order.
    pub fn take_evicted(&mut self) -> Vec<EvictedRule> {
        std::mem::take(&mut self.evicted)
    }

    /// Eviction events queued but not yet drained.
    pub fn pending_evictions(&self) -> usize {
        self.evicted.len()
    }

    /// Returns the rule with the given id.
    pub fn rule(&self, id: RuleId) -> Option<&FlowRule> {
        self.rules.get(&id).map(|entry| &entry.rule)
    }

    /// Returns the id of the exact per-flow rule installed for `(step, key)`,
    /// if one exists (wildcard rules are not considered).
    pub fn exact_rule_id(&self, step: RulePort, key: &FlowKey) -> Option<RuleId> {
        self.exact.get(&(step, *key)).copied()
    }

    /// Rule ids sorted in match order (priority desc, specificity desc,
    /// insertion desc) — computed on demand; the hot path no longer
    /// maintains a global order.
    fn sorted_ids(&self) -> Vec<RuleId> {
        let mut ids: Vec<RuleId> = self.rules.keys().copied().collect();
        ids.sort_by(|a, b| {
            let ra = &self.rules[a].rule;
            let rb = &self.rules[b].rule;
            rb.priority
                .cmp(&ra.priority)
                .then(rb.matcher.specificity().cmp(&ra.matcher.specificity()))
                .then(b.0.cmp(&a.0))
        });
        ids
    }

    /// Iterates over all installed rules in match order (a control-plane
    /// convenience; the order is computed on demand).
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, &FlowRule)> {
        self.sorted_ids()
            .into_iter()
            .map(move |id| (id, &self.rules[&id].rule))
    }

    /// Iterates over the exact per-flow rules, yielding each rule's id, its
    /// `(step, 5-tuple)` index key and the rule itself. This is the rule set
    /// a bucket re-home exports between shard partitions.
    pub fn exact_rules(
        &self,
    ) -> impl Iterator<Item = (RuleId, (RulePort, FlowKey), &FlowRule)> + '_ {
        self.exact
            .iter()
            .map(move |(step_key, id)| (*id, *step_key, &self.rules[id].rule))
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of times rule `id` has been hit.
    pub fn hit_count(&self, id: RuleId) -> u64 {
        self.rules.get(&id).map_or(0, |entry| entry.hits)
    }

    /// Resets every rule's hit counter (partition forks start fresh).
    fn reset_hit_counts(&mut self) {
        for entry in self.rules.values_mut() {
            entry.hits = 0;
        }
    }

    /// Lookup/hit/miss/eviction counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Updates the default action of every rule for service `service` whose
    /// match intersects `flows` — the table half of `ChangeDefault(F, S, T)`.
    ///
    /// Returns the number of rules updated. Only rules that already allow
    /// `new_default` (or rules explicitly forced with `force`) are changed,
    /// preserving the service-graph constraint that NFs may only steer along
    /// existing edges.
    pub fn change_default(
        &mut self,
        service: ServiceId,
        flows: &FlowMatch,
        new_default: Action,
        force: bool,
    ) -> usize {
        let mut updated = 0;
        for entry in self.rules.values_mut() {
            let applies = entry.rule.matcher.step == Some(RulePort::Service(service))
                && matches_intersect(&entry.rule.matcher, flows);
            if !applies {
                continue;
            }
            if entry.rule.allows(new_default) || force {
                entry.rule.set_default_action(new_default);
                entry.refresh_shared_actions();
                updated += 1;
            }
        }
        updated
    }

    /// Retargets rules whose default currently points at `service` so that
    /// they instead default to `new_default` — used for `SkipMe` (bypass the
    /// service) and `RequestMe` (steal the default edge) messages.
    ///
    /// Returns the number of rules updated.
    pub fn retarget_defaults(
        &mut self,
        pointing_at: ServiceId,
        flows: &FlowMatch,
        new_default: Action,
    ) -> usize {
        let mut updated = 0;
        for entry in self.rules.values_mut() {
            if entry.rule.default_action() == Some(Action::ToService(pointing_at))
                && matches_intersect(&entry.rule.matcher, flows)
                && new_default != Action::ToService(pointing_at)
            {
                entry.rule.set_default_action(new_default);
                entry.refresh_shared_actions();
                updated += 1;
            }
        }
        updated
    }

    /// Makes `action` the default of every rule that already lists it as an
    /// allowed action and whose match intersects `flows` — the table half of
    /// `RequestMe(F, S)` ("all nodes that have an edge to S set S as their
    /// default action").
    ///
    /// Returns the number of rules updated.
    pub fn promote_where_allowed(&mut self, flows: &FlowMatch, action: Action) -> usize {
        let mut updated = 0;
        for entry in self.rules.values_mut() {
            if entry.rule.allows(action)
                && entry.rule.default_action() != Some(action)
                && matches_intersect(&entry.rule.matcher, flows)
            {
                entry.rule.set_default_action(action);
                entry.refresh_shared_actions();
                updated += 1;
            }
        }
        updated
    }

    /// Rules whose step is the given service (the out-edges installed for it).
    pub fn rules_for_service(&self, service: ServiceId) -> Vec<(RuleId, &FlowRule)> {
        self.sorted_ids()
            .into_iter()
            .filter(|id| self.rules[id].rule.matcher.step == Some(RulePort::Service(service)))
            .map(|id| (id, &self.rules[&id].rule))
            .collect()
    }
}

/// Conservative intersection test between an installed rule's matcher and a
/// message's flow filter (see [`FlowMatch::intersects`]).
fn matches_intersect(rule: &FlowMatch, filter: &FlowMatch) -> bool {
    rule.intersects(filter)
}

/// A [`FlowTable`] shareable between the NF Manager threads.
///
/// The lock sits outside the per-packet fast path in the paper's design
/// (lookups are cached in packet descriptors); here a reader/writer lock
/// keeps the table consistent between the RX thread, TX threads and the Flow
/// Controller thread.
#[derive(Debug, Clone, Default)]
pub struct SharedFlowTable {
    inner: Arc<RwLock<FlowTable>>,
    /// Bumped on every mutation; lets lock-free per-thread lookup caches
    /// detect staleness cheaply.
    generation: Arc<std::sync::atomic::AtomicU64>,
}

impl SharedFlowTable {
    /// Creates an empty shared table.
    pub fn new() -> Self {
        SharedFlowTable::default()
    }

    fn bump(&self) {
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// A counter that increases on every mutation of the table. Cached
    /// lookup results tagged with an older generation must be discarded.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Installs a rule.
    pub fn insert(&self, rule: FlowRule) -> RuleId {
        self.bump();
        self.inner.write().insert(rule)
    }

    /// Removes a rule.
    pub fn remove(&self, id: RuleId) -> Option<FlowRule> {
        self.bump();
        self.inner.write().remove(id)
    }

    /// Looks up the decision for a flow at a step. If the lookup lazily
    /// evicted an expired rule on its way, the generation is bumped so
    /// stale cached decisions for the dead rule are discarded.
    pub fn lookup(&self, step: RulePort, key: &FlowKey) -> Option<Decision> {
        let mut guard = self.inner.write();
        let before = guard.stats.evicted_idle + guard.stats.evicted_hard;
        let decision = guard.lookup(step, key);
        let evicted = guard.stats.evicted_idle + guard.stats.evicted_hard > before;
        drop(guard);
        if evicted {
            self.bump();
        }
        decision
    }

    /// Advances the table clock to `now_ns` and evicts up to
    /// `max_evictions` expired rules (see [`FlowTable::sweep`]), skipping
    /// exact rules whose `(step, key)` is `protected` (mid-re-home).
    /// Returns the drained eviction events — including any accumulated
    /// from lazy lookup expiry since the last sweep — and bumps the
    /// generation only when there are any.
    pub fn sweep_expired(
        &self,
        now_ns: u64,
        max_evictions: usize,
        protected: impl Fn(&(RulePort, FlowKey)) -> bool,
    ) -> Vec<EvictedRule> {
        let mut guard = self.inner.write();
        guard.advance_clock(now_ns);
        guard.sweep(max_evictions, protected);
        let events = guard.take_evicted();
        drop(guard);
        if !events.is_empty() {
            self.bump();
        }
        events
    }

    /// Runs `f` with read access to the underlying table.
    pub fn with_read<R>(&self, f: impl FnOnce(&FlowTable) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` with write access to the underlying table. The table
    /// generation is bumped, so only use this for mutations.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut FlowTable) -> R) -> R {
        self.bump();
        f(&mut self.inner.write())
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Returns `true` if the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Lookup/hit/miss counters.
    pub fn stats(&self) -> TableStats {
        self.inner.read().stats()
    }

    /// Forks an independent deep copy of the table: same rules (ids,
    /// priorities and installation order preserved), its own lock, zeroed
    /// lookup counters and a fresh generation counter.
    ///
    /// This is the seeding step of per-shard partitioning
    /// ([`FlowTablePartitions`](crate::partition::FlowTablePartitions)):
    /// after the fork, mutations on either side are invisible to the other.
    pub fn fork(&self) -> SharedFlowTable {
        let mut copy = self.inner.read().clone();
        copy.stats = TableStats::default();
        copy.reset_hit_counts();
        SharedFlowTable {
            inner: Arc::new(RwLock::new(copy)),
            generation: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::IpPrefix;
    use sdnfv_proto::flow::IpProtocol;
    use std::net::Ipv4Addr;

    fn key(src_last: u8) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, src_last),
            Ipv4Addr::new(192, 168, 1, 1),
            1000,
            80,
            IpProtocol::Tcp,
        )
    }

    fn svc(id: u32) -> ServiceId {
        ServiceId::new(id)
    }

    #[test]
    fn wildcard_rule_matches_everything_at_step() {
        let mut table = FlowTable::new();
        let id = table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(svc(1))],
        ));
        let d = table.lookup(RulePort::Nic(0), &key(1)).unwrap();
        assert_eq!(d.rule_id, id);
        assert_eq!(d.default_action(), Some(Action::ToService(svc(1))));
        assert!(table.lookup(RulePort::Nic(1), &key(1)).is_none());
        assert_eq!(table.stats().hits, 1);
        assert_eq!(table.stats().misses, 1);
        assert_eq!(table.hit_count(id), 1);
    }

    #[test]
    fn trace_marker_is_stripped_from_decisions() {
        let mut table = FlowTable::new();
        let id = table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::Trace, Action::ToPort(2), Action::Drop],
        ));
        let d = table.lookup(RulePort::Nic(0), &key(1)).unwrap();
        assert_eq!(d.rule_id, id);
        assert!(d.trace, "Trace marker must raise the decision flag");
        // Forwarding semantics are untouched: the marker is filtered out, so
        // the default action is the first *forwarding* action.
        assert_eq!(d.default_action(), Some(Action::ToPort(2)));
        assert!(!d.allows(Action::Trace));
        assert!(d.allows(Action::Drop));

        // A rule without the marker yields trace == false.
        let plain = table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(1)),
            vec![Action::ToPort(0)],
        ));
        let d = table.lookup(RulePort::Nic(1), &key(1)).unwrap();
        assert_eq!(d.rule_id, plain);
        assert!(!d.trace);
    }

    #[test]
    fn exact_rule_beats_wildcard_of_same_priority() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(svc(1))],
        ));
        let exact = table.insert(FlowRule::new(
            FlowMatch::exact(RulePort::Nic(0), &key(7)),
            vec![Action::ToService(svc(9))],
        ));
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(7)).unwrap().rule_id,
            exact
        );
        assert_eq!(
            table
                .lookup(RulePort::Nic(0), &key(8))
                .unwrap()
                .default_action(),
            Some(Action::ToService(svc(1)))
        );
    }

    #[test]
    fn higher_priority_wildcard_beats_exact() {
        let mut table = FlowTable::new();
        let exact = table.insert(FlowRule::new(
            FlowMatch::exact(RulePort::Nic(0), &key(7)),
            vec![Action::ToService(svc(9))],
        ));
        let priority = table.insert(
            FlowRule::new(FlowMatch::at_step(RulePort::Nic(0)), vec![Action::Drop])
                .with_priority(100),
        );
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(7)).unwrap().rule_id,
            priority
        );
        table.remove(priority);
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(7)).unwrap().rule_id,
            exact
        );
    }

    #[test]
    fn remove_clears_exact_index() {
        let mut table = FlowTable::new();
        let id = table.insert(FlowRule::new(
            FlowMatch::exact(RulePort::Nic(0), &key(7)),
            vec![Action::Drop],
        ));
        assert_eq!(table.len(), 1);
        let removed = table.remove(id).unwrap();
        assert_eq!(removed.actions, vec![Action::Drop]);
        assert!(table.lookup(RulePort::Nic(0), &key(7)).is_none());
        assert!(table.is_empty());
        assert!(table.remove(id).is_none());
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(svc(1))],
        ));
        let narrower = table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0))
                .with_src_ip(IpPrefix::new(Ipv4Addr::new(10, 0, 0, 0), 24)),
            vec![Action::ToService(svc(2))],
        ));
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(5)).unwrap().rule_id,
            narrower
        );
    }

    #[test]
    fn service_step_rules() {
        let mut table = FlowTable::new();
        let id = table.insert(FlowRule::new(
            FlowMatch::at_step(svc(3)),
            vec![Action::ToService(svc(4)), Action::ToPort(1)],
        ));
        let d = table.lookup(RulePort::Service(svc(3)), &key(1)).unwrap();
        assert_eq!(d.rule_id, id);
        assert!(d.allows(Action::ToPort(1)));
        assert_eq!(table.rules_for_service(svc(3)).len(), 1);
        assert_eq!(table.rules_for_service(svc(4)).len(), 0);
    }

    #[test]
    fn change_default_respects_allowed_actions() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(1)),
            vec![Action::ToService(svc(2)), Action::ToService(svc(3))],
        ));
        // svc(3) is allowed, so the default flips.
        let updated =
            table.change_default(svc(1), &FlowMatch::any(), Action::ToService(svc(3)), false);
        assert_eq!(updated, 1);
        assert_eq!(
            table
                .peek(RulePort::Service(svc(1)), &key(1))
                .unwrap()
                .default_action(),
            Some(Action::ToService(svc(3)))
        );
        // svc(9) is not an allowed next hop: without force nothing changes.
        let updated =
            table.change_default(svc(1), &FlowMatch::any(), Action::ToService(svc(9)), false);
        assert_eq!(updated, 0);
        let updated =
            table.change_default(svc(1), &FlowMatch::any(), Action::ToService(svc(9)), true);
        assert_eq!(updated, 1);
    }

    #[test]
    fn change_default_honours_flow_filter() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(1)).with_src_port(1000),
            vec![Action::ToPort(0), Action::ToService(svc(2))],
        ));
        // Filter on a disjoint src port: no rule should change.
        let filter = FlowMatch::any().with_src_port(2000);
        assert_eq!(
            table.change_default(svc(1), &filter, Action::ToService(svc(2)), false),
            0
        );
        // Overlapping filter applies.
        let filter = FlowMatch::any().with_src_port(1000);
        assert_eq!(
            table.change_default(svc(1), &filter, Action::ToService(svc(2)), false),
            1
        );
    }

    #[test]
    fn retarget_defaults_for_skipme() {
        let mut table = FlowTable::new();
        // Firewall (svc 1) defaults to Sampler (svc 2); Sampler defaults to port 0.
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(1)),
            vec![Action::ToService(svc(2)), Action::ToPort(0)],
        ));
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(2)),
            vec![Action::ToPort(0)],
        ));
        // SkipMe(svc 2): everything defaulting to svc 2 now defaults to svc 2's default.
        let updated = table.retarget_defaults(svc(2), &FlowMatch::any(), Action::ToPort(0));
        assert_eq!(updated, 1);
        assert_eq!(
            table
                .peek(RulePort::Service(svc(1)), &key(1))
                .unwrap()
                .default_action(),
            Some(Action::ToPort(0))
        );
    }

    #[test]
    fn promote_where_allowed_is_requestme() {
        let mut table = FlowTable::new();
        // Sampler (svc 2) may send to the scrubber (svc 5) but defaults out.
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(2)),
            vec![Action::ToPort(0), Action::ToService(svc(5))],
        ));
        // The firewall (svc 1) has no edge to the scrubber.
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(1)),
            vec![Action::ToService(svc(2))],
        ));
        let updated = table.promote_where_allowed(&FlowMatch::any(), Action::ToService(svc(5)));
        assert_eq!(updated, 1);
        assert_eq!(
            table
                .peek(RulePort::Service(svc(2)), &key(1))
                .unwrap()
                .default_action(),
            Some(Action::ToService(svc(5)))
        );
        assert_eq!(
            table
                .peek(RulePort::Service(svc(1)), &key(1))
                .unwrap()
                .default_action(),
            Some(Action::ToService(svc(2)))
        );
        // Promoting again changes nothing (already the default).
        assert_eq!(
            table.promote_where_allowed(&FlowMatch::any(), Action::ToService(svc(5))),
            0
        );
    }

    #[test]
    fn shared_table_generation_tracks_mutations() {
        let shared = SharedFlowTable::new();
        let g0 = shared.generation();
        let id = shared.insert(FlowRule::new(FlowMatch::any(), vec![Action::Drop]));
        assert!(shared.generation() > g0);
        let g1 = shared.generation();
        // Lookups do not bump the generation.
        let _ = shared.lookup(RulePort::Nic(0), &key(1));
        assert_eq!(shared.generation(), g1);
        shared.remove(id);
        assert!(shared.generation() > g1);
    }

    #[test]
    fn shared_table_is_usable_from_clones() {
        let shared = SharedFlowTable::new();
        let clone = shared.clone();
        shared.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(svc(1))],
        ));
        assert_eq!(clone.len(), 1);
        assert!(!clone.is_empty());
        assert!(clone.lookup(RulePort::Nic(0), &key(2)).is_some());
        assert_eq!(clone.stats().hits, 1);
        clone.with_write(|t| {
            t.insert(FlowRule::new(FlowMatch::any(), vec![Action::Drop]));
        });
        assert_eq!(shared.with_read(|t| t.len()), 2);
    }

    #[test]
    fn parallel_decision_propagates_flag() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::parallel(
            FlowMatch::at_step(svc(1)),
            vec![Action::ToService(svc(2)), Action::ToService(svc(3))],
        ));
        let d = table.lookup(RulePort::Service(svc(1)), &key(1)).unwrap();
        assert!(d.parallel);
        assert_eq!(d.actions.len(), 2);
    }

    #[test]
    fn decisions_share_the_action_list() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToPort(1)],
        ));
        let a = table.lookup(RulePort::Nic(0), &key(1)).unwrap();
        let b = table.lookup(RulePort::Nic(0), &key(2)).unwrap();
        // Both decisions point at the same allocation — the per-lookup
        // action-vector clone is gone.
        assert!(Arc::ptr_eq(&a.actions, &b.actions));
    }

    #[test]
    fn bulk_mutation_refreshes_shared_actions() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(1)),
            vec![Action::ToPort(0), Action::ToService(svc(2))],
        ));
        let before = table.lookup(RulePort::Service(svc(1)), &key(1)).unwrap();
        assert_eq!(before.default_action(), Some(Action::ToPort(0)));
        table.change_default(svc(1), &FlowMatch::any(), Action::ToService(svc(2)), false);
        let after = table.lookup(RulePort::Service(svc(1)), &key(1)).unwrap();
        assert_eq!(after.default_action(), Some(Action::ToService(svc(2))));
        // The stale decision still sees the old list (detached snapshot).
        assert_eq!(before.default_action(), Some(Action::ToPort(0)));
    }

    #[test]
    fn exact_insert_replaces_previous_exact_rule() {
        let mut table = FlowTable::new();
        let old = table.insert(FlowRule::new(
            FlowMatch::exact(RulePort::Nic(0), &key(7)),
            vec![Action::Drop],
        ));
        let new = table.insert(FlowRule::new(
            FlowMatch::exact(RulePort::Nic(0), &key(7)),
            vec![Action::ToPort(1)],
        ));
        assert_eq!(table.len(), 1);
        assert!(table.rule(old).is_none());
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(7)).unwrap().rule_id,
            new
        );
    }

    #[test]
    fn idle_timeout_is_refreshed_by_traffic() {
        let mut table = FlowTable::new();
        let id = table.insert(
            FlowRule::new(
                FlowMatch::exact(RulePort::Nic(0), &key(7)),
                vec![Action::ToPort(1)],
            )
            .with_idle_timeout_ns(Some(100)),
        );
        // Traffic every 60 ns keeps the rule alive well past 100 ns.
        for step in 1..=5u64 {
            table.advance_clock(step * 60);
            assert!(table.lookup(RulePort::Nic(0), &key(7)).is_some());
            assert_eq!(table.sweep(16, |_| false), 0);
        }
        // 100 ns of silence idles it out via the sweep.
        table.advance_clock(5 * 60 + 100);
        assert_eq!(table.sweep(16, |_| false), 1);
        let events = table.take_evicted();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, id);
        assert_eq!(events[0].reason, EvictReason::Idle);
        assert_eq!(
            events[0].exact,
            Some((RulePort::Nic(0), key(7))),
            "exact key travels with the event for NF state cleanup"
        );
        assert!(table.lookup(RulePort::Nic(0), &key(7)).is_none());
        assert_eq!(table.stats().evicted_idle, 1);
    }

    #[test]
    fn hard_timeout_fires_under_traffic() {
        let mut table = FlowTable::new();
        let id = table.insert(
            FlowRule::new(
                FlowMatch::exact(RulePort::Nic(0), &key(7)),
                vec![Action::ToPort(1)],
            )
            .with_hard_timeout_ns(Some(100)),
        );
        table.advance_clock(90);
        assert!(table.lookup(RulePort::Nic(0), &key(7)).is_some());
        // Constant traffic does not save it from the hard deadline; the
        // next lookup evicts it lazily.
        table.advance_clock(100);
        assert!(table.lookup(RulePort::Nic(0), &key(7)).is_none());
        let events = table.take_evicted();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, id);
        assert_eq!(events[0].reason, EvictReason::Hard);
        assert_eq!(table.stats().evicted_hard, 1);
    }

    #[test]
    fn expired_exact_rule_falls_back_to_wildcard() {
        let mut table = FlowTable::new();
        let wild = table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(svc(1))],
        ));
        table.insert(
            FlowRule::new(
                FlowMatch::exact(RulePort::Nic(0), &key(7)),
                vec![Action::Drop],
            )
            .with_hard_timeout_ns(Some(50)),
        );
        table.advance_clock(50);
        // The expired exact rule is evicted lazily and the wildcard wins.
        let d = table.lookup(RulePort::Nic(0), &key(7)).unwrap();
        assert_eq!(d.rule_id, wild);
        assert_eq!(table.take_evicted().len(), 1);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn sweep_defers_protected_exact_rules() {
        let mut table = FlowTable::new();
        let id = table.insert(
            FlowRule::new(
                FlowMatch::exact(RulePort::Nic(0), &key(7)),
                vec![Action::ToPort(1)],
            )
            .with_hard_timeout_ns(Some(10)),
        );
        table.advance_clock(100);
        // Protected (e.g. its bucket is mid-re-home): the sweep skips it.
        assert_eq!(table.sweep(16, |_| true), 0);
        assert!(table.rule(id).is_some());
        // Once the protection lifts, the deferred deadline fires.
        assert_eq!(table.sweep(16, |_| false), 1);
        assert!(table.rule(id).is_none());
    }

    #[test]
    fn sweep_is_bounded_per_call() {
        let mut table = FlowTable::new();
        for last in 0..8u8 {
            table.insert(
                FlowRule::new(
                    FlowMatch::exact(RulePort::Nic(0), &key(last)),
                    vec![Action::Drop],
                )
                .with_hard_timeout_ns(Some(10)),
            );
        }
        table.advance_clock(100);
        assert_eq!(table.sweep(3, |_| false), 3);
        assert_eq!(table.len(), 5);
        assert_eq!(table.sweep(100, |_| false), 5);
        assert!(table.is_empty());
        assert_eq!(table.take_evicted().len(), 8);
    }

    #[test]
    fn peek_skips_expired_without_evicting() {
        let mut table = FlowTable::new();
        table.insert(
            FlowRule::new(
                FlowMatch::exact(RulePort::Nic(0), &key(7)),
                vec![Action::Drop],
            )
            .with_hard_timeout_ns(Some(10)),
        );
        table.advance_clock(50);
        assert!(table.peek(RulePort::Nic(0), &key(7)).is_none());
        // peek is read-only: the rule is still installed until a lookup or
        // sweep evicts it.
        assert_eq!(table.len(), 1);
        assert_eq!(table.pending_evictions(), 0);
    }

    #[test]
    fn shared_sweep_bumps_generation_only_on_eviction() {
        let shared = SharedFlowTable::new();
        shared.insert(
            FlowRule::new(
                FlowMatch::exact(RulePort::Nic(0), &key(7)),
                vec![Action::Drop],
            )
            .with_hard_timeout_ns(Some(100)),
        );
        let g = shared.generation();
        assert!(shared.sweep_expired(50, 16, |_| false).is_empty());
        assert_eq!(shared.generation(), g, "no eviction, no invalidation");
        let events = shared.sweep_expired(100, 16, |_| false);
        assert_eq!(events.len(), 1);
        assert!(shared.generation() > g);
    }

    #[test]
    fn tuple_space_probes_in_priority_order() {
        let mut table = FlowTable::new();
        // Three shapes: step-only, step+src/24, step+src_port.
        table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToPort(0)],
        ));
        let by_prefix = table.insert(
            FlowRule::new(
                FlowMatch::at_step(RulePort::Nic(0))
                    .with_src_ip(IpPrefix::new(Ipv4Addr::new(10, 0, 0, 0), 24)),
                vec![Action::ToPort(1)],
            )
            .with_priority(5),
        );
        let by_port = table.insert(
            FlowRule::new(
                FlowMatch::at_step(RulePort::Nic(0)).with_src_port(1000),
                vec![Action::ToPort(2)],
            )
            .with_priority(9),
        );
        // key() has src 10.0.0.x and src_port 1000: the priority-9 shape wins.
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(1)).unwrap().rule_id,
            by_port
        );
        table.remove(by_port);
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(1)).unwrap().rule_id,
            by_prefix
        );
        // A key outside the /24 falls through to the step-only shape.
        let outside = FlowKey::new(
            Ipv4Addr::new(11, 0, 0, 1),
            Ipv4Addr::new(192, 168, 1, 1),
            2000,
            80,
            IpProtocol::Tcp,
        );
        assert_eq!(
            table
                .lookup(RulePort::Nic(0), &outside)
                .unwrap()
                .default_action(),
            Some(Action::ToPort(0))
        );
    }
}
