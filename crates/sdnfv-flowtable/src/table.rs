//! The per-host flow table and its thread-safe wrapper.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use sdnfv_proto::flow::FlowKey;

use crate::matching::FlowMatch;
use crate::rule::{Action, Decision, FlowRule, RuleId};
use crate::types::{RulePort, ServiceId};

/// Counters exported by a [`FlowTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Total lookups performed.
    pub lookups: u64,
    /// Lookups that matched a rule.
    pub hits: u64,
    /// Lookups that matched no rule (table misses, i.e. controller punts).
    pub misses: u64,
}

/// The flow table held by one NF Manager.
///
/// Rules are matched by priority (highest first), then by match specificity,
/// then by recency of installation. Exact per-flow rules are additionally
/// indexed by their `(step, 5-tuple)` key so the common case — a packet of an
/// established flow finishing at a service — is a hash lookup.
#[derive(Debug, Default, Clone)]
pub struct FlowTable {
    rules: HashMap<RuleId, FlowRule>,
    /// Lookup order: rule ids sorted by (priority desc, specificity desc,
    /// insertion order desc).
    order: Vec<RuleId>,
    exact: HashMap<(RulePort, FlowKey), RuleId>,
    next_id: u64,
    hit_counts: HashMap<RuleId, u64>,
    stats: TableStats,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Installs a rule and returns its id.
    pub fn insert(&mut self, rule: FlowRule) -> RuleId {
        let id = RuleId(self.next_id);
        self.next_id += 1;
        if let Some((step, key)) = rule.matcher.exact_key() {
            self.exact.insert((step, key), id);
        }
        self.rules.insert(id, rule);
        self.hit_counts.insert(id, 0);
        self.rebuild_order();
        id
    }

    /// Removes a rule.
    pub fn remove(&mut self, id: RuleId) -> Option<FlowRule> {
        let rule = self.rules.remove(&id)?;
        self.hit_counts.remove(&id);
        if let Some(key) = rule.matcher.exact_key() {
            if self.exact.get(&key) == Some(&id) {
                self.exact.remove(&key);
            }
        }
        self.rebuild_order();
        Some(rule)
    }

    fn rebuild_order(&mut self) {
        let mut ids: Vec<RuleId> = self.rules.keys().copied().collect();
        ids.sort_by(|a, b| {
            let ra = &self.rules[a];
            let rb = &self.rules[b];
            rb.priority
                .cmp(&ra.priority)
                .then(rb.matcher.specificity().cmp(&ra.matcher.specificity()))
                .then(b.0.cmp(&a.0))
        });
        self.order = ids;
    }

    /// Looks up the rule governing a packet of flow `key` at `step`.
    pub fn lookup(&mut self, step: RulePort, key: &FlowKey) -> Option<Decision> {
        self.stats.lookups += 1;
        let id = self.find_rule_id(step, key);
        match id {
            Some(id) => {
                self.stats.hits += 1;
                *self.hit_counts.entry(id).or_insert(0) += 1;
                let rule = &self.rules[&id];
                Some(Decision {
                    rule_id: id,
                    actions: rule.actions.clone(),
                    parallel: rule.parallel,
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Read-only lookup that does not update statistics (used by tests and by
    /// the control plane when validating messages).
    pub fn peek(&self, step: RulePort, key: &FlowKey) -> Option<&FlowRule> {
        self.find_rule_id(step, key).map(|id| &self.rules[&id])
    }

    fn find_rule_id(&self, step: RulePort, key: &FlowKey) -> Option<RuleId> {
        // Exact rules take precedence over any wildcard of equal priority;
        // but a higher-priority wildcard still wins, so consult the ordered
        // scan and use the exact index only as a fast path when the winning
        // priority band contains the exact rule.
        if let Some(&exact_id) = self.exact.get(&(step, *key)) {
            let exact_priority = self.rules[&exact_id].priority;
            let better = self.order.iter().find(|id| {
                let rule = &self.rules[id];
                rule.priority > exact_priority && rule.matcher.matches(step, key)
            });
            return Some(better.copied().unwrap_or(exact_id));
        }
        self.order
            .iter()
            .find(|id| self.rules[id].matcher.matches(step, key))
            .copied()
    }

    /// Returns the rule with the given id.
    pub fn rule(&self, id: RuleId) -> Option<&FlowRule> {
        self.rules.get(&id)
    }

    /// Returns the id of the exact per-flow rule installed for `(step, key)`,
    /// if one exists (wildcard rules are not considered).
    pub fn exact_rule_id(&self, step: RulePort, key: &FlowKey) -> Option<RuleId> {
        self.exact.get(&(step, *key)).copied()
    }

    /// Iterates over all installed rules.
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, &FlowRule)> {
        self.order.iter().map(move |id| (*id, &self.rules[id]))
    }

    /// Iterates over the exact per-flow rules, yielding each rule's id, its
    /// `(step, 5-tuple)` index key and the rule itself. This is the rule set
    /// a bucket re-home exports between shard partitions.
    pub fn exact_rules(
        &self,
    ) -> impl Iterator<Item = (RuleId, (RulePort, FlowKey), &FlowRule)> + '_ {
        self.exact
            .iter()
            .map(move |(step_key, id)| (*id, *step_key, &self.rules[id]))
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of times rule `id` has been hit.
    pub fn hit_count(&self, id: RuleId) -> u64 {
        self.hit_counts.get(&id).copied().unwrap_or(0)
    }

    /// Lookup/hit/miss counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Updates the default action of every rule for service `service` whose
    /// match intersects `flows` — the table half of `ChangeDefault(F, S, T)`.
    ///
    /// Returns the number of rules updated. Only rules that already allow
    /// `new_default` (or rules explicitly forced with `force`) are changed,
    /// preserving the service-graph constraint that NFs may only steer along
    /// existing edges.
    pub fn change_default(
        &mut self,
        service: ServiceId,
        flows: &FlowMatch,
        new_default: Action,
        force: bool,
    ) -> usize {
        let mut updated = 0;
        for rule in self.rules.values_mut() {
            let applies = rule.matcher.step == Some(RulePort::Service(service))
                && matches_intersect(&rule.matcher, flows);
            if !applies {
                continue;
            }
            if rule.allows(new_default) || force {
                rule.set_default_action(new_default);
                updated += 1;
            }
        }
        updated
    }

    /// Retargets rules whose default currently points at `service` so that
    /// they instead default to `new_default` — used for `SkipMe` (bypass the
    /// service) and `RequestMe` (steal the default edge) messages.
    ///
    /// Returns the number of rules updated.
    pub fn retarget_defaults(
        &mut self,
        pointing_at: ServiceId,
        flows: &FlowMatch,
        new_default: Action,
    ) -> usize {
        let mut updated = 0;
        for rule in self.rules.values_mut() {
            if rule.default_action() == Some(Action::ToService(pointing_at))
                && matches_intersect(&rule.matcher, flows)
                && new_default != Action::ToService(pointing_at)
            {
                rule.set_default_action(new_default);
                updated += 1;
            }
        }
        updated
    }

    /// Makes `action` the default of every rule that already lists it as an
    /// allowed action and whose match intersects `flows` — the table half of
    /// `RequestMe(F, S)` ("all nodes that have an edge to S set S as their
    /// default action").
    ///
    /// Returns the number of rules updated.
    pub fn promote_where_allowed(&mut self, flows: &FlowMatch, action: Action) -> usize {
        let mut updated = 0;
        for rule in self.rules.values_mut() {
            if rule.allows(action)
                && rule.default_action() != Some(action)
                && matches_intersect(&rule.matcher, flows)
            {
                rule.set_default_action(action);
                updated += 1;
            }
        }
        updated
    }

    /// Rules whose step is the given service (the out-edges installed for it).
    pub fn rules_for_service(&self, service: ServiceId) -> Vec<(RuleId, &FlowRule)> {
        self.order
            .iter()
            .filter(|id| self.rules[id].matcher.step == Some(RulePort::Service(service)))
            .map(|id| (*id, &self.rules[id]))
            .collect()
    }
}

/// Conservative intersection test between an installed rule's matcher and a
/// message's flow filter (see [`FlowMatch::intersects`]).
fn matches_intersect(rule: &FlowMatch, filter: &FlowMatch) -> bool {
    rule.intersects(filter)
}

/// A [`FlowTable`] shareable between the NF Manager threads.
///
/// The lock sits outside the per-packet fast path in the paper's design
/// (lookups are cached in packet descriptors); here a reader/writer lock
/// keeps the table consistent between the RX thread, TX threads and the Flow
/// Controller thread.
#[derive(Debug, Clone, Default)]
pub struct SharedFlowTable {
    inner: Arc<RwLock<FlowTable>>,
    /// Bumped on every mutation; lets lock-free per-thread lookup caches
    /// detect staleness cheaply.
    generation: Arc<std::sync::atomic::AtomicU64>,
}

impl SharedFlowTable {
    /// Creates an empty shared table.
    pub fn new() -> Self {
        SharedFlowTable::default()
    }

    fn bump(&self) {
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// A counter that increases on every mutation of the table. Cached
    /// lookup results tagged with an older generation must be discarded.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Installs a rule.
    pub fn insert(&self, rule: FlowRule) -> RuleId {
        self.bump();
        self.inner.write().insert(rule)
    }

    /// Removes a rule.
    pub fn remove(&self, id: RuleId) -> Option<FlowRule> {
        self.bump();
        self.inner.write().remove(id)
    }

    /// Looks up the decision for a flow at a step.
    pub fn lookup(&self, step: RulePort, key: &FlowKey) -> Option<Decision> {
        self.inner.write().lookup(step, key)
    }

    /// Runs `f` with read access to the underlying table.
    pub fn with_read<R>(&self, f: impl FnOnce(&FlowTable) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` with write access to the underlying table. The table
    /// generation is bumped, so only use this for mutations.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut FlowTable) -> R) -> R {
        self.bump();
        f(&mut self.inner.write())
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Returns `true` if the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Lookup/hit/miss counters.
    pub fn stats(&self) -> TableStats {
        self.inner.read().stats()
    }

    /// Forks an independent deep copy of the table: same rules (ids,
    /// priorities and installation order preserved), its own lock, zeroed
    /// lookup counters and a fresh generation counter.
    ///
    /// This is the seeding step of per-shard partitioning
    /// ([`FlowTablePartitions`](crate::partition::FlowTablePartitions)):
    /// after the fork, mutations on either side are invisible to the other.
    pub fn fork(&self) -> SharedFlowTable {
        let mut copy = self.inner.read().clone();
        copy.stats = TableStats::default();
        copy.hit_counts.values_mut().for_each(|count| *count = 0);
        SharedFlowTable {
            inner: Arc::new(RwLock::new(copy)),
            generation: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::IpPrefix;
    use sdnfv_proto::flow::IpProtocol;
    use std::net::Ipv4Addr;

    fn key(src_last: u8) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, src_last),
            Ipv4Addr::new(192, 168, 1, 1),
            1000,
            80,
            IpProtocol::Tcp,
        )
    }

    fn svc(id: u32) -> ServiceId {
        ServiceId::new(id)
    }

    #[test]
    fn wildcard_rule_matches_everything_at_step() {
        let mut table = FlowTable::new();
        let id = table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(svc(1))],
        ));
        let d = table.lookup(RulePort::Nic(0), &key(1)).unwrap();
        assert_eq!(d.rule_id, id);
        assert_eq!(d.default_action(), Some(Action::ToService(svc(1))));
        assert!(table.lookup(RulePort::Nic(1), &key(1)).is_none());
        assert_eq!(table.stats().hits, 1);
        assert_eq!(table.stats().misses, 1);
        assert_eq!(table.hit_count(id), 1);
    }

    #[test]
    fn exact_rule_beats_wildcard_of_same_priority() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(svc(1))],
        ));
        let exact = table.insert(FlowRule::new(
            FlowMatch::exact(RulePort::Nic(0), &key(7)),
            vec![Action::ToService(svc(9))],
        ));
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(7)).unwrap().rule_id,
            exact
        );
        assert_eq!(
            table
                .lookup(RulePort::Nic(0), &key(8))
                .unwrap()
                .default_action(),
            Some(Action::ToService(svc(1)))
        );
    }

    #[test]
    fn higher_priority_wildcard_beats_exact() {
        let mut table = FlowTable::new();
        let exact = table.insert(FlowRule::new(
            FlowMatch::exact(RulePort::Nic(0), &key(7)),
            vec![Action::ToService(svc(9))],
        ));
        let priority = table.insert(
            FlowRule::new(FlowMatch::at_step(RulePort::Nic(0)), vec![Action::Drop])
                .with_priority(100),
        );
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(7)).unwrap().rule_id,
            priority
        );
        table.remove(priority);
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(7)).unwrap().rule_id,
            exact
        );
    }

    #[test]
    fn remove_clears_exact_index() {
        let mut table = FlowTable::new();
        let id = table.insert(FlowRule::new(
            FlowMatch::exact(RulePort::Nic(0), &key(7)),
            vec![Action::Drop],
        ));
        assert_eq!(table.len(), 1);
        let removed = table.remove(id).unwrap();
        assert_eq!(removed.actions, vec![Action::Drop]);
        assert!(table.lookup(RulePort::Nic(0), &key(7)).is_none());
        assert!(table.is_empty());
        assert!(table.remove(id).is_none());
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(svc(1))],
        ));
        let narrower = table.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0))
                .with_src_ip(IpPrefix::new(Ipv4Addr::new(10, 0, 0, 0), 24)),
            vec![Action::ToService(svc(2))],
        ));
        assert_eq!(
            table.lookup(RulePort::Nic(0), &key(5)).unwrap().rule_id,
            narrower
        );
    }

    #[test]
    fn service_step_rules() {
        let mut table = FlowTable::new();
        let id = table.insert(FlowRule::new(
            FlowMatch::at_step(svc(3)),
            vec![Action::ToService(svc(4)), Action::ToPort(1)],
        ));
        let d = table.lookup(RulePort::Service(svc(3)), &key(1)).unwrap();
        assert_eq!(d.rule_id, id);
        assert!(d.allows(Action::ToPort(1)));
        assert_eq!(table.rules_for_service(svc(3)).len(), 1);
        assert_eq!(table.rules_for_service(svc(4)).len(), 0);
    }

    #[test]
    fn change_default_respects_allowed_actions() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(1)),
            vec![Action::ToService(svc(2)), Action::ToService(svc(3))],
        ));
        // svc(3) is allowed, so the default flips.
        let updated =
            table.change_default(svc(1), &FlowMatch::any(), Action::ToService(svc(3)), false);
        assert_eq!(updated, 1);
        assert_eq!(
            table
                .peek(RulePort::Service(svc(1)), &key(1))
                .unwrap()
                .default_action(),
            Some(Action::ToService(svc(3)))
        );
        // svc(9) is not an allowed next hop: without force nothing changes.
        let updated =
            table.change_default(svc(1), &FlowMatch::any(), Action::ToService(svc(9)), false);
        assert_eq!(updated, 0);
        let updated =
            table.change_default(svc(1), &FlowMatch::any(), Action::ToService(svc(9)), true);
        assert_eq!(updated, 1);
    }

    #[test]
    fn change_default_honours_flow_filter() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(1)).with_src_port(1000),
            vec![Action::ToPort(0), Action::ToService(svc(2))],
        ));
        // Filter on a disjoint src port: no rule should change.
        let filter = FlowMatch::any().with_src_port(2000);
        assert_eq!(
            table.change_default(svc(1), &filter, Action::ToService(svc(2)), false),
            0
        );
        // Overlapping filter applies.
        let filter = FlowMatch::any().with_src_port(1000);
        assert_eq!(
            table.change_default(svc(1), &filter, Action::ToService(svc(2)), false),
            1
        );
    }

    #[test]
    fn retarget_defaults_for_skipme() {
        let mut table = FlowTable::new();
        // Firewall (svc 1) defaults to Sampler (svc 2); Sampler defaults to port 0.
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(1)),
            vec![Action::ToService(svc(2)), Action::ToPort(0)],
        ));
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(2)),
            vec![Action::ToPort(0)],
        ));
        // SkipMe(svc 2): everything defaulting to svc 2 now defaults to svc 2's default.
        let updated = table.retarget_defaults(svc(2), &FlowMatch::any(), Action::ToPort(0));
        assert_eq!(updated, 1);
        assert_eq!(
            table
                .peek(RulePort::Service(svc(1)), &key(1))
                .unwrap()
                .default_action(),
            Some(Action::ToPort(0))
        );
    }

    #[test]
    fn promote_where_allowed_is_requestme() {
        let mut table = FlowTable::new();
        // Sampler (svc 2) may send to the scrubber (svc 5) but defaults out.
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(2)),
            vec![Action::ToPort(0), Action::ToService(svc(5))],
        ));
        // The firewall (svc 1) has no edge to the scrubber.
        table.insert(FlowRule::new(
            FlowMatch::at_step(svc(1)),
            vec![Action::ToService(svc(2))],
        ));
        let updated = table.promote_where_allowed(&FlowMatch::any(), Action::ToService(svc(5)));
        assert_eq!(updated, 1);
        assert_eq!(
            table
                .peek(RulePort::Service(svc(2)), &key(1))
                .unwrap()
                .default_action(),
            Some(Action::ToService(svc(5)))
        );
        assert_eq!(
            table
                .peek(RulePort::Service(svc(1)), &key(1))
                .unwrap()
                .default_action(),
            Some(Action::ToService(svc(2)))
        );
        // Promoting again changes nothing (already the default).
        assert_eq!(
            table.promote_where_allowed(&FlowMatch::any(), Action::ToService(svc(5))),
            0
        );
    }

    #[test]
    fn shared_table_generation_tracks_mutations() {
        let shared = SharedFlowTable::new();
        let g0 = shared.generation();
        let id = shared.insert(FlowRule::new(FlowMatch::any(), vec![Action::Drop]));
        assert!(shared.generation() > g0);
        let g1 = shared.generation();
        // Lookups do not bump the generation.
        let _ = shared.lookup(RulePort::Nic(0), &key(1));
        assert_eq!(shared.generation(), g1);
        shared.remove(id);
        assert!(shared.generation() > g1);
    }

    #[test]
    fn shared_table_is_usable_from_clones() {
        let shared = SharedFlowTable::new();
        let clone = shared.clone();
        shared.insert(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(svc(1))],
        ));
        assert_eq!(clone.len(), 1);
        assert!(!clone.is_empty());
        assert!(clone.lookup(RulePort::Nic(0), &key(2)).is_some());
        assert_eq!(clone.stats().hits, 1);
        clone.with_write(|t| {
            t.insert(FlowRule::new(FlowMatch::any(), vec![Action::Drop]));
        });
        assert_eq!(shared.with_read(|t| t.len()), 2);
    }

    #[test]
    fn parallel_decision_propagates_flag() {
        let mut table = FlowTable::new();
        table.insert(FlowRule::parallel(
            FlowMatch::at_step(svc(1)),
            vec![Action::ToService(svc(2)), Action::ToService(svc(3))],
        ));
        let d = table.lookup(RulePort::Service(svc(1)), &key(1)).unwrap();
        assert!(d.parallel);
        assert_eq!(d.actions.len(), 2);
    }
}
