//! Identifiers shared across the SDNFV control and data planes.

use serde::{Deserialize, Serialize};
use std::fmt;

use sdnfv_proto::packet::Port;

/// An abstract network service identity (paper §3.2).
///
/// Service IDs decouple "what processing a packet needs next" (e.g. *a* Video
/// Detector) from the address of the specific NF instance that provides it,
/// so NFs can be replicated or moved without reconfiguring their neighbours.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ServiceId(pub u32);

impl ServiceId {
    /// Creates a service id from its numeric value.
    pub const fn new(id: u32) -> Self {
        ServiceId(id)
    }

    /// Numeric value of the id.
    pub const fn value(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc-{}", self.0)
    }
}

impl From<u32> for ServiceId {
    fn from(v: u32) -> Self {
        ServiceId(v)
    }
}

/// The "step" a flow rule applies to: either a physical NIC port (for packets
/// entering the host) or the service whose NF just finished with the packet.
///
/// This is the paper's repurposed OpenFlow "input port" match field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RulePort {
    /// A NIC port: the rule applies to packets arriving from the wire.
    Nic(Port),
    /// A service: the rule applies to packets completing that service.
    Service(ServiceId),
}

impl RulePort {
    /// Returns the service id if this is a service step.
    pub fn service(&self) -> Option<ServiceId> {
        match self {
            RulePort::Service(id) => Some(*id),
            RulePort::Nic(_) => None,
        }
    }

    /// Returns the NIC port if this is an ingress step.
    pub fn nic(&self) -> Option<Port> {
        match self {
            RulePort::Nic(p) => Some(*p),
            RulePort::Service(_) => None,
        }
    }
}

impl fmt::Display for RulePort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RulePort::Nic(p) => write!(f, "eth{p}"),
            RulePort::Service(s) => write!(f, "{s}"),
        }
    }
}

impl From<ServiceId> for RulePort {
    fn from(id: ServiceId) -> Self {
        RulePort::Service(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_id_display_and_value() {
        let id = ServiceId::new(7);
        assert_eq!(id.to_string(), "svc-7");
        assert_eq!(id.value(), 7);
        assert_eq!(ServiceId::from(7u32), id);
    }

    #[test]
    fn rule_port_accessors() {
        let nic = RulePort::Nic(0);
        let svc = RulePort::Service(ServiceId::new(3));
        assert_eq!(nic.nic(), Some(0));
        assert_eq!(nic.service(), None);
        assert_eq!(svc.service(), Some(ServiceId::new(3)));
        assert_eq!(svc.nic(), None);
        assert_eq!(nic.to_string(), "eth0");
        assert_eq!(svc.to_string(), "svc-3");
        assert_eq!(RulePort::from(ServiceId::new(3)), svc);
    }
}
