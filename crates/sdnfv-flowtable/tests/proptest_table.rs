//! Property tests: the optimized flow table agrees with a naive reference
//! matcher on every lookup.

#![cfg(feature = "proptest")]
// Gated off by default: the real `proptest` crate is unavailable in the
// offline build environment (see shims/README.md and ROADMAP.md).
use proptest::prelude::*;
use sdnfv_flowtable::{Action, FlowMatch, FlowRule, FlowTable, IpPrefix, RulePort, ServiceId};
use sdnfv_proto::flow::{FlowKey, IpProtocol};
use std::net::Ipv4Addr;

/// Strategy for a small universe of flow keys so rules and lookups collide.
fn arb_key() -> impl Strategy<Value = FlowKey> {
    (0u8..4, 0u8..4, 0u16..4, 0u16..4, any::<bool>()).prop_map(|(s, d, sp, dp, tcp)| {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, s),
            Ipv4Addr::new(10, 0, 1, d),
            1000 + sp,
            80 + dp,
            if tcp {
                IpProtocol::Tcp
            } else {
                IpProtocol::Udp
            },
        )
    })
}

fn arb_step() -> impl Strategy<Value = RulePort> {
    prop_oneof![
        (0u16..3).prop_map(RulePort::Nic),
        (1u32..5).prop_map(|s| RulePort::Service(ServiceId::new(s))),
    ]
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(arb_step()),
        proptest::option::of((0u8..4, prop_oneof![Just(24u8), Just(32u8), Just(8u8)])),
        proptest::option::of(0u16..4),
        proptest::option::of(any::<bool>()),
    )
        .prop_map(|(step, src, dport, proto)| FlowMatch {
            step,
            src_ip: src.map(|(last, len)| IpPrefix::new(Ipv4Addr::new(10, 0, 0, last), len)),
            dst_ip: None,
            src_port: None,
            dst_port: dport.map(|d| 80 + d),
            protocol: proto.map(|tcp| {
                if tcp {
                    IpProtocol::Tcp
                } else {
                    IpProtocol::Udp
                }
            }),
        })
}

fn arb_rule() -> impl Strategy<Value = FlowRule> {
    (arb_match(), 1u32..6, 0u16..3, any::<bool>()).prop_map(|(m, svc, prio, parallel)| {
        let mut rule = if parallel {
            FlowRule::parallel(
                m,
                vec![
                    Action::ToService(ServiceId::new(svc)),
                    Action::ToService(ServiceId::new(svc + 1)),
                ],
            )
        } else {
            FlowRule::new(
                m,
                vec![Action::ToService(ServiceId::new(svc)), Action::ToPort(0)],
            )
        };
        rule.priority = prio;
        rule
    })
}

/// Reference matcher: scan all rules, keep the best by (priority,
/// specificity, recency) — the semantics the optimized table must provide.
fn reference_lookup<'a>(
    rules: &'a [(usize, FlowRule)],
    step: RulePort,
    key: &FlowKey,
) -> Option<&'a (usize, FlowRule)> {
    rules
        .iter()
        .filter(|(_, r)| r.matcher.matches(step, key))
        .max_by(|(ia, a), (ib, b)| {
            a.priority
                .cmp(&b.priority)
                .then(a.matcher.specificity().cmp(&b.matcher.specificity()))
                .then(ia.cmp(ib))
        })
}

proptest! {
    #[test]
    fn table_agrees_with_reference(
        rules in proptest::collection::vec(arb_rule(), 1..20),
        lookups in proptest::collection::vec((arb_step(), arb_key()), 1..40),
    ) {
        let mut table = FlowTable::new();
        let indexed: Vec<(usize, FlowRule)> = rules.into_iter().enumerate().collect();
        for (_, rule) in &indexed {
            table.insert(rule.clone());
        }
        for (step, key) in lookups {
            let got = table.lookup(step, &key);
            let expected = reference_lookup(&indexed, step, &key);
            match (got, expected) {
                (None, None) => {}
                (Some(d), Some((_, rule))) => {
                    // The matched rule must have identical priority/actions to
                    // the reference winner (several rules may tie exactly).
                    prop_assert_eq!(&d.actions, &rule.actions);
                    prop_assert_eq!(d.parallel, rule.parallel);
                }
                (got, expected) => {
                    return Err(TestCaseError::fail(format!(
                        "table and reference disagree: {got:?} vs {expected:?}"
                    )));
                }
            }
        }
        let stats = table.stats();
        prop_assert_eq!(stats.lookups, stats.hits + stats.misses);
    }

    #[test]
    fn default_change_preserves_action_set_membership(
        mut rule in arb_rule(),
        new_svc in 1u32..8,
    ) {
        let new_action = Action::ToService(ServiceId::new(new_svc));
        let before: std::collections::HashSet<_> = rule.actions.iter().copied().collect();
        rule.set_default_action(new_action);
        prop_assert_eq!(rule.default_action(), Some(new_action));
        // Every previously-allowed action is still allowed.
        for a in before {
            prop_assert!(rule.allows(a));
        }
        // No duplicates introduced.
        let unique: std::collections::HashSet<_> = rule.actions.iter().copied().collect();
        prop_assert_eq!(unique.len(), rule.actions.len());
    }
}
