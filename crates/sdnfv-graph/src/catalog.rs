//! Ready-made service graphs for the paper's motivating applications
//! (§2.2) plus simple chains used by benchmarks and the placement engine.

use sdnfv_flowtable::ServiceId;

use crate::graph::{ServiceGraph, ServiceGraphBuilder};
use crate::node::GraphNode;

/// Service ids of the anomaly-detection application (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnomalyServices {
    /// Perimeter firewall every packet traverses first.
    pub firewall: ServiceId,
    /// Samples a subset of traffic for deeper analysis.
    pub sampler: ServiceId,
    /// Detects anomalous traffic surges across flows.
    pub ddos: ServiceId,
    /// Signature-based intrusion detection.
    pub ids: ServiceId,
    /// Deep inspection of flows flagged as suspicious.
    pub scrubber: ServiceId,
}

/// Builds the anomaly-detection service graph:
///
/// ```text
/// source → firewall → sampler → sink            (default path)
///                        ↘ ddos → ids → sink    (sampled traffic)
///                                   ↘ scrubber → sink (suspicious)
/// ```
///
/// The DDoS detector and IDS are read-only and adjacent, so they form a
/// parallel segment when parallel processing is enabled.
pub fn anomaly_detection() -> (ServiceGraph, AnomalyServices) {
    let mut b = ServiceGraphBuilder::new("anomaly-detection");
    let firewall = b.add_service("firewall", true);
    let sampler = b.add_service("sampler", true);
    let ddos = b.add_service("ddos-detector", true);
    let ids = b.add_service("ids", true);
    let scrubber = b.add_service("scrubber", true);

    b.add_default_edge(GraphNode::Source, firewall);
    b.add_default_edge(firewall, sampler);
    b.add_default_edge(sampler, GraphNode::Sink);
    b.add_edge(sampler, ddos);
    b.add_default_edge(ddos, ids);
    b.add_default_edge(ids, GraphNode::Sink);
    b.add_edge(ids, scrubber);
    b.add_default_edge(scrubber, GraphNode::Sink);

    let graph = b.build().expect("anomaly detection graph is well formed");
    (
        graph,
        AnomalyServices {
            firewall,
            sampler,
            ddos,
            ids,
            scrubber,
        },
    )
}

/// Service ids of the video-optimization application (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoServices {
    /// Perimeter firewall.
    pub firewall: ServiceId,
    /// Detects video flows by inspecting HTTP headers.
    pub video_detector: ServiceId,
    /// Decides whether a video flow's quality should be adjusted.
    pub policy_engine: ServiceId,
    /// Checks whether transcoding retains acceptable quality.
    pub quality_detector: ServiceId,
    /// Transcodes video to a lower bit rate.
    pub transcoder: ServiceId,
    /// Caches transcoded content.
    pub cache: ServiceId,
    /// Rate-limits flows to the target bandwidth.
    pub shaper: ServiceId,
}

/// Builds the video-optimization service graph:
///
/// ```text
/// source → firewall → video-detector → policy-engine → quality-detector →
///          transcoder → cache → shaper → sink
/// ```
///
/// with escape edges letting the video detector send non-video flows
/// straight out, and the policy engine / quality detector skip the
/// transcoder for flows that need no adjustment.
pub fn video_optimizer() -> (ServiceGraph, VideoServices) {
    let mut b = ServiceGraphBuilder::new("video-optimizer");
    let firewall = b.add_service("firewall", true);
    let video_detector = b.add_service("video-detector", true);
    let policy_engine = b.add_service("policy-engine", true);
    let quality_detector = b.add_service("quality-detector", true);
    let transcoder = b.add_service("transcoder", false);
    let cache = b.add_service("cache", false);
    let shaper = b.add_service("shaper", false);

    b.add_default_edge(GraphNode::Source, firewall);
    b.add_default_edge(firewall, video_detector);
    b.add_default_edge(video_detector, policy_engine);
    b.add_edge(video_detector, GraphNode::Sink);
    b.add_default_edge(policy_engine, quality_detector);
    b.add_edge(policy_engine, cache);
    b.add_default_edge(quality_detector, transcoder);
    b.add_edge(quality_detector, cache);
    b.add_default_edge(transcoder, cache);
    b.add_default_edge(cache, shaper);
    b.add_default_edge(shaper, GraphNode::Sink);

    let graph = b.build().expect("video optimizer graph is well formed");
    (
        graph,
        VideoServices {
            firewall,
            video_detector,
            policy_engine,
            quality_detector,
            transcoder,
            cache,
            shaper,
        },
    )
}

/// Builds a linear chain `source → s1 → s2 → … → sink` from `(name,
/// read_only)` pairs, as used by the latency/throughput benchmarks (Table 2,
/// Figures 6–7) and the placement experiments (J1–J5 in Figure 5).
pub fn chain(services: &[(&str, bool)]) -> (ServiceGraph, Vec<ServiceId>) {
    let mut b = ServiceGraphBuilder::new("chain");
    let ids: Vec<ServiceId> = services
        .iter()
        .map(|(name, read_only)| b.add_service(*name, *read_only))
        .collect();
    let mut prev = GraphNode::Source;
    for id in &ids {
        b.add_default_edge(prev, *id);
        prev = GraphNode::Service(*id);
    }
    b.add_default_edge(prev, GraphNode::Sink);
    (b.build().expect("chains are always well formed"), ids)
}

/// The five-service chain (J1–J5) used throughout the placement evaluation.
pub fn placement_chain() -> (ServiceGraph, Vec<ServiceId>) {
    chain(&[
        ("j1", true),
        ("j2", true),
        ("j3", true),
        ("j4", true),
        ("j5", false),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CompileOptions;

    #[test]
    fn anomaly_graph_structure() {
        let (g, svc) = anomaly_detection();
        assert_eq!(g.len(), 5);
        assert_eq!(g.default_path(), vec![svc.firewall, svc.sampler]);
        // Sampler can escalate to the DDoS detector.
        assert!(g
            .successors(svc.sampler)
            .contains(&GraphNode::Service(svc.ddos)));
        // DDoS and IDS form a parallel segment (both read-only, linear).
        let segments = g.parallel_segments();
        assert!(segments.contains(&vec![svc.ddos, svc.ids]));
    }

    #[test]
    fn video_graph_structure() {
        let (g, svc) = video_optimizer();
        assert_eq!(g.len(), 7);
        let path = g.default_path();
        assert_eq!(
            path,
            vec![
                svc.firewall,
                svc.video_detector,
                svc.policy_engine,
                svc.quality_detector,
                svc.transcoder,
                svc.cache,
                svc.shaper
            ]
        );
        // The policy engine may bypass transcoding.
        assert!(g
            .successors(svc.policy_engine)
            .contains(&GraphNode::Service(svc.cache)));
        // And the video detector can send non-video flows straight out.
        assert!(g.successors(svc.video_detector).contains(&GraphNode::Sink));
    }

    #[test]
    fn chains_have_expected_length_and_compile() {
        let (g, ids) = placement_chain();
        assert_eq!(ids.len(), 5);
        assert_eq!(g.default_path(), ids);
        let rules = g.compile(&CompileOptions::default());
        // one ingress + one per service
        assert_eq!(rules.len(), 6);
    }

    #[test]
    fn single_service_chain() {
        let (g, ids) = chain(&[("only", true)]);
        assert_eq!(ids.len(), 1);
        assert_eq!(g.default_path(), ids);
    }
}
