//! Service graph construction, validation, analysis and compilation to
//! flow-table rules.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

use sdnfv_flowtable::{Action, FlowMatch, FlowRule, RulePort, ServiceId};
use sdnfv_proto::packet::Port;

use crate::node::{GraphNode, ServiceNode};

/// Errors detected while building or validating a service graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a service that was never added.
    UnknownService(ServiceId),
    /// A service id was registered twice.
    DuplicateService(ServiceId),
    /// An edge points *into* the source or *out of* the sink.
    InvalidEndpoint(GraphNode),
    /// The same edge was added twice.
    DuplicateEdge(GraphNode, GraphNode),
    /// A node with outgoing edges has no default edge, or more than one.
    DefaultEdgeCount {
        /// The offending node.
        node: GraphNode,
        /// How many default edges it has.
        count: usize,
    },
    /// A service has no outgoing edges, so packets would be stranded there.
    DeadEnd(ServiceId),
    /// The graph contains a cycle through the given service.
    Cycle(ServiceId),
    /// A service is not reachable from the source.
    Unreachable(ServiceId),
    /// The source has no outgoing edges.
    EmptySource,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownService(id) => write!(f, "edge references unknown service {id}"),
            GraphError::DuplicateService(id) => write!(f, "service {id} registered twice"),
            GraphError::InvalidEndpoint(node) => {
                write!(f, "edge endpoint {node} is not allowed in that position")
            }
            GraphError::DuplicateEdge(from, to) => write!(f, "duplicate edge {from} -> {to}"),
            GraphError::DefaultEdgeCount { node, count } => {
                write!(
                    f,
                    "node {node} has {count} default edges (expected exactly 1)"
                )
            }
            GraphError::DeadEnd(id) => write!(f, "service {id} has no outgoing edges"),
            GraphError::Cycle(id) => write!(f, "cycle detected through service {id}"),
            GraphError::Unreachable(id) => {
                write!(f, "service {id} is not reachable from the source")
            }
            GraphError::EmptySource => write!(f, "the source has no outgoing edges"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed edge of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Edge {
    to: GraphNode,
    default: bool,
}

/// Options controlling compilation of a graph into flow rules.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// NIC ports whose arriving traffic enters the graph at the source.
    pub ingress_ports: Vec<Port>,
    /// NIC port that packets reaching the sink are transmitted from.
    pub egress_port: Port,
    /// Replace eligible sequential read-only segments with parallel dispatch.
    pub enable_parallel: bool,
    /// Priority assigned to the generated (wildcard) rules.
    pub priority: u16,
    /// Services implemented on this host. `None` means all services are
    /// local. Edges to non-local services are compiled to `ToPort
    /// (external_port)` so the packet is forwarded toward the host that
    /// implements the next service.
    pub local_services: Option<HashSet<ServiceId>>,
    /// Port used to reach services hosted elsewhere.
    pub external_port: Port,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            ingress_ports: vec![0],
            egress_port: 1,
            enable_parallel: false,
            priority: 0,
            local_services: None,
            external_port: 1,
        }
    }
}

/// An immutable, validated service graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(into = "GraphRepr", from = "GraphRepr")]
pub struct ServiceGraph {
    name: String,
    services: BTreeMap<ServiceId, ServiceNode>,
    edges: BTreeMap<GraphNode, Vec<Edge>>,
}

/// Flat serde representation of a [`ServiceGraph`] (maps with non-string
/// keys do not serialize to JSON, so edges are flattened to a list).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GraphRepr {
    name: String,
    services: Vec<ServiceNode>,
    edges: Vec<(GraphNode, GraphNode, bool)>,
}

impl From<ServiceGraph> for GraphRepr {
    fn from(graph: ServiceGraph) -> Self {
        GraphRepr {
            name: graph.name,
            services: graph.services.into_values().collect(),
            edges: graph
                .edges
                .into_iter()
                .flat_map(|(from, edges)| edges.into_iter().map(move |e| (from, e.to, e.default)))
                .collect(),
        }
    }
}

impl From<GraphRepr> for ServiceGraph {
    fn from(repr: GraphRepr) -> Self {
        let mut edges: BTreeMap<GraphNode, Vec<Edge>> = BTreeMap::new();
        for (from, to, default) in repr.edges {
            let list = edges.entry(from).or_default();
            let edge = Edge { to, default };
            // Preserve the default-first ordering used by the builder.
            if default {
                list.insert(0, edge);
            } else {
                list.push(edge);
            }
        }
        ServiceGraph {
            name: repr.name,
            services: repr.services.into_iter().map(|s| (s.id, s)).collect(),
            edges,
        }
    }
}

/// Builder for [`ServiceGraph`].
#[derive(Debug, Clone, Default)]
pub struct ServiceGraphBuilder {
    name: String,
    services: BTreeMap<ServiceId, ServiceNode>,
    edges: BTreeMap<GraphNode, Vec<Edge>>,
    next_id: u32,
    error: Option<GraphError>,
}

impl ServiceGraphBuilder {
    /// Starts a new graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceGraphBuilder {
            name: name.into(),
            next_id: 1,
            ..ServiceGraphBuilder::default()
        }
    }

    /// Adds a service vertex with an automatically assigned id.
    pub fn add_service(&mut self, name: impl Into<String>, read_only: bool) -> ServiceId {
        let id = ServiceId::new(self.next_id);
        self.next_id += 1;
        self.add_service_with_id(id, name, read_only);
        id
    }

    /// Adds a service vertex with an explicit id.
    pub fn add_service_with_id(
        &mut self,
        id: ServiceId,
        name: impl Into<String>,
        read_only: bool,
    ) -> ServiceId {
        if self.services.contains_key(&id) {
            self.error.get_or_insert(GraphError::DuplicateService(id));
        }
        self.next_id = self.next_id.max(id.value() + 1);
        self.services
            .insert(id, ServiceNode::new(id, name, read_only));
        id
    }

    /// Adds a non-default edge.
    pub fn add_edge(&mut self, from: impl Into<GraphNode>, to: impl Into<GraphNode>) -> &mut Self {
        self.push_edge(from.into(), to.into(), false);
        self
    }

    /// Adds the default edge for `from`.
    pub fn add_default_edge(
        &mut self,
        from: impl Into<GraphNode>,
        to: impl Into<GraphNode>,
    ) -> &mut Self {
        self.push_edge(from.into(), to.into(), true);
        self
    }

    fn push_edge(&mut self, from: GraphNode, to: GraphNode, default: bool) {
        if from == GraphNode::Sink || to == GraphNode::Source {
            self.error
                .get_or_insert(GraphError::InvalidEndpoint(if from == GraphNode::Sink {
                    from
                } else {
                    to
                }));
            return;
        }
        let list = self.edges.entry(from).or_default();
        if list.iter().any(|e| e.to == to) {
            self.error
                .get_or_insert(GraphError::DuplicateEdge(from, to));
            return;
        }
        if default {
            // Default edges are kept at the front so compilation emits them
            // as the first (default) action.
            list.insert(0, Edge { to, default });
        } else {
            list.push(Edge { to, default });
        }
    }

    /// Validates the graph and returns it.
    pub fn build(self) -> Result<ServiceGraph, GraphError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        let graph = ServiceGraph {
            name: self.name,
            services: self.services,
            edges: self.edges,
        };
        graph.validate()?;
        Ok(graph)
    }
}

impl ServiceGraph {
    /// Starts building a graph.
    pub fn builder(name: impl Into<String>) -> ServiceGraphBuilder {
        ServiceGraphBuilder::new(name)
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of service vertices.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Returns `true` if the graph has no service vertices.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// All service vertices in id order.
    pub fn services(&self) -> impl Iterator<Item = &ServiceNode> {
        self.services.values()
    }

    /// Looks up a service vertex by id.
    pub fn service(&self, id: ServiceId) -> Option<&ServiceNode> {
        self.services.get(&id)
    }

    /// Looks up a service vertex by name.
    pub fn service_by_name(&self, name: &str) -> Option<&ServiceNode> {
        self.services.values().find(|s| s.name == name)
    }

    /// Returns `true` if the service is declared read-only.
    pub fn is_read_only(&self, id: ServiceId) -> bool {
        self.services.get(&id).map(|s| s.read_only).unwrap_or(false)
    }

    /// Ordered successors of a node (default first).
    pub fn successors(&self, node: impl Into<GraphNode>) -> Vec<GraphNode> {
        self.edges
            .get(&node.into())
            .map(|edges| edges.iter().map(|e| e.to).collect())
            .unwrap_or_default()
    }

    /// The default successor of a node, if it has outgoing edges.
    pub fn default_successor(&self, node: impl Into<GraphNode>) -> Option<GraphNode> {
        self.edges
            .get(&node.into())
            .and_then(|edges| edges.iter().find(|e| e.default).map(|e| e.to))
    }

    /// Nodes with an edge *to* `node`.
    pub fn predecessors(&self, node: impl Into<GraphNode>) -> Vec<GraphNode> {
        let node = node.into();
        self.edges
            .iter()
            .filter(|(_, edges)| edges.iter().any(|e| e.to == node))
            .map(|(from, _)| *from)
            .collect()
    }

    /// The services traversed by following only default edges from the
    /// source — the "service chain" view of the graph.
    pub fn default_path(&self) -> Vec<ServiceId> {
        let mut path = Vec::new();
        let mut current = GraphNode::Source;
        let mut guard = 0;
        while let Some(next) = self.default_successor(current) {
            if let GraphNode::Service(id) = next {
                path.push(id);
            }
            if next == GraphNode::Sink {
                break;
            }
            current = next;
            guard += 1;
            if guard > self.services.len() + 1 {
                break; // cycle protection; validated graphs never hit this
            }
        }
        path
    }

    fn validate(&self) -> Result<(), GraphError> {
        // Every edge endpoint must be a known service (or source/sink).
        for (from, edges) in &self.edges {
            if let GraphNode::Service(id) = from {
                if !self.services.contains_key(id) {
                    return Err(GraphError::UnknownService(*id));
                }
            }
            for edge in edges {
                if let GraphNode::Service(id) = edge.to {
                    if !self.services.contains_key(&id) {
                        return Err(GraphError::UnknownService(id));
                    }
                }
            }
        }
        // The source must have edges, with exactly one default.
        let source_edges = self.edges.get(&GraphNode::Source);
        match source_edges {
            None => return Err(GraphError::EmptySource),
            Some(edges) if edges.is_empty() => return Err(GraphError::EmptySource),
            Some(edges) => {
                let defaults = edges.iter().filter(|e| e.default).count();
                if defaults != 1 {
                    return Err(GraphError::DefaultEdgeCount {
                        node: GraphNode::Source,
                        count: defaults,
                    });
                }
            }
        }
        // Every service needs outgoing edges with exactly one default.
        for id in self.services.keys() {
            let node = GraphNode::Service(*id);
            match self.edges.get(&node) {
                None => return Err(GraphError::DeadEnd(*id)),
                Some(edges) if edges.is_empty() => return Err(GraphError::DeadEnd(*id)),
                Some(edges) => {
                    let defaults = edges.iter().filter(|e| e.default).count();
                    if defaults != 1 {
                        return Err(GraphError::DefaultEdgeCount {
                            node,
                            count: defaults,
                        });
                    }
                }
            }
        }
        self.check_acyclic()?;
        self.check_reachability()?;
        Ok(())
    }

    fn check_acyclic(&self) -> Result<(), GraphError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            Unvisited,
            InProgress,
            Done,
        }
        let mut marks: BTreeMap<GraphNode, Mark> = BTreeMap::new();
        fn visit(
            graph: &ServiceGraph,
            node: GraphNode,
            marks: &mut BTreeMap<GraphNode, Mark>,
        ) -> Result<(), GraphError> {
            match marks.get(&node).copied().unwrap_or(Mark::Unvisited) {
                Mark::Done => return Ok(()),
                Mark::InProgress => {
                    if let GraphNode::Service(id) = node {
                        return Err(GraphError::Cycle(id));
                    }
                    return Ok(());
                }
                Mark::Unvisited => {}
            }
            marks.insert(node, Mark::InProgress);
            if let Some(edges) = graph.edges.get(&node) {
                for edge in edges {
                    visit(graph, edge.to, marks)?;
                }
            }
            marks.insert(node, Mark::Done);
            Ok(())
        }
        visit(self, GraphNode::Source, &mut marks)?;
        // Also start from any service not reachable from the source so cycles
        // in disconnected components are reported as cycles, not reachability.
        for id in self.services.keys() {
            visit(self, GraphNode::Service(*id), &mut marks)?;
        }
        Ok(())
    }

    fn check_reachability(&self) -> Result<(), GraphError> {
        let mut reached: HashSet<GraphNode> = HashSet::new();
        let mut stack = vec![GraphNode::Source];
        while let Some(node) = stack.pop() {
            if !reached.insert(node) {
                continue;
            }
            if let Some(edges) = self.edges.get(&node) {
                for edge in edges {
                    stack.push(edge.to);
                }
            }
        }
        for id in self.services.keys() {
            if !reached.contains(&GraphNode::Service(*id)) {
                return Err(GraphError::Unreachable(*id));
            }
        }
        Ok(())
    }

    /// Detects maximal runs of consecutive read-only services that can
    /// safely process the same packet in parallel (paper §3.3).
    ///
    /// A run `[S1, …, Sk]` qualifies when every member is read-only, each of
    /// `S1..S(k-1)` has exactly one outgoing edge (to the next member), and
    /// each of `S2..Sk` has exactly one incoming edge (from the previous
    /// member). Only runs of length ≥ 2 are returned.
    pub fn parallel_segments(&self) -> Vec<Vec<ServiceId>> {
        let mut segments = Vec::new();
        let mut consumed: HashSet<ServiceId> = HashSet::new();
        for id in self.services.keys() {
            if consumed.contains(id) || !self.is_read_only(*id) {
                continue;
            }
            // Only start a segment at a service that is not itself the
            // continuation of an earlier eligible run.
            if self.extends_backward(*id) {
                continue;
            }
            let mut run = vec![*id];
            let mut current = *id;
            loop {
                let succs = self.successors(GraphNode::Service(current));
                if succs.len() != 1 {
                    break;
                }
                let next = match succs[0] {
                    GraphNode::Service(next) if self.is_read_only(next) => next,
                    _ => break,
                };
                if self.predecessors(GraphNode::Service(next)).len() != 1 {
                    break;
                }
                run.push(next);
                current = next;
            }
            if run.len() >= 2 {
                consumed.extend(run.iter().copied());
                segments.push(run);
            }
        }
        segments
    }

    /// Returns `true` if `id` would be the continuation (not the head) of a
    /// parallelizable run.
    fn extends_backward(&self, id: ServiceId) -> bool {
        let preds = self.predecessors(GraphNode::Service(id));
        if preds.len() != 1 {
            return false;
        }
        match preds[0] {
            GraphNode::Service(prev) => {
                self.is_read_only(prev) && self.successors(GraphNode::Service(prev)).len() == 1
            }
            _ => false,
        }
    }

    /// Compiles the graph into the extended flow rules installed into an NF
    /// Manager's table (paper §3.3 "NF Manager Flow Tables").
    pub fn compile(&self, options: &CompileOptions) -> Vec<FlowRule> {
        let is_local = |id: ServiceId| {
            options
                .local_services
                .as_ref()
                .map(|set| set.contains(&id))
                .unwrap_or(true)
        };
        let to_action = |node: GraphNode| match node {
            GraphNode::Service(id) if is_local(id) => Action::ToService(id),
            GraphNode::Service(_) => Action::ToPort(options.external_port),
            GraphNode::Sink => Action::ToPort(options.egress_port),
            GraphNode::Source => Action::Drop,
        };

        let segments = if options.enable_parallel {
            self.parallel_segments()
        } else {
            Vec::new()
        };
        let segment_for_head = |id: ServiceId| segments.iter().find(|seg| seg[0] == id);

        // Given a node's ordered successors, produce the action list and
        // parallel flag, substituting a parallel dispatch when the sole
        // successor heads an eligible, fully-local segment.
        let actions_for = |node: GraphNode| -> (Vec<Action>, bool) {
            let succs = self.successors(node);
            if succs.len() == 1 {
                if let GraphNode::Service(head) = succs[0] {
                    if let Some(segment) = segment_for_head(head) {
                        if segment.iter().all(|id| is_local(*id)) {
                            return (
                                segment.iter().map(|id| Action::ToService(*id)).collect(),
                                true,
                            );
                        }
                    }
                }
            }
            (succs.into_iter().map(to_action).collect(), false)
        };

        let mut rules = Vec::new();
        // Ingress rules: NIC port -> first service(s).
        let (source_actions, source_parallel) = actions_for(GraphNode::Source);
        for port in &options.ingress_ports {
            let matcher = FlowMatch::at_step(RulePort::Nic(*port));
            let rule = if source_parallel {
                FlowRule::parallel(matcher, source_actions.clone())
            } else {
                FlowRule::new(matcher, source_actions.clone())
            };
            rules.push(rule.with_priority(options.priority));
        }
        // Per-service rules for local services.
        for id in self.services.keys().filter(|id| is_local(**id)) {
            let (actions, parallel) = actions_for(GraphNode::Service(*id));
            let matcher = FlowMatch::at_step(RulePort::Service(*id));
            let rule = if parallel {
                FlowRule::parallel(matcher, actions)
            } else {
                FlowRule::new(matcher, actions)
            };
            rules.push(rule.with_priority(options.priority));
        }
        rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Source -> A -> B -> Sink with an A -> Sink escape edge.
    fn simple_graph() -> (ServiceGraph, ServiceId, ServiceId) {
        let mut b = ServiceGraph::builder("simple");
        let a = b.add_service("a", true);
        let bee = b.add_service("b", false);
        b.add_default_edge(GraphNode::Source, a);
        b.add_default_edge(a, bee);
        b.add_edge(a, GraphNode::Sink);
        b.add_default_edge(bee, GraphNode::Sink);
        (b.build().unwrap(), a, bee)
    }

    #[test]
    fn build_and_query() {
        let (g, a, bee) = simple_graph();
        assert_eq!(g.name(), "simple");
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        assert_eq!(g.service(a).unwrap().name, "a");
        assert_eq!(g.service_by_name("b").unwrap().id, bee);
        assert!(g.is_read_only(a));
        assert!(!g.is_read_only(bee));
        assert_eq!(
            g.default_successor(GraphNode::Source),
            Some(GraphNode::Service(a))
        );
        assert_eq!(
            g.successors(a),
            vec![GraphNode::Service(bee), GraphNode::Sink]
        );
        assert_eq!(g.predecessors(bee), vec![GraphNode::Service(a)]);
        assert_eq!(g.default_path(), vec![a, bee]);
    }

    #[test]
    fn validation_rejects_cycles() {
        let mut b = ServiceGraph::builder("cyclic");
        let x = b.add_service("x", false);
        let y = b.add_service("y", false);
        b.add_default_edge(GraphNode::Source, x);
        b.add_default_edge(x, y);
        b.add_default_edge(y, x);
        assert!(matches!(b.build(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn validation_rejects_dead_ends_and_missing_defaults() {
        let mut b = ServiceGraph::builder("dead-end");
        let x = b.add_service("x", false);
        b.add_default_edge(GraphNode::Source, x);
        assert_eq!(b.build(), Err(GraphError::DeadEnd(x)));

        let mut b = ServiceGraph::builder("no-default");
        let x = b.add_service("x", false);
        b.add_default_edge(GraphNode::Source, x);
        b.add_edge(x, GraphNode::Sink); // non-default only
        assert!(matches!(
            b.build(),
            Err(GraphError::DefaultEdgeCount { count: 0, .. })
        ));

        let mut b = ServiceGraph::builder("empty");
        let _ = b.add_service("x", false);
        assert!(matches!(b.build(), Err(GraphError::EmptySource)));
    }

    #[test]
    fn validation_rejects_unreachable_and_unknown() {
        let mut b = ServiceGraph::builder("unreachable");
        let x = b.add_service("x", false);
        let y = b.add_service("y", false);
        b.add_default_edge(GraphNode::Source, x);
        b.add_default_edge(x, GraphNode::Sink);
        b.add_default_edge(y, GraphNode::Sink);
        assert_eq!(b.build(), Err(GraphError::Unreachable(y)));

        let mut b = ServiceGraph::builder("unknown");
        let x = b.add_service("x", false);
        b.add_default_edge(GraphNode::Source, x);
        b.add_default_edge(x, ServiceId::new(99));
        assert_eq!(
            b.build(),
            Err(GraphError::UnknownService(ServiceId::new(99)))
        );
    }

    #[test]
    fn builder_rejects_structural_mistakes() {
        let mut b = ServiceGraph::builder("bad-endpoint");
        let x = b.add_service("x", false);
        b.add_default_edge(GraphNode::Sink, x);
        assert!(matches!(b.build(), Err(GraphError::InvalidEndpoint(_))));

        let mut b = ServiceGraph::builder("dup-edge");
        let x = b.add_service("x", false);
        b.add_default_edge(GraphNode::Source, x);
        b.add_edge(GraphNode::Source, x);
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge(_, _))));

        let mut b = ServiceGraph::builder("dup-service");
        b.add_service_with_id(ServiceId::new(1), "x", false);
        b.add_service_with_id(ServiceId::new(1), "y", false);
        assert!(matches!(b.build(), Err(GraphError::DuplicateService(_))));
    }

    #[test]
    fn parallel_segment_detection() {
        // Source -> A(ro) -> B(ro) -> C(ro, multi-out) -> Sink
        //                                     \-> D(rw) -> Sink
        let mut b = ServiceGraph::builder("parallel");
        let a = b.add_service("a", true);
        let bee = b.add_service("b", true);
        let c = b.add_service("c", true);
        let d = b.add_service("d", false);
        b.add_default_edge(GraphNode::Source, a);
        b.add_default_edge(a, bee);
        b.add_default_edge(bee, c);
        b.add_default_edge(c, GraphNode::Sink);
        b.add_edge(c, d);
        b.add_default_edge(d, GraphNode::Sink);
        let g = b.build().unwrap();
        let segments = g.parallel_segments();
        assert_eq!(segments, vec![vec![a, bee, c]]);
    }

    #[test]
    fn parallel_segments_require_read_only_and_single_edges() {
        let (g, _, _) = simple_graph();
        // "a" is read-only but has two out-edges; "b" is not read-only.
        assert!(g.parallel_segments().is_empty());
    }

    #[test]
    fn compile_sequential_rules() {
        let (g, a, bee) = simple_graph();
        let rules = g.compile(&CompileOptions {
            ingress_ports: vec![0],
            egress_port: 7,
            ..CompileOptions::default()
        });
        // 1 ingress rule + 2 service rules.
        assert_eq!(rules.len(), 3);
        let ingress = &rules[0];
        assert_eq!(ingress.matcher.step, Some(RulePort::Nic(0)));
        assert_eq!(ingress.default_action(), Some(Action::ToService(a)));
        let rule_a = rules
            .iter()
            .find(|r| r.matcher.step == Some(RulePort::Service(a)))
            .unwrap();
        assert_eq!(
            rule_a.actions,
            vec![Action::ToService(bee), Action::ToPort(7)]
        );
        assert!(!rule_a.parallel);
        let rule_b = rules
            .iter()
            .find(|r| r.matcher.step == Some(RulePort::Service(bee)))
            .unwrap();
        assert_eq!(rule_b.actions, vec![Action::ToPort(7)]);
    }

    #[test]
    fn compile_parallel_rules() {
        let mut b = ServiceGraph::builder("par");
        let a = b.add_service("a", true);
        let bee = b.add_service("b", true);
        b.add_default_edge(GraphNode::Source, a);
        b.add_default_edge(a, bee);
        b.add_default_edge(bee, GraphNode::Sink);
        let g = b.build().unwrap();
        let rules = g.compile(&CompileOptions {
            enable_parallel: true,
            ..CompileOptions::default()
        });
        let ingress = rules
            .iter()
            .find(|r| r.matcher.step == Some(RulePort::Nic(0)))
            .unwrap();
        assert!(ingress.parallel);
        assert_eq!(
            ingress.actions,
            vec![Action::ToService(a), Action::ToService(bee)]
        );
        // Without parallelism the same graph compiles sequentially.
        let rules = g.compile(&CompileOptions::default());
        let ingress = rules
            .iter()
            .find(|r| r.matcher.step == Some(RulePort::Nic(0)))
            .unwrap();
        assert!(!ingress.parallel);
        assert_eq!(ingress.actions, vec![Action::ToService(a)]);
    }

    #[test]
    fn compile_projects_remote_services_to_external_port() {
        let (g, a, bee) = simple_graph();
        let mut local = HashSet::new();
        local.insert(a);
        let rules = g.compile(&CompileOptions {
            local_services: Some(local),
            external_port: 9,
            egress_port: 1,
            ..CompileOptions::default()
        });
        // Ingress + rule for "a" only.
        assert_eq!(rules.len(), 2);
        let rule_a = rules
            .iter()
            .find(|r| r.matcher.step == Some(RulePort::Service(a)))
            .unwrap();
        // "b" is remote, so the default action forwards out the external port.
        assert_eq!(rule_a.default_action(), Some(Action::ToPort(9)));
        assert!(rules
            .iter()
            .all(|r| r.matcher.step != Some(RulePort::Service(bee))));
    }

    // Gated: requires the real serde_json crate, unavailable offline (see
    // shims/README.md and ROADMAP.md "Open items").
    #[cfg(feature = "json-tests")]
    #[test]
    fn graph_serializes_to_json() {
        let (g, _, _) = simple_graph();
        let json = serde_json::to_string(&g).unwrap();
        let back: ServiceGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
