//! Service graph abstractions for SDNFV (paper §3.2).
//!
//! A *service graph* describes a network application as a DAG whose vertices
//! are abstract network services (identified by [`ServiceId`]) and whose
//! edges are the allowed next hops a packet may take when an NF finishes
//! with it. One outgoing edge per vertex is marked as the *default* path;
//! NFs that know nothing about the rest of the graph simply follow it, while
//! application-aware NFs may pick any other edge on a per-packet basis.
//!
//! The crate provides:
//!
//! * [`ServiceGraph`] / [`ServiceGraphBuilder`] — construction and
//!   validation (acyclicity, reachability, default-path checks),
//! * parallel-segment detection — consecutive read-only services that may
//!   safely analyse the same packet simultaneously (§3.3),
//! * compilation of a graph (or the projection of a graph onto one host)
//!   into the extended flow rules of [`sdnfv-flowtable`](sdnfv_flowtable),
//! * [`catalog`] — ready-made graphs for the paper's two motivating
//!   applications (anomaly detection and video optimization).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod graph;
pub mod node;

pub use graph::{CompileOptions, GraphError, ServiceGraph, ServiceGraphBuilder};
pub use node::{GraphNode, ServiceNode};
pub use sdnfv_flowtable::ServiceId;
