//! Graph vertices: services plus the distinguished source and sink.

use serde::{Deserialize, Serialize};
use std::fmt;

use sdnfv_flowtable::ServiceId;

/// A vertex reference in a service graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GraphNode {
    /// The packet's entry point into the graph (traffic arriving from the
    /// network).
    Source,
    /// A network service vertex.
    Service(ServiceId),
    /// The packet's exit from the graph (traffic leaving toward its
    /// destination).
    Sink,
}

impl GraphNode {
    /// Returns the service id if this node is a service vertex.
    pub fn service(&self) -> Option<ServiceId> {
        match self {
            GraphNode::Service(id) => Some(*id),
            _ => None,
        }
    }
}

impl fmt::Display for GraphNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphNode::Source => write!(f, "source"),
            GraphNode::Service(id) => write!(f, "{id}"),
            GraphNode::Sink => write!(f, "sink"),
        }
    }
}

impl From<ServiceId> for GraphNode {
    fn from(id: ServiceId) -> Self {
        GraphNode::Service(id)
    }
}

/// Metadata describing one service vertex.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceNode {
    /// The service identity.
    pub id: ServiceId,
    /// Human-readable name (e.g. `"firewall"`).
    pub name: String,
    /// Whether the NF implementing the service only reads packets. Read-only
    /// services are eligible for parallel dispatch.
    pub read_only: bool,
}

impl ServiceNode {
    /// Creates a service node description.
    pub fn new(id: ServiceId, name: impl Into<String>, read_only: bool) -> Self {
        ServiceNode {
            id,
            name: name.into(),
            read_only,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display_and_service_accessor() {
        assert_eq!(GraphNode::Source.to_string(), "source");
        assert_eq!(GraphNode::Sink.to_string(), "sink");
        let svc = GraphNode::Service(ServiceId::new(4));
        assert_eq!(svc.to_string(), "svc-4");
        assert_eq!(svc.service(), Some(ServiceId::new(4)));
        assert_eq!(GraphNode::Source.service(), None);
        assert_eq!(GraphNode::from(ServiceId::new(4)), svc);
    }

    #[test]
    fn service_node_construction() {
        let node = ServiceNode::new(ServiceId::new(1), "ids", true);
        assert_eq!(node.name, "ids");
        assert!(node.read_only);
    }
}
