//! The network-function programming interface (the "SDNFV-User library").

use sdnfv_flowtable::{Action, FlowMatch, ServiceId};
use sdnfv_proto::flow::FlowKey;
use sdnfv_proto::packet::Port;
use sdnfv_proto::Packet;

use crate::batch::{PacketBatch, PacketBatchMut};

/// The per-packet action an NF requests when it finishes processing
/// (paper §3.4 "NF Packet Actions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Follow the default action installed in the flow table.
    Default,
    /// Drop the packet.
    Discard,
    /// Send the packet to the NF providing the given service, if the flow
    /// table lists it as an allowed next hop.
    ToService(ServiceId),
    /// Send the packet out the given NIC port, if allowed.
    ToPort(Port),
}

impl Verdict {
    /// Translates the verdict into a flow-table [`Action`], or `None` for
    /// [`Verdict::Default`] (which defers to the table).
    pub fn as_action(&self) -> Option<Action> {
        match self {
            Verdict::Default => None,
            Verdict::Discard => Some(Action::Drop),
            Verdict::ToService(id) => Some(Action::ToService(*id)),
            Verdict::ToPort(p) => Some(Action::ToPort(*p)),
        }
    }
}

/// A cross-layer control message an NF can send to its NF Manager
/// (paper §3.4 "Cross-Layer Control").
///
/// The manager attributes the message to the sending service and either
/// applies it locally or forwards it to the SDNFV Application for
/// validation.
#[derive(Debug, Clone, PartialEq)]
pub enum NfMessage {
    /// `SkipMe(F, S)`: flows matching `flows` should bypass the sending
    /// service — NFs whose default edge leads to it will instead default to
    /// its own default action.
    SkipMe {
        /// Flows the change applies to.
        flows: FlowMatch,
    },
    /// `RequestMe(F, S)`: all nodes with an edge to the sending service make
    /// it their default action for flows matching `flows`.
    RequestMe {
        /// Flows the change applies to.
        flows: FlowMatch,
    },
    /// `ChangeDefault(F, S, T)`: update the default action of service
    /// `service`'s rules to `new_default` for flows matching `flows`.
    ChangeDefault {
        /// Flows the change applies to.
        flows: FlowMatch,
        /// The service whose default action is updated.
        service: ServiceId,
        /// The new default action.
        new_default: Action,
    },
    /// `Message(S, K, V)`: an application-defined key/value message for the
    /// NF Manager or the SDNFV Application (e.g. a DDoS alarm).
    Custom {
        /// Application-defined key identifying the message handler.
        key: String,
        /// Application-defined value.
        value: String,
    },
}

impl NfMessage {
    /// Convenience constructor for [`NfMessage::Custom`].
    pub fn custom(key: impl Into<String>, value: impl Into<String>) -> Self {
        NfMessage::Custom {
            key: key.into(),
            value: value.into(),
        }
    }
}

/// A cross-layer message plus the flow that caused the NF to send it, when
/// the NF attributed one ([`NfContext::send_for_flow`]).
///
/// Attribution is what lets the data plane assign a *wildcard* rule
/// mutation to the mutating flow's steering bucket, so the mutation can
/// travel with the bucket when it is re-homed to another shard. Messages
/// sent unattributed (plain [`NfContext::send`]) are conservatively treated
/// as belonging to every bucket of the shard.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributedNfMessage {
    /// The flow whose packet triggered the message, if the NF said so.
    pub flow: Option<FlowKey>,
    /// The message.
    pub message: NfMessage,
}

/// An opaque chunk of NF-internal per-flow state, exported by
/// [`NetworkFunction::export_flow_state`] on a flow's old shard and handed
/// to [`NetworkFunction::import_flow_state`] on its new one.
///
/// The payload is deliberately schema-free — a list of named counters plus
/// an optional raw byte blob — so NFs can round-trip their state without
/// any serialization framework (the offline `serde` shim stays a no-op).
/// Only the NF that produced a state needs to understand it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NfFlowState {
    counters: Vec<(String, u64)>,
    bytes: Vec<u8>,
}

impl NfFlowState {
    /// Creates an empty state payload.
    pub fn new() -> Self {
        NfFlowState::default()
    }

    /// Creates a payload holding a single named counter.
    pub fn with_counter(key: impl Into<String>, value: u64) -> Self {
        let mut state = NfFlowState::new();
        state.set_counter(key, value);
        state
    }

    /// Sets (or overwrites) a named counter.
    pub fn set_counter(&mut self, key: impl Into<String>, value: u64) {
        let key = key.into();
        match self.counters.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.counters.push((key, value)),
        }
    }

    /// Reads a named counter.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find_map(|(k, v)| (k == key).then_some(*v))
    }

    /// Replaces the raw byte payload.
    pub fn set_bytes(&mut self, bytes: Vec<u8>) {
        self.bytes = bytes;
    }

    /// The raw byte payload.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Returns `true` if the payload carries nothing.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.bytes.is_empty()
    }
}

/// Per-packet execution context handed to an NF.
///
/// It carries the current (virtual or wall-clock) time, the index of the
/// data-plane **shard** the NF instance serves, and collects the cross-layer
/// messages the NF wants to send; the NF Manager drains them after the call
/// returns.
#[derive(Debug, Default)]
pub struct NfContext {
    now_ns: u64,
    shard: usize,
    messages: Vec<AttributedNfMessage>,
}

impl NfContext {
    /// Creates a context for a packet processed at time `now_ns` (on shard
    /// 0 — the inline engine and single-shard hosts).
    pub fn new(now_ns: u64) -> Self {
        NfContext::for_shard(0, now_ns)
    }

    /// Creates a context for a packet processed at time `now_ns` on data
    /// plane shard `shard`.
    pub fn for_shard(shard: usize, now_ns: u64) -> Self {
        NfContext {
            now_ns,
            shard,
            messages: Vec::new(),
        }
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The data-plane shard this NF instance serves. Flow-hash steering
    /// guarantees every packet of a flow is processed on the same shard, so
    /// per-flow NF state keyed by flow never needs cross-shard
    /// synchronization.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Updates the context's notion of time (used when one context is reused
    /// across packets to avoid allocation).
    pub fn set_now_ns(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    /// Queues a cross-layer message for the NF Manager, unattributed to any
    /// flow. Prefer [`NfContext::send_for_flow`] when the message was
    /// triggered by a specific packet: attribution lets the sharded data
    /// plane carry the resulting wildcard mutation along when the flow's
    /// steering bucket is re-homed; unattributed wildcard mutations are
    /// conservatively replayed with *every* departing bucket.
    pub fn send(&mut self, message: NfMessage) {
        self.messages.push(AttributedNfMessage {
            flow: None,
            message,
        });
    }

    /// Queues a cross-layer message attributed to the flow whose packet
    /// triggered it (see [`NfContext::send`] for why attribution matters).
    pub fn send_for_flow(&mut self, flow: &FlowKey, message: NfMessage) {
        self.messages.push(AttributedNfMessage {
            flow: Some(*flow),
            message,
        });
    }

    /// Drains the queued messages (called by the NF Manager), dropping the
    /// flow attributions. Dispatch layers that feed a sharded flow table
    /// use [`NfContext::take_attributed_messages`] instead.
    pub fn take_messages(&mut self) -> Vec<NfMessage> {
        std::mem::take(&mut self.messages)
            .into_iter()
            .map(|attributed| attributed.message)
            .collect()
    }

    /// Drains the queued messages with their flow attributions.
    pub fn take_attributed_messages(&mut self) -> Vec<AttributedNfMessage> {
        std::mem::take(&mut self.messages)
    }

    /// Returns `true` if the NF queued any messages.
    pub fn has_messages(&self) -> bool {
        !self.messages.is_empty()
    }
}

/// A network function: the user-space packet-processing application running
/// inside one NF "VM".
///
/// The interface is **batch-first**: the data plane moves packets in bursts
/// and invokes [`NetworkFunction::process_batch`] for functions that declare
/// themselves [read-only](NetworkFunction::read_only) (these may be
/// scheduled in parallel on the same burst), and
/// [`NetworkFunction::process_batch_mut`] for functions that modify packets.
/// Simple NFs only implement the per-packet
/// [`process`](NetworkFunction::process) /
/// [`process_mut`](NetworkFunction::process_mut) hooks and ride the default
/// batch adapters, which loop over the burst; throughput-critical NFs
/// override the batch entry points and amortize per-packet work (flow-key
/// extraction, rule matching, state lookups) across the burst.
pub trait NetworkFunction: Send {
    /// Human-readable service name (matched against service-graph vertex
    /// names by the orchestrator).
    fn name(&self) -> &str;

    /// Whether this function only ever reads packets. Read-only functions
    /// are eligible for parallel dispatch (paper §3.3).
    fn read_only(&self) -> bool {
        true
    }

    /// Called once when the function is attached to an NF Manager, before it
    /// receives any packet. NFs that need to announce themselves (e.g. a
    /// scrubber sending `RequestMe` on startup) do so here.
    fn on_start(&mut self, _ctx: &mut NfContext) {}

    /// Detaches and returns this instance's internal state for flow `key`,
    /// if it holds any — the export half of NF state migration.
    ///
    /// When the sharded data plane re-homes a flow's steering bucket to
    /// another shard, it calls this on the old shard's instances (after the
    /// flow has fully quiesced) and feeds the payloads to
    /// [`import_flow_state`](NetworkFunction::import_flow_state) on the new
    /// shard, so per-flow counters, flags and windows survive the move.
    /// Implementations should *remove* the flow's state: the old instance
    /// will never see the flow again.
    ///
    /// The default keeps no per-flow state and exports nothing.
    fn export_flow_state(&mut self, _key: &FlowKey) -> Option<NfFlowState> {
        None
    }

    /// Discards this instance's internal state for flow `key`, if any —
    /// called when the flow's rule was evicted by the table's idle/hard
    /// timeout lifecycle, so per-flow NF state dies with its rule. Returns
    /// the discarded payload (callers ignore it; overrides may use it for
    /// accounting, e.g. final-counter export to a collector).
    ///
    /// The default detaches via
    /// [`export_flow_state`](NetworkFunction::export_flow_state), which is
    /// exactly "remove and return".
    fn scrub_flow_state(&mut self, key: &FlowKey) -> Option<NfFlowState> {
        self.export_flow_state(key)
    }

    /// Absorbs a state payload previously exported for flow `key` by
    /// another instance of the same NF — the import half of NF state
    /// migration. Called before the flow's first packet arrives on the new
    /// shard. May be called more than once per flow (one payload per old
    /// replica), so implementations should *merge* rather than overwrite
    /// where that is meaningful.
    ///
    /// The default discards the payload.
    fn import_flow_state(&mut self, _key: &FlowKey, _state: NfFlowState) {}

    /// The flows this instance currently holds internal state for.
    ///
    /// The re-home handshake enumerates a bucket's flows from the flow
    /// table's exact entries *plus* this set, so state for flows that never
    /// installed an exact rule still migrates. NFs that key state by
    /// something irreversible (a bare hash) cannot implement this — their
    /// state only migrates for flows discoverable elsewhere; prefer keying
    /// by [`FlowKey`].
    ///
    /// The default reports no keys.
    fn flow_state_keys(&self) -> Vec<FlowKey> {
        Vec::new()
    }

    /// Processes a packet the function must not modify.
    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict;

    /// Processes a packet the function may modify in place. The default
    /// implementation falls back to the read-only path.
    fn process_mut(&mut self, packet: &mut Packet, ctx: &mut NfContext) -> Verdict {
        self.process(packet, ctx)
    }

    /// Processes a burst of packets the function must not modify, writing
    /// one verdict per packet.
    ///
    /// The caller guarantees `verdicts.len() == batch.len()` and that every
    /// entry arrives pre-set to [`Verdict::Default`], so implementations
    /// only write the entries that deviate from the default path. Messages
    /// sent through `ctx` anywhere inside the burst are applied by the NF
    /// Manager before the next burst's flow-table lookups.
    ///
    /// The default implementation is the per-packet adapter: it loops over
    /// the burst calling [`process`](NetworkFunction::process).
    fn process_batch(
        &mut self,
        batch: &PacketBatch<'_>,
        verdicts: &mut [Verdict],
        ctx: &mut NfContext,
    ) {
        debug_assert_eq!(batch.len(), verdicts.len());
        for (slot, packet) in verdicts.iter_mut().zip(batch.iter()) {
            *slot = self.process(packet, ctx);
        }
    }

    /// Processes a burst of packets the function may modify in place,
    /// writing one verdict per packet. Same contract as
    /// [`process_batch`](NetworkFunction::process_batch); the default
    /// implementation loops over [`process_mut`](NetworkFunction::process_mut).
    fn process_batch_mut(
        &mut self,
        batch: &mut PacketBatchMut<'_, '_>,
        verdicts: &mut [Verdict],
        ctx: &mut NfContext,
    ) {
        debug_assert_eq!(batch.len(), verdicts.len());
        for (slot, packet) in verdicts.iter_mut().zip(batch.iter_mut()) {
            *slot = self.process_mut(packet, ctx);
        }
    }
}

impl<T: NetworkFunction + ?Sized> NetworkFunction for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn read_only(&self) -> bool {
        (**self).read_only()
    }

    fn on_start(&mut self, ctx: &mut NfContext) {
        (**self).on_start(ctx)
    }

    fn export_flow_state(&mut self, key: &FlowKey) -> Option<NfFlowState> {
        (**self).export_flow_state(key)
    }

    fn scrub_flow_state(&mut self, key: &FlowKey) -> Option<NfFlowState> {
        (**self).scrub_flow_state(key)
    }

    fn import_flow_state(&mut self, key: &FlowKey, state: NfFlowState) {
        (**self).import_flow_state(key, state)
    }

    fn flow_state_keys(&self) -> Vec<FlowKey> {
        (**self).flow_state_keys()
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        (**self).process(packet, ctx)
    }

    fn process_mut(&mut self, packet: &mut Packet, ctx: &mut NfContext) -> Verdict {
        (**self).process_mut(packet, ctx)
    }

    fn process_batch(
        &mut self,
        batch: &PacketBatch<'_>,
        verdicts: &mut [Verdict],
        ctx: &mut NfContext,
    ) {
        (**self).process_batch(batch, verdicts, ctx)
    }

    fn process_batch_mut(
        &mut self,
        batch: &mut PacketBatchMut<'_, '_>,
        verdicts: &mut [Verdict],
        ctx: &mut NfContext,
    ) {
        (**self).process_batch_mut(batch, verdicts, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    struct Fixed(Verdict);

    impl NetworkFunction for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }

        fn process(&mut self, _packet: &Packet, ctx: &mut NfContext) -> Verdict {
            ctx.send(NfMessage::custom("seen", "1"));
            self.0
        }
    }

    #[test]
    fn verdict_to_action_mapping() {
        assert_eq!(Verdict::Default.as_action(), None);
        assert_eq!(Verdict::Discard.as_action(), Some(Action::Drop));
        assert_eq!(
            Verdict::ToService(ServiceId::new(3)).as_action(),
            Some(Action::ToService(ServiceId::new(3)))
        );
        assert_eq!(Verdict::ToPort(2).as_action(), Some(Action::ToPort(2)));
    }

    #[test]
    fn context_collects_messages() {
        let mut ctx = NfContext::new(42);
        assert_eq!(ctx.now_ns(), 42);
        assert_eq!(ctx.shard(), 0, "plain contexts run on shard 0");
        assert_eq!(NfContext::for_shard(3, 42).shard(), 3);
        assert!(!ctx.has_messages());
        ctx.send(NfMessage::custom("k", "v"));
        assert!(ctx.has_messages());
        let msgs = ctx.take_messages();
        assert_eq!(msgs.len(), 1);
        assert!(!ctx.has_messages());
        ctx.set_now_ns(100);
        assert_eq!(ctx.now_ns(), 100);
    }

    #[test]
    fn boxed_nf_delegates() {
        let mut nf: Box<dyn NetworkFunction> = Box::new(Fixed(Verdict::Discard));
        assert_eq!(nf.name(), "fixed");
        assert!(nf.read_only());
        let mut ctx = NfContext::new(0);
        nf.on_start(&mut ctx);
        let mut pkt = PacketBuilder::udp().build();
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::Discard);
        assert_eq!(nf.process_mut(&mut pkt, &mut ctx), Verdict::Discard);
        assert_eq!(ctx.take_messages().len(), 2);
    }

    #[test]
    fn batch_adapter_loops_over_scalar_hooks() {
        use crate::batch::{PacketBatch, PacketBatchMut, VerdictSlice};
        let mut nf = Fixed(Verdict::Discard);
        let mut ctx = NfContext::new(0);
        let a = PacketBuilder::udp().build();
        let b = PacketBuilder::udp().build();
        let refs = [&a, &b];
        let mut verdicts = VerdictSlice::new();
        nf.process_batch(&PacketBatch::new(&refs), verdicts.reset(2), &mut ctx);
        assert_eq!(verdicts.as_slice(), &[Verdict::Discard, Verdict::Discard]);
        // The scalar hook queued one message per packet.
        assert_eq!(ctx.take_messages().len(), 2);

        let mut ma = PacketBuilder::udp().build();
        let mut mb = PacketBuilder::udp().build();
        let mut mut_refs: Vec<&mut Packet> = vec![&mut ma, &mut mb];
        let mut batch = PacketBatchMut::new(&mut mut_refs);
        nf.process_batch_mut(&mut batch, verdicts.reset(2), &mut ctx);
        assert_eq!(verdicts.as_slice(), &[Verdict::Discard, Verdict::Discard]);
        assert_eq!(ctx.take_messages().len(), 2);
    }

    #[test]
    fn boxed_nf_forwards_batch_hooks() {
        use crate::batch::{PacketBatch, VerdictSlice};
        let mut nf: Box<dyn NetworkFunction> = Box::new(Fixed(Verdict::Default));
        let mut ctx = NfContext::new(0);
        let pkt = PacketBuilder::udp().build();
        let refs = [&pkt];
        let mut verdicts = VerdictSlice::new();
        nf.process_batch(&PacketBatch::new(&refs), verdicts.reset(1), &mut ctx);
        assert_eq!(verdicts.as_slice(), &[Verdict::Default]);
        assert_eq!(ctx.take_messages().len(), 1);
    }

    #[test]
    fn flow_state_payload_round_trips() {
        let mut state = NfFlowState::new();
        assert!(state.is_empty());
        state.set_counter("hits", 3);
        state.set_counter("hits", 5); // overwrite
        state.set_counter("bytes", 100);
        state.set_bytes(vec![1, 2, 3]);
        assert!(!state.is_empty());
        assert_eq!(state.counter("hits"), Some(5));
        assert_eq!(state.counter("bytes"), Some(100));
        assert_eq!(state.counter("missing"), None);
        assert_eq!(state.bytes(), &[1, 2, 3]);
        assert_eq!(NfFlowState::with_counter("n", 1).counter("n"), Some(1));
    }

    #[test]
    fn default_state_hooks_are_no_ops() {
        let mut nf: Box<dyn NetworkFunction> = Box::new(Fixed(Verdict::Default));
        let key = PacketBuilder::udp().build().flow_key().unwrap();
        assert_eq!(nf.export_flow_state(&key), None);
        nf.import_flow_state(&key, NfFlowState::with_counter("x", 1));
        assert!(nf.flow_state_keys().is_empty());
    }

    #[test]
    fn attributed_messages_carry_the_flow() {
        let mut ctx = NfContext::new(0);
        let key = PacketBuilder::udp().build().flow_key().unwrap();
        ctx.send(NfMessage::custom("a", "1"));
        ctx.send_for_flow(&key, NfMessage::custom("b", "2"));
        let attributed = ctx.take_attributed_messages();
        assert_eq!(attributed.len(), 2);
        assert_eq!(attributed[0].flow, None);
        assert_eq!(attributed[1].flow, Some(key));
        // take_messages strips attribution but keeps order.
        ctx.send_for_flow(&key, NfMessage::custom("c", "3"));
        let plain = ctx.take_messages();
        assert_eq!(plain, vec![NfMessage::custom("c", "3")]);
    }

    #[test]
    fn custom_message_constructor() {
        let m = NfMessage::custom("ddos.alarm", "10.0.0.0/8");
        assert_eq!(
            m,
            NfMessage::Custom {
                key: "ddos.alarm".to_string(),
                value: "10.0.0.0/8".to_string()
            }
        );
    }
}
