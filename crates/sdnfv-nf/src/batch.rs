//! Batch-first packet processing types.
//!
//! DPDK-style data planes move packets in bursts, and so does this one: the
//! NF Manager hands every network function a [`PacketBatch`] (or
//! [`PacketBatchMut`] for functions that rewrite packets) plus a verdict
//! slice to fill in, one [`Verdict`](crate::Verdict) per packet. Per-packet
//! costs — ring cursor updates, flow-table lookups, virtual dispatch — are
//! paid once per burst instead of once per frame.
//!
//! [`VerdictSlice`] is the reusable verdict buffer the dispatch layers keep
//! between bursts so the hot path never reallocates.

use sdnfv_proto::Packet;

use crate::api::Verdict;

/// An immutable burst of packets handed to a read-only NF.
///
/// The batch borrows its packets from wherever the dispatch layer keeps them
/// (inline buffers, shared ring descriptors, …); NFs index or iterate it and
/// write one verdict per packet into the slice passed alongside.
#[derive(Debug)]
pub struct PacketBatch<'a> {
    packets: &'a [&'a Packet],
}

impl<'a> PacketBatch<'a> {
    /// Wraps a slice of packet references as a batch.
    pub fn new(packets: &'a [&'a Packet]) -> Self {
        PacketBatch { packets }
    }

    /// Number of packets in the burst.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` for an empty burst.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The `index`-th packet of the burst.
    pub fn get(&self, index: usize) -> Option<&Packet> {
        self.packets.get(index).copied()
    }

    /// Iterates the packets of the burst in order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Packet> + '_ {
        self.packets.iter().copied()
    }
}

impl std::ops::Index<usize> for PacketBatch<'_> {
    type Output = Packet;

    fn index(&self, index: usize) -> &Packet {
        self.packets[index]
    }
}

/// A mutable burst of packets handed to an NF that rewrites packets.
///
/// The slice borrow (`'s`) and the packet borrows (`'p`) are distinct
/// lifetimes so dispatch layers can keep the backing `Vec` of references
/// alive (and reuse its allocation) after the batch is dropped.
#[derive(Debug)]
pub struct PacketBatchMut<'s, 'p> {
    packets: &'s mut [&'p mut Packet],
}

impl<'s, 'p> PacketBatchMut<'s, 'p> {
    /// Wraps a slice of mutable packet references as a batch.
    pub fn new(packets: &'s mut [&'p mut Packet]) -> Self {
        PacketBatchMut { packets }
    }

    /// Number of packets in the burst.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` for an empty burst.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The `index`-th packet of the burst.
    pub fn get(&self, index: usize) -> Option<&Packet> {
        self.packets.get(index).map(|p| &**p)
    }

    /// Mutable access to the `index`-th packet of the burst.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut Packet> {
        self.packets.get_mut(index).map(|p| &mut **p)
    }

    /// Iterates the packets of the burst immutably.
    pub fn iter(&self) -> impl Iterator<Item = &Packet> + use<'_, 's, 'p> {
        self.packets.iter().map(|p| &**p)
    }

    /// Iterates the packets of the burst mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Packet> + use<'_, 's, 'p> {
        self.packets.iter_mut().map(|p| &mut **p)
    }
}

/// A reusable verdict buffer.
///
/// Dispatch layers keep one `VerdictSlice` per NF loop and call
/// [`VerdictSlice::reset`] before each burst: the buffer is resized to the
/// burst length with every entry set to [`Verdict::Default`], which is the
/// contract batch implementations rely on (an NF only needs to write the
/// entries it wants to deviate from the default path).
#[derive(Debug, Default)]
pub struct VerdictSlice {
    verdicts: Vec<Verdict>,
}

impl VerdictSlice {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        VerdictSlice::default()
    }

    /// Creates a buffer pre-sized for bursts of `capacity` packets.
    pub fn with_capacity(capacity: usize) -> Self {
        VerdictSlice {
            verdicts: Vec::with_capacity(capacity),
        }
    }

    /// Resizes to `len` entries, all reset to [`Verdict::Default`], and
    /// returns the slice to pass to
    /// [`NetworkFunction::process_batch`](crate::NetworkFunction::process_batch).
    pub fn reset(&mut self, len: usize) -> &mut [Verdict] {
        self.verdicts.clear();
        self.verdicts.resize(len, Verdict::Default);
        &mut self.verdicts
    }

    /// The verdicts of the last burst.
    pub fn as_slice(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// Returns `true` if the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }
}

/// A tiny burst-scoped memo: a linear-probed `(key, value)` list.
///
/// Bursts are small (≤ a few hundred packets), so a linear scan beats
/// hashing short keys like [`FlowKey`](sdnfv_proto::flow::FlowKey) into a
/// map. Used wherever a per-burst computation should run once per distinct
/// key — flow-table lookups in the dispatch layers, rule evaluation in
/// vectorized NFs. Clear it at every burst boundary so decisions never
/// outlive the burst they were made for.
///
/// The probe is **capped**: once the memo holds
/// [`BYPASS_MIN_ENTRIES`](BurstMemo::BYPASS_MIN_ENTRIES) entries and the
/// running hit rate of the burst is below 1 in
/// [`BYPASS_HIT_DIVISOR`](BurstMemo::BYPASS_HIT_DIVISOR) probes, the memo
/// stops scanning and inserting and computes values directly (keeping only a
/// one-entry scratch slot so back-to-back repeats stay cheap). All-distinct
/// traffic — a fig9-style spoofed-source DDoS, where memoization buys
/// nothing — would otherwise grow the scan linearly with the burst and turn
/// per-burst work O(burst²). The `compute` callback must therefore be pure
/// (it already had to be: which probe computes and which hits is
/// order-dependent); bypassing only re-runs it, never changes results.
#[derive(Debug)]
pub struct BurstMemo<K, V> {
    entries: Vec<(K, V)>,
    /// Probes (`get_or_insert_with` calls) since the last `clear`.
    probes: u32,
    /// Probes that found their key memoized since the last `clear`.
    hits: u32,
    /// One-entry scratch slot used while bypassing, so runs of one key still
    /// compute once.
    scratch: Option<(K, V)>,
    /// Entry count below which this memo never bypasses (defaults to
    /// [`BurstMemo::BYPASS_MIN_ENTRIES`]).
    bypass_min_entries: usize,
    /// Hit-rate divisor for bypassing (defaults to
    /// [`BurstMemo::BYPASS_HIT_DIVISOR`]).
    bypass_hit_divisor: u32,
}

impl<K: PartialEq, V> BurstMemo<K, V> {
    /// Default entry count below which the memo never bypasses: the scan is
    /// cheap and the hit rate is not yet meaningful.
    pub const BYPASS_MIN_ENTRIES: usize = 32;

    /// Default hit-rate threshold for bypassing, as a divisor: memoization
    /// is abandoned while fewer than one probe in this many hits.
    pub const BYPASS_HIT_DIVISOR: u32 = 4;

    /// Creates an empty memo with the default probe-cap thresholds.
    pub fn new() -> Self {
        BurstMemo::with_thresholds(Self::BYPASS_MIN_ENTRIES, Self::BYPASS_HIT_DIVISOR)
    }

    /// Creates an empty memo with explicit probe-cap thresholds — the knobs
    /// DDoS-style profiles tune when the defaults mis-fire (a
    /// `bypass_hit_divisor` of 0 disables bypassing entirely; a
    /// `bypass_min_entries` of 0 is clamped to 1).
    pub fn with_thresholds(bypass_min_entries: usize, bypass_hit_divisor: u32) -> Self {
        BurstMemo {
            entries: Vec::with_capacity(8),
            probes: 0,
            hits: 0,
            scratch: None,
            bypass_min_entries: bypass_min_entries.max(1),
            bypass_hit_divisor,
        }
    }

    /// Forgets every entry and resets the hit-rate tracking (call at burst
    /// boundaries).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.probes = 0;
        self.hits = 0;
        self.scratch = None;
    }

    /// Number of memoized entries (excluding the bypass scratch slot).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value memoized for `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Whether the memo is currently bypassing (low hit rate at the probe
    /// cap — see the type docs). A zero hit divisor disables bypassing.
    fn bypassing(&self) -> bool {
        self.bypass_hit_divisor != 0
            && self.entries.len() >= self.bypass_min_entries
            && self.hits.saturating_mul(self.bypass_hit_divisor) < self.probes
    }

    /// Returns the value memoized for `key`, computing and storing it with
    /// `compute` on first sight. While the memo is bypassing (see the type
    /// docs) the value is computed directly instead of scanned for, except
    /// for immediate repeats of the previous key.
    pub fn get_or_insert_with(&mut self, key: K, compute: impl FnOnce(&K) -> V) -> &V {
        self.probes = self.probes.saturating_add(1);
        if self.bypassing() {
            if self.scratch.as_ref().is_some_and(|(k, _)| *k == key) {
                self.hits = self.hits.saturating_add(1);
            } else {
                let value = compute(&key);
                self.scratch = Some((key, value));
            }
            return &self.scratch.as_ref().expect("scratch slot just filled").1;
        }
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(index) => {
                self.hits = self.hits.saturating_add(1);
                &self.entries[index].1
            }
            None => {
                let value = compute(&key);
                self.entries.push((key, value));
                &self.entries.last().expect("just pushed").1
            }
        }
    }
}

impl<K: PartialEq, V> Default for BurstMemo<K, V> {
    fn default() -> Self {
        BurstMemo::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    #[test]
    fn immutable_batch_indexing_and_iteration() {
        let a = PacketBuilder::udp().src_port(1).build();
        let b = PacketBuilder::udp().src_port(2).build();
        let refs = [&a, &b];
        let batch = PacketBatch::new(&refs);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.get(0).unwrap().udp().unwrap().src_port, 1);
        assert_eq!(batch[1].udp().unwrap().src_port, 2);
        assert!(batch.get(2).is_none());
        let ports: Vec<u16> = batch.iter().map(|p| p.udp().unwrap().src_port).collect();
        assert_eq!(ports, vec![1, 2]);
    }

    #[test]
    fn mutable_batch_allows_rewrites() {
        let mut a = PacketBuilder::udp().payload(b"aa").build();
        let mut b = PacketBuilder::udp().payload(b"bb").build();
        let mut refs: Vec<&mut sdnfv_proto::Packet> = vec![&mut a, &mut b];
        let mut batch = PacketBatchMut::new(&mut refs);
        assert_eq!(batch.len(), 2);
        for pkt in batch.iter_mut() {
            pkt.l4_payload_mut().unwrap()[0] = b'X';
        }
        assert_eq!(batch.get(0).unwrap().l4_payload().unwrap(), b"Xa");
        assert_eq!(batch.get_mut(1).unwrap().l4_payload().unwrap(), b"Xb");
        assert_eq!(batch.iter().count(), 2);
    }

    #[test]
    fn burst_memo_computes_once_per_key() {
        let mut memo: BurstMemo<u32, u32> = BurstMemo::new();
        let mut computed = 0;
        for key in [1, 2, 1, 1, 2, 3] {
            memo.get_or_insert_with(key, |k| {
                computed += 1;
                k * 10
            });
        }
        assert_eq!(computed, 3, "one computation per distinct key");
        assert_eq!(memo.get(&1), Some(&10));
        assert_eq!(memo.get(&3), Some(&30));
        assert_eq!(memo.get(&4), None);
        memo.clear();
        assert_eq!(memo.get(&1), None);
    }

    #[test]
    fn burst_memo_bypasses_under_all_distinct_keys() {
        // All-distinct traffic: the memo must stop growing (and scanning)
        // once the probe cap is reached with a zero hit rate.
        let mut memo: BurstMemo<u32, u32> = BurstMemo::new();
        for key in 0..1000u32 {
            let value = *memo.get_or_insert_with(key, |k| k + 1);
            assert_eq!(value, key + 1, "bypassing never changes results");
        }
        assert_eq!(
            memo.len(),
            BurstMemo::<u32, u32>::BYPASS_MIN_ENTRIES,
            "entry growth is capped under a zero hit rate"
        );
        // A clear resets the heuristic: memoization resumes.
        memo.clear();
        for key in 0..8u32 {
            memo.get_or_insert_with(key, |k| *k);
        }
        assert_eq!(memo.len(), 8);
    }

    #[test]
    fn burst_memo_keeps_memoizing_hot_flows() {
        // Many probes over few keys: the hit rate stays high, so the memo
        // keeps computing once per distinct key even past the probe cap.
        let mut memo: BurstMemo<u32, u32> = BurstMemo::new();
        let mut computed = 0;
        for i in 0..1000u32 {
            memo.get_or_insert_with(i % 8, |k| {
                computed += 1;
                *k
            });
        }
        assert_eq!(computed, 8, "hot flows stay memoized");
    }

    #[test]
    fn burst_memo_scratch_slot_absorbs_repeats_while_bypassing() {
        let mut memo: BurstMemo<u32, u32> = BurstMemo::new();
        // Engage the bypass with all-distinct keys...
        for key in 0..100u32 {
            memo.get_or_insert_with(key, |k| *k);
        }
        // ...then probe one key repeatedly: computed exactly once.
        let mut computed = 0;
        for _ in 0..10 {
            memo.get_or_insert_with(7777, |k| {
                computed += 1;
                *k
            });
        }
        assert_eq!(computed, 1, "scratch slot memoizes immediate repeats");
    }

    #[test]
    fn burst_memo_thresholds_are_configurable() {
        // A lower entry cap engages the bypass sooner…
        let mut memo: BurstMemo<u32, u32> = BurstMemo::with_thresholds(4, 4);
        for key in 0..100u32 {
            memo.get_or_insert_with(key, |k| *k);
        }
        assert_eq!(memo.len(), 4, "growth capped at the configured floor");
        // …and a zero divisor disables bypassing entirely.
        let mut memo: BurstMemo<u32, u32> = BurstMemo::with_thresholds(4, 0);
        for key in 0..100u32 {
            memo.get_or_insert_with(key, |k| *k);
        }
        assert_eq!(memo.len(), 100, "bypass disabled: every key memoized");
        // A zero entry floor is clamped rather than bypassing immediately.
        let mut memo: BurstMemo<u32, u32> = BurstMemo::with_thresholds(0, 4);
        memo.get_or_insert_with(1, |k| *k);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn verdict_slice_resets_to_default() {
        let mut vs = VerdictSlice::with_capacity(8);
        assert!(vs.is_empty());
        let slice = vs.reset(3);
        slice[1] = Verdict::Discard;
        assert_eq!(vs.len(), 3);
        assert_eq!(
            vs.as_slice(),
            &[Verdict::Default, Verdict::Discard, Verdict::Default]
        );
        // A reset wipes previous verdicts, even when shrinking.
        let slice = vs.reset(2);
        assert_eq!(slice, &[Verdict::Default, Verdict::Default]);
    }
}
