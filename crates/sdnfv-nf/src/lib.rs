//! The SDNFV-User network function library (paper §4.3) and the network
//! functions used throughout the paper's use cases and evaluation.
//!
//! A network function is any type implementing [`NetworkFunction`]: it is
//! handed packets in bursts ([`PacketBatch`]), may keep arbitrary per-flow
//! or cross-flow state, and for every packet yields a [`Verdict`] — follow
//! the default path, discard, or steer to a specific service or port.
//! Per-packet NFs implement only the scalar
//! [`process`](NetworkFunction::process) hook and ride the built-in batch
//! adapter; hot NFs override
//! [`process_batch`](NetworkFunction::process_batch) and amortize work
//! across the burst. Longer-lived routing changes are requested through
//! [`NfMessage`]s emitted via the [`NfContext`], which the NF Manager
//! forwards up the control hierarchy (paper §3.4).
//!
//! The [`nfs`] module contains the paper's functions: the anomaly-detection
//! chain (firewall, sampler, IDS, DDoS detector, scrubber), the video
//! pipeline (video detector, policy engine, quality detector, transcoder,
//! cache, shaper), the ant/elephant flow detector, the memcached proxy, and
//! the no-op / compute-intensive functions used by the microbenchmarks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod batch;
pub mod nfs;
pub mod registry;

pub use api::{AttributedNfMessage, NetworkFunction, NfContext, NfFlowState, NfMessage, Verdict};
pub use batch::{BurstMemo, PacketBatch, PacketBatchMut, VerdictSlice};
pub use registry::NfRegistry;
