//! The ant/elephant flow detector (paper §5.2, Figure 8).

use sdnfv_flowtable::{Action, FlowMatch, RulePort, ServiceId};
use sdnfv_proto::flow::FlowKey;
use sdnfv_proto::Packet;
use std::collections::HashMap;

use crate::api::{NetworkFunction, NfContext, NfFlowState, NfMessage, Verdict};

/// Classification of a monitored flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// Small packets at a modest rate: latency-sensitive "ant" traffic.
    Ant,
    /// Large packets or sustained high rate: bulk "elephant" traffic.
    Elephant,
}

#[derive(Debug, Clone, Default)]
struct FlowWindow {
    bytes: u64,
    packets: u64,
}

#[derive(Debug, Clone)]
struct FlowState {
    window: FlowWindow,
    class: Option<FlowClass>,
}

/// Observes the size and rate of packets of each flow over a fixed
/// observation window and reclassifies flows as *ant* or *elephant*. On a
/// class change it emits a `ChangeDefault` message steering the flow onto
/// the appropriate path (the fast, low-latency link for ants).
#[derive(Debug, Clone)]
pub struct AntDetectorNf {
    /// Service whose default rule is rewritten when a flow is reclassified
    /// (the detector itself, which sits on the flow's path).
    own_service: ServiceId,
    /// Default action for ant (latency-sensitive) flows.
    ant_action: Action,
    /// Default action for elephant (bulk) flows.
    elephant_action: Action,
    /// Observation window (the paper uses two seconds).
    window_ns: u64,
    /// Flows at or below this byte volume per window are ants.
    ant_max_bytes_per_window: u64,
    /// Packets at or below this average size are considered small.
    ant_max_avg_packet: u64,
    window_start_ns: u64,
    flows: HashMap<FlowKey, FlowState>,
    reclassifications: u64,
}

impl AntDetectorNf {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn new(
        own_service: ServiceId,
        ant_action: Action,
        elephant_action: Action,
        window_ns: u64,
        ant_max_bytes_per_window: u64,
        ant_max_avg_packet: u64,
    ) -> Self {
        assert!(window_ns > 0, "observation window must be non-zero");
        AntDetectorNf {
            own_service,
            ant_action,
            elephant_action,
            window_ns,
            ant_max_bytes_per_window,
            ant_max_avg_packet,
            window_start_ns: 0,
            flows: HashMap::new(),
            reclassifications: 0,
        }
    }

    /// Detector configured like the paper's experiment: 2-second windows,
    /// small packets below 256 bytes average, and a modest per-window byte
    /// budget for ants.
    pub fn paper_defaults(own_service: ServiceId, fast_port: u16, slow_port: u16) -> Self {
        AntDetectorNf::new(
            own_service,
            Action::ToPort(fast_port),
            Action::ToPort(slow_port),
            2_000_000_000,
            2_000_000,
            256,
        )
    }

    /// Current classification of a flow, if it has been observed.
    pub fn class_of(&self, key: &FlowKey) -> Option<FlowClass> {
        self.flows.get(key).and_then(|s| s.class)
    }

    /// Number of times any flow changed class.
    pub fn reclassifications(&self) -> u64 {
        self.reclassifications
    }

    fn classify(ant_max_bytes: u64, ant_max_avg_packet: u64, window: &FlowWindow) -> FlowClass {
        let avg_packet = window.bytes.checked_div(window.packets).unwrap_or(0);
        if window.bytes <= ant_max_bytes && avg_packet <= ant_max_avg_packet {
            FlowClass::Ant
        } else {
            FlowClass::Elephant
        }
    }

    fn end_window(&mut self, ctx: &mut NfContext) {
        let (max_bytes, max_avg) = (self.ant_max_bytes_per_window, self.ant_max_avg_packet);
        let mut changes = Vec::new();
        for (key, state) in self.flows.iter_mut() {
            if state.window.packets == 0 {
                continue; // idle flows keep their class
            }
            let new_class = Self::classify(max_bytes, max_avg, &state.window);
            if state.class != Some(new_class) {
                state.class = Some(new_class);
                changes.push((*key, new_class));
            }
            state.window = FlowWindow::default();
        }
        for (key, class) in changes {
            self.reclassifications += 1;
            let action = match class {
                FlowClass::Ant => self.ant_action,
                FlowClass::Elephant => self.elephant_action,
            };
            ctx.send_for_flow(
                &key,
                NfMessage::ChangeDefault {
                    flows: FlowMatch::exact(RulePort::Service(self.own_service), &key),
                    service: self.own_service,
                    new_default: action,
                },
            );
        }
    }
}

/// Encoding of [`FlowClass`] inside an exported [`NfFlowState`].
fn class_to_counter(class: Option<FlowClass>) -> u64 {
    match class {
        None => 0,
        Some(FlowClass::Ant) => 1,
        Some(FlowClass::Elephant) => 2,
    }
}

fn counter_to_class(value: Option<u64>) -> Option<FlowClass> {
    match value {
        Some(1) => Some(FlowClass::Ant),
        Some(2) => Some(FlowClass::Elephant),
        _ => None,
    }
}

impl NetworkFunction for AntDetectorNf {
    fn name(&self) -> &str {
        "ant-detector"
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        let now = ctx.now_ns();
        if now.saturating_sub(self.window_start_ns) >= self.window_ns {
            self.window_start_ns = now;
            self.end_window(ctx);
        }
        let Some(key) = packet.flow_key() else {
            return Verdict::Default;
        };
        let state = self.flows.entry(key).or_insert(FlowState {
            window: FlowWindow::default(),
            class: None,
        });
        state.window.bytes += packet.len() as u64;
        state.window.packets += 1;
        Verdict::Default
    }

    fn export_flow_state(&mut self, key: &FlowKey) -> Option<NfFlowState> {
        let flow = self.flows.remove(key)?;
        let mut state = NfFlowState::new();
        state.set_counter("window_bytes", flow.window.bytes);
        state.set_counter("window_packets", flow.window.packets);
        state.set_counter("class", class_to_counter(flow.class));
        Some(state)
    }

    fn import_flow_state(&mut self, key: &FlowKey, state: NfFlowState) {
        let entry = self.flows.entry(*key).or_insert(FlowState {
            window: FlowWindow::default(),
            class: None,
        });
        // Merge: window tallies add (the flow's packets may have been split
        // across replicas); an imported classification fills a missing one
        // but does not override a class this instance already derived.
        entry.window.bytes += state.counter("window_bytes").unwrap_or(0);
        entry.window.packets += state.counter("window_packets").unwrap_or(0);
        if entry.class.is_none() {
            entry.class = counter_to_class(state.counter("class"));
        }
    }

    fn flow_state_keys(&self) -> Vec<FlowKey> {
        self.flows.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    const SELF: ServiceId = ServiceId::new(60);
    const FAST: Action = Action::ToPort(2);
    const SLOW: Action = Action::ToPort(1);

    fn detector() -> AntDetectorNf {
        // 1 ms windows; ants send <= 1000 bytes/window with <= 128 B packets.
        AntDetectorNf::new(SELF, FAST, SLOW, 1_000_000, 1000, 128)
    }

    fn small_packet(port: u16) -> Packet {
        PacketBuilder::udp().src_port(port).total_size(64).build()
    }

    fn big_packet(port: u16) -> Packet {
        PacketBuilder::udp().src_port(port).total_size(1024).build()
    }

    #[test]
    fn classifies_ant_and_elephant() {
        let mut nf = detector();
        let mut ctx = NfContext::new(0);
        // Flow 1: a few small packets. Flow 2: many large packets.
        for _ in 0..5 {
            nf.process(&small_packet(1), &mut ctx);
        }
        for _ in 0..20 {
            nf.process(&big_packet(2), &mut ctx);
        }
        // Advance time past the window so classification happens.
        ctx.set_now_ns(2_000_000);
        nf.process(&small_packet(1), &mut ctx);
        let ant_key = small_packet(1).flow_key().unwrap();
        let elephant_key = big_packet(2).flow_key().unwrap();
        assert_eq!(nf.class_of(&ant_key), Some(FlowClass::Ant));
        assert_eq!(nf.class_of(&elephant_key), Some(FlowClass::Elephant));
        assert_eq!(nf.reclassifications(), 2);
        // Two ChangeDefault messages were emitted, one per flow.
        let msgs = ctx.take_messages();
        assert_eq!(msgs.len(), 2);
        assert!(msgs
            .iter()
            .all(|m| matches!(m, NfMessage::ChangeDefault { .. })));
    }

    #[test]
    fn phase_change_reclassifies_flow() {
        let mut nf = detector();
        let mut ctx = NfContext::new(0);
        // Phase 1: heavy traffic -> elephant.
        for _ in 0..20 {
            nf.process(&big_packet(7), &mut ctx);
        }
        ctx.set_now_ns(1_500_000);
        nf.process(&small_packet(7), &mut ctx);
        let key = small_packet(7).flow_key().unwrap();
        assert_eq!(nf.class_of(&key), Some(FlowClass::Elephant));
        ctx.take_messages();
        // Phase 2: the flow quiets down -> reclassified as ant.
        for _ in 0..3 {
            nf.process(&small_packet(7), &mut ctx);
        }
        ctx.set_now_ns(3_000_000);
        nf.process(&small_packet(7), &mut ctx);
        assert_eq!(nf.class_of(&key), Some(FlowClass::Ant));
        let msgs = ctx.take_messages();
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            NfMessage::ChangeDefault { new_default, .. } => assert_eq!(*new_default, FAST),
            other => panic!("unexpected {other:?}"),
        }
        // Phase 3: rate goes back up -> elephant again.
        for _ in 0..30 {
            nf.process(&big_packet(7), &mut ctx);
        }
        ctx.set_now_ns(4_500_000);
        nf.process(&small_packet(7), &mut ctx);
        assert_eq!(nf.class_of(&key), Some(FlowClass::Elephant));
        assert_eq!(nf.reclassifications(), 3);
    }

    #[test]
    fn stable_class_emits_no_messages() {
        let mut nf = detector();
        let mut ctx = NfContext::new(0);
        for window in 1..4u64 {
            for _ in 0..3 {
                nf.process(&small_packet(5), &mut ctx);
            }
            ctx.set_now_ns(window * 1_500_000);
        }
        nf.process(&small_packet(5), &mut ctx);
        // First classification emits one message; subsequent identical
        // classifications stay quiet.
        assert_eq!(ctx.take_messages().len(), 1);
        assert_eq!(nf.reclassifications(), 1);
    }

    #[test]
    fn paper_defaults_constructor() {
        let nf = AntDetectorNf::paper_defaults(SELF, 2, 1);
        assert_eq!(nf.name(), "ant-detector");
        assert!(nf.read_only());
    }

    #[test]
    fn window_state_migrates_and_merges() {
        let mut old_shard = detector();
        let mut new_shard = detector();
        let mut ctx = NfContext::new(0);
        let key = big_packet(9).flow_key().unwrap();
        // Build up an elephant-grade window on the old shard, classify it.
        for _ in 0..20 {
            old_shard.process(&big_packet(9), &mut ctx);
        }
        ctx.set_now_ns(1_500_000);
        old_shard.process(&small_packet(9), &mut ctx);
        assert_eq!(old_shard.class_of(&key), Some(FlowClass::Elephant));
        assert!(old_shard.flow_state_keys().contains(&key));

        // Migrate: the class and the in-progress window travel.
        let state = old_shard.export_flow_state(&key).expect("flow tracked");
        assert_eq!(state.counter("class"), Some(2));
        assert_eq!(old_shard.class_of(&key), None, "export is a move");
        new_shard.import_flow_state(&key, state);
        assert_eq!(new_shard.class_of(&key), Some(FlowClass::Elephant));

        // Window tallies merge additively on a replica split.
        let mut with_own = detector();
        with_own.process(&small_packet(9), &mut ctx);
        let mut donor = detector();
        donor.process(&small_packet(9), &mut ctx);
        let donated = donor.export_flow_state(&key).expect("flow tracked");
        with_own.import_flow_state(&key, donated);
        let merged = with_own.export_flow_state(&key).expect("flow tracked");
        assert_eq!(merged.counter("window_packets"), Some(2));
        assert_eq!(merged.counter("window_bytes"), Some(128));
        // An unknown class encoding decodes to None.
        assert_eq!(counter_to_class(Some(9)), None);
        assert_eq!(counter_to_class(None), None);
    }

    #[test]
    fn classify_helper_handles_empty_window() {
        assert_eq!(
            AntDetectorNf::classify(1000, 128, &FlowWindow::default()),
            FlowClass::Ant
        );
    }
}
