//! A content cache NF (paper §2.2 video pipeline).

use sdnfv_proto::http::HttpRequest;
use sdnfv_proto::Packet;
use std::collections::{HashMap, VecDeque};

use crate::api::{NetworkFunction, NfContext, Verdict};

/// Remembers which content objects (HTTP request paths) have passed through
/// it so that repeated requests can be recognised as cache hits. Hits are
/// counted and, in a full deployment, would be served locally; here the NF
/// tracks hit/miss statistics and always forwards along the default path,
/// which is what the evaluation's data-plane experiments require.
#[derive(Debug, Clone)]
pub struct CacheNf {
    capacity: usize,
    entries: HashMap<String, u64>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

impl CacheNf {
    /// Creates a cache that remembers up to `capacity` objects (LRU-evicted).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        CacheNf {
            capacity,
            entries: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of requests served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of requests that had to be fetched.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of objects currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn record(&mut self, path: String) {
        if let Some(count) = self.entries.get_mut(&path) {
            *count += 1;
            self.hits += 1;
            return;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.entries.remove(&evicted);
            }
        }
        self.entries.insert(path.clone(), 1);
        self.order.push_back(path);
    }
}

impl NetworkFunction for CacheNf {
    fn name(&self) -> &str {
        "cache"
    }

    fn read_only(&self) -> bool {
        false
    }

    fn process(&mut self, packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        if let Ok(payload) = packet.l4_payload() {
            if let Ok(request) = HttpRequest::parse(payload) {
                self.record(request.path);
            }
        }
        Verdict::Default
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    fn request(path: &str) -> Packet {
        PacketBuilder::tcp()
            .dst_port(80)
            .payload(format!("GET {path} HTTP/1.1\r\nHost: v\r\n\r\n").as_bytes())
            .build()
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut nf = CacheNf::new(10);
        let mut ctx = NfContext::new(0);
        assert_eq!(nf.process(&request("/a.mp4"), &mut ctx), Verdict::Default);
        assert_eq!(nf.process(&request("/a.mp4"), &mut ctx), Verdict::Default);
        assert_eq!(nf.process(&request("/b.mp4"), &mut ctx), Verdict::Default);
        assert_eq!(nf.hits(), 1);
        assert_eq!(nf.misses(), 2);
        assert_eq!(nf.len(), 2);
        assert!(!nf.is_empty());
    }

    #[test]
    fn lru_eviction_bounds_size() {
        let mut nf = CacheNf::new(2);
        let mut ctx = NfContext::new(0);
        nf.process(&request("/1"), &mut ctx);
        nf.process(&request("/2"), &mut ctx);
        nf.process(&request("/3"), &mut ctx);
        assert_eq!(nf.len(), 2);
        // "/1" was evicted, so requesting it again is a miss.
        nf.process(&request("/1"), &mut ctx);
        assert_eq!(nf.misses(), 4);
    }

    #[test]
    fn non_http_packets_pass_untouched() {
        let mut nf = CacheNf::new(4);
        let mut ctx = NfContext::new(0);
        let pkt = PacketBuilder::udp().payload(&[1, 2, 3]).build();
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::Default);
        assert_eq!(nf.misses(), 0);
        assert!(nf.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = CacheNf::new(0);
    }
}
