//! A CPU-intensive network function used by the parallel-vs-sequential
//! latency experiment (Figure 6).

use sdnfv_proto::Packet;

use crate::api::{NetworkFunction, NfContext, Verdict};

/// Performs a configurable amount of busy work over every packet's payload
/// (repeated checksumming), then follows the default path.
///
/// The work is purely read-only, so several `ComputeNf` instances may run in
/// parallel on the same packet — the case Figure 6 measures.
#[derive(Debug, Clone)]
pub struct ComputeNf {
    rounds: u32,
    packets: u64,
    last_digest: u64,
}

impl ComputeNf {
    /// Creates a function that performs `rounds` checksum passes per packet.
    pub fn new(rounds: u32) -> Self {
        ComputeNf {
            rounds,
            packets: 0,
            last_digest: 0,
        }
    }

    /// Number of packets processed.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// The digest of the last processed packet (prevents the busy work from
    /// being optimized away and gives tests something to observe).
    pub fn last_digest(&self) -> u64 {
        self.last_digest
    }
}

impl NetworkFunction for ComputeNf {
    fn name(&self) -> &str {
        "compute"
    }

    fn process(&mut self, packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for round in 0..self.rounds {
            for &byte in packet.data() {
                digest ^= u64::from(byte).wrapping_add(u64::from(round));
                digest = digest.wrapping_mul(0x1000_0000_01b3);
            }
        }
        self.last_digest = digest;
        self.packets += 1;
        Verdict::Default
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    #[test]
    fn compute_is_deterministic_and_counts() {
        let pkt = PacketBuilder::udp().payload(b"some payload data").build();
        let mut a = ComputeNf::new(4);
        let mut b = ComputeNf::new(4);
        let mut ctx = NfContext::new(0);
        assert_eq!(a.process(&pkt, &mut ctx), Verdict::Default);
        assert_eq!(b.process(&pkt, &mut ctx), Verdict::Default);
        assert_eq!(a.last_digest(), b.last_digest());
        assert_eq!(a.packets(), 1);
        assert!(a.read_only());
    }

    #[test]
    fn more_rounds_changes_digest() {
        let pkt = PacketBuilder::udp().payload(b"xyz").build();
        let mut a = ComputeNf::new(1);
        let mut b = ComputeNf::new(8);
        let mut ctx = NfContext::new(0);
        a.process(&pkt, &mut ctx);
        b.process(&pkt, &mut ctx);
        assert_ne!(a.last_digest(), b.last_digest());
    }

    #[test]
    fn zero_rounds_is_effectively_noop() {
        let pkt = PacketBuilder::udp().build();
        let mut nf = ComputeNf::new(0);
        let mut ctx = NfContext::new(0);
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::Default);
        assert_eq!(nf.packets(), 1);
    }
}
