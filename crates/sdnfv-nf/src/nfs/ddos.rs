//! A cross-flow DDoS detector (paper §5.2, Figure 9).

use sdnfv_flowtable::IpPrefix;
use sdnfv_proto::Packet;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::api::{NetworkFunction, NfContext, NfMessage, Verdict};

/// Key under which the detector raises its alarm via `Message(S, K, V)`.
pub const DDOS_ALARM_KEY: &str = "ddos.alarm";

/// Aggregates traffic volume across *all* flows per source prefix within a
/// monitoring window; when a prefix exceeds the configured rate threshold the
/// detector raises an alarm message so the SDNFV Application can start a
/// scrubber and reroute traffic (paper Figure 9).
#[derive(Debug, Clone)]
pub struct DdosDetectorNf {
    /// Monitoring window length.
    window_ns: u64,
    /// Alarm threshold in bytes per second, aggregated per /8-,/16-,… prefix.
    threshold_bytes_per_sec: u64,
    /// Prefix length used for aggregation.
    prefix_len: u8,
    window_start_ns: u64,
    bytes_by_prefix: HashMap<u32, u64>,
    alarmed_prefixes: HashMap<u32, bool>,
    total_bytes: u64,
    alarms: u64,
}

impl DdosDetectorNf {
    /// Creates a detector with the given window and rate threshold.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn new(window_ns: u64, threshold_bytes_per_sec: u64, prefix_len: u8) -> Self {
        assert!(window_ns > 0, "monitoring window must be non-zero");
        DdosDetectorNf {
            window_ns,
            threshold_bytes_per_sec,
            prefix_len: prefix_len.min(32),
            window_start_ns: 0,
            bytes_by_prefix: HashMap::new(),
            alarmed_prefixes: HashMap::new(),
            total_bytes: 0,
            alarms: 0,
        }
    }

    /// A detector tuned to the paper's experiment: 1-second windows and a
    /// 3.2 Gbps threshold aggregated per /16.
    pub fn paper_defaults() -> Self {
        DdosDetectorNf::new(1_000_000_000, 3_200_000_000 / 8, 16)
    }

    /// Total bytes observed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of alarms raised.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    fn prefix_of(&self, ip: Ipv4Addr) -> u32 {
        if self.prefix_len == 0 {
            return 0;
        }
        let mask = u32::MAX << (32 - u32::from(self.prefix_len));
        u32::from(ip) & mask
    }
}

impl NetworkFunction for DdosDetectorNf {
    fn name(&self) -> &str {
        "ddos-detector"
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        let now = ctx.now_ns();
        if now.saturating_sub(self.window_start_ns) >= self.window_ns {
            self.window_start_ns = now;
            self.bytes_by_prefix.clear();
        }
        let Some(key) = packet.flow_key() else {
            return Verdict::Default;
        };
        let prefix = self.prefix_of(key.src_ip);
        let bytes = self.bytes_by_prefix.entry(prefix).or_insert(0);
        *bytes += packet.len() as u64;
        self.total_bytes += packet.len() as u64;

        // Scale the per-window volume to a rate and compare to the threshold.
        let window_secs = self.window_ns as f64 / 1e9;
        let rate = *bytes as f64 / window_secs;
        let already_alarmed = self.alarmed_prefixes.get(&prefix).copied().unwrap_or(false);
        if rate >= self.threshold_bytes_per_sec as f64 && !already_alarmed {
            self.alarmed_prefixes.insert(prefix, true);
            self.alarms += 1;
            let prefix_addr = Ipv4Addr::from(prefix);
            ctx.send(NfMessage::custom(
                DDOS_ALARM_KEY,
                IpPrefix::new(prefix_addr, self.prefix_len).to_string(),
            ));
        }
        Verdict::Default
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    fn attack_packet(src: [u8; 4], size: usize) -> Packet {
        PacketBuilder::udp().src_ip(src).total_size(size).build()
    }

    #[test]
    fn no_alarm_under_threshold() {
        // 1 ms window, threshold 1 MB/s => 1000 bytes per window.
        let mut nf = DdosDetectorNf::new(1_000_000, 1_000_000, 16);
        let mut ctx = NfContext::new(0);
        for i in 0..5 {
            ctx.set_now_ns(i * 100_000);
            assert_eq!(
                nf.process(&attack_packet([10, 0, 0, 1], 100), &mut ctx),
                Verdict::Default
            );
        }
        assert_eq!(nf.alarms(), 0);
        assert!(!ctx.has_messages());
        assert_eq!(nf.total_bytes(), 500);
    }

    #[test]
    fn alarm_when_prefix_exceeds_rate() {
        let mut nf = DdosDetectorNf::new(1_000_000, 1_000_000, 16);
        let mut ctx = NfContext::new(0);
        // 1100 bytes within one window exceeds 1000 bytes/window.
        for _ in 0..11 {
            nf.process(&attack_packet([10, 0, 0, 2], 100), &mut ctx);
        }
        assert_eq!(nf.alarms(), 1);
        let msgs = ctx.take_messages();
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            NfMessage::Custom { key, value } => {
                assert_eq!(key, DDOS_ALARM_KEY);
                assert_eq!(value, "10.0.0.0/16");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The same prefix does not re-alarm.
        for _ in 0..20 {
            nf.process(&attack_packet([10, 0, 7, 7], 100), &mut ctx);
        }
        assert_eq!(nf.alarms(), 1);
    }

    #[test]
    fn different_prefixes_are_tracked_separately() {
        let mut nf = DdosDetectorNf::new(1_000_000, 1_000_000, 16);
        let mut ctx = NfContext::new(0);
        // Two prefixes each stay below threshold individually.
        for _ in 0..9 {
            nf.process(&attack_packet([10, 0, 0, 1], 100), &mut ctx);
            nf.process(&attack_packet([20, 0, 0, 1], 100), &mut ctx);
        }
        assert_eq!(nf.alarms(), 0);
    }

    #[test]
    fn window_rollover_resets_counters() {
        let mut nf = DdosDetectorNf::new(1_000_000, 1_000_000, 16);
        let mut ctx = NfContext::new(0);
        for _ in 0..9 {
            nf.process(&attack_packet([10, 0, 0, 1], 100), &mut ctx);
        }
        // Advance past the window: counters reset, so more traffic below the
        // per-window budget still raises no alarm.
        ctx.set_now_ns(2_000_000);
        for _ in 0..9 {
            nf.process(&attack_packet([10, 0, 0, 1], 100), &mut ctx);
        }
        assert_eq!(nf.alarms(), 0);
    }

    #[test]
    fn paper_defaults_constructor() {
        let nf = DdosDetectorNf::paper_defaults();
        assert_eq!(nf.alarms(), 0);
        assert!(nf.read_only());
        assert_eq!(nf.name(), "ddos-detector");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _ = DdosDetectorNf::new(0, 1, 16);
    }
}
