//! A stateless packet-filter firewall.

use sdnfv_flowtable::FlowMatch;
use sdnfv_proto::Packet;

use crate::api::{NetworkFunction, NfContext, Verdict};

/// One firewall rule: a match plus an allow/deny decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirewallRule {
    /// Flows the rule applies to.
    pub matcher: FlowMatch,
    /// `true` to allow matching traffic, `false` to drop it.
    pub allow: bool,
}

impl FirewallRule {
    /// Creates an allow rule.
    pub fn allow(matcher: FlowMatch) -> Self {
        FirewallRule {
            matcher,
            allow: true,
        }
    }

    /// Creates a deny rule.
    pub fn deny(matcher: FlowMatch) -> Self {
        FirewallRule {
            matcher,
            allow: false,
        }
    }
}

/// A simple first-match packet filter.
///
/// The firewall is deliberately unaware of the rest of the service graph: it
/// either drops a packet or returns [`Verdict::Default`], exactly the
/// "loosely coupled NF" the paper uses to motivate default actions (§3.4).
#[derive(Debug, Clone, Default)]
pub struct FirewallNf {
    rules: Vec<FirewallRule>,
    default_allow: bool,
    passed: u64,
    dropped: u64,
}

impl FirewallNf {
    /// Creates a firewall that allows traffic not matched by any rule.
    pub fn allow_by_default() -> Self {
        FirewallNf {
            default_allow: true,
            ..FirewallNf::default()
        }
    }

    /// Creates a firewall that drops traffic not matched by any rule.
    pub fn deny_by_default() -> Self {
        FirewallNf {
            default_allow: false,
            ..FirewallNf::default()
        }
    }

    /// Appends a rule (first match wins).
    pub fn with_rule(mut self, rule: FirewallRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Packets allowed through so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl NetworkFunction for FirewallNf {
    fn name(&self) -> &str {
        "firewall"
    }

    fn process(&mut self, packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        let Some(key) = packet.flow_key() else {
            // Non-IP traffic is dropped: the firewall fails closed.
            self.dropped += 1;
            return Verdict::Discard;
        };
        // The firewall's own rules are independent of the flow-table step, so
        // match with the packet's ingress port as the step.
        let step = sdnfv_flowtable::RulePort::Nic(packet.ingress_port);
        let allow = self
            .rules
            .iter()
            .find(|r| r.matcher.matches(step, &key))
            .map(|r| r.allow)
            .unwrap_or(self.default_allow);
        if allow {
            self.passed += 1;
            Verdict::Default
        } else {
            self.dropped += 1;
            Verdict::Discard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_flowtable::IpPrefix;
    use sdnfv_proto::packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn pkt_from(src: [u8; 4]) -> Packet {
        PacketBuilder::udp().src_ip(src).dst_port(80).build()
    }

    #[test]
    fn default_allow_passes_unmatched_traffic() {
        let mut fw = FirewallNf::allow_by_default();
        let mut ctx = NfContext::new(0);
        assert_eq!(fw.process(&pkt_from([10, 0, 0, 1]), &mut ctx), Verdict::Default);
        assert_eq!(fw.passed(), 1);
        assert_eq!(fw.dropped(), 0);
    }

    #[test]
    fn deny_rule_drops_matching_prefix() {
        let mut fw = FirewallNf::allow_by_default().with_rule(FirewallRule::deny(
            FlowMatch::any().with_src_ip(IpPrefix::new(Ipv4Addr::new(192, 168, 0, 0), 16)),
        ));
        let mut ctx = NfContext::new(0);
        assert_eq!(
            fw.process(&pkt_from([192, 168, 3, 4]), &mut ctx),
            Verdict::Discard
        );
        assert_eq!(fw.process(&pkt_from([10, 0, 0, 1]), &mut ctx), Verdict::Default);
        assert_eq!(fw.dropped(), 1);
        assert_eq!(fw.passed(), 1);
    }

    #[test]
    fn first_match_wins() {
        let prefix = IpPrefix::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        let mut fw = FirewallNf::deny_by_default()
            .with_rule(FirewallRule::allow(FlowMatch::any().with_src_ip(prefix)))
            .with_rule(FirewallRule::deny(FlowMatch::any().with_src_ip(prefix)));
        let mut ctx = NfContext::new(0);
        assert_eq!(fw.process(&pkt_from([10, 9, 9, 9]), &mut ctx), Verdict::Default);
        // Unmatched traffic hits the deny default.
        assert_eq!(
            fw.process(&pkt_from([172, 16, 0, 1]), &mut ctx),
            Verdict::Discard
        );
    }

    #[test]
    fn non_ip_traffic_is_dropped() {
        let mut fw = FirewallNf::allow_by_default();
        let mut ctx = NfContext::new(0);
        let pkt = Packet::from_bytes(vec![0u8; 20]);
        assert_eq!(fw.process(&pkt, &mut ctx), Verdict::Discard);
        assert!(fw.read_only());
    }
}
