//! A stateless packet-filter firewall.

use sdnfv_flowtable::{FlowMatch, RulePort};
use sdnfv_proto::flow::FlowKey;
use sdnfv_proto::Packet;

use crate::api::{NetworkFunction, NfContext, Verdict};
use crate::batch::{BurstMemo, PacketBatch};

/// One firewall rule: a match plus an allow/deny decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirewallRule {
    /// Flows the rule applies to.
    pub matcher: FlowMatch,
    /// `true` to allow matching traffic, `false` to drop it.
    pub allow: bool,
}

impl FirewallRule {
    /// Creates an allow rule.
    pub fn allow(matcher: FlowMatch) -> Self {
        FirewallRule {
            matcher,
            allow: true,
        }
    }

    /// Creates a deny rule.
    pub fn deny(matcher: FlowMatch) -> Self {
        FirewallRule {
            matcher,
            allow: false,
        }
    }
}

/// A simple first-match packet filter.
///
/// The firewall is deliberately unaware of the rest of the service graph: it
/// either drops a packet or returns [`Verdict::Default`], exactly the
/// "loosely coupled NF" the paper uses to motivate default actions (§3.4).
#[derive(Debug, Clone, Default)]
pub struct FirewallNf {
    rules: Vec<FirewallRule>,
    default_allow: bool,
    passed: u64,
    dropped: u64,
}

impl FirewallNf {
    /// Creates a firewall that allows traffic not matched by any rule.
    pub fn allow_by_default() -> Self {
        FirewallNf {
            default_allow: true,
            ..FirewallNf::default()
        }
    }

    /// Creates a firewall that drops traffic not matched by any rule.
    pub fn deny_by_default() -> Self {
        FirewallNf {
            default_allow: false,
            ..FirewallNf::default()
        }
    }

    /// Appends a rule (first match wins).
    pub fn with_rule(mut self, rule: FirewallRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Packets allowed through so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Evaluates the rule list for one flow (first match wins).
    fn evaluate(&self, step: RulePort, key: &FlowKey) -> bool {
        self.rules
            .iter()
            .find(|r| r.matcher.matches(step, key))
            .map(|r| r.allow)
            .unwrap_or(self.default_allow)
    }
}

impl NetworkFunction for FirewallNf {
    fn name(&self) -> &str {
        "firewall"
    }

    fn process(&mut self, packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        let Some(key) = packet.flow_key() else {
            // Non-IP traffic is dropped: the firewall fails closed.
            self.dropped += 1;
            return Verdict::Discard;
        };
        // The firewall's own rules are independent of the flow-table step, so
        // match with the packet's ingress port as the step.
        let step = RulePort::Nic(packet.ingress_port);
        if self.evaluate(step, &key) {
            self.passed += 1;
            Verdict::Default
        } else {
            self.dropped += 1;
            Verdict::Discard
        }
    }

    /// Native batch path: the rule list is evaluated **once per distinct
    /// flow in the burst** instead of once per packet — bursts of line-rate
    /// traffic are dominated by a few flows, so this collapses the
    /// first-match scan to a memo probe for most packets.
    fn process_batch(
        &mut self,
        batch: &PacketBatch<'_>,
        verdicts: &mut [Verdict],
        _ctx: &mut NfContext,
    ) {
        debug_assert_eq!(batch.len(), verdicts.len());
        let mut memo: BurstMemo<(RulePort, FlowKey), bool> = BurstMemo::new();
        for (slot, packet) in verdicts.iter_mut().zip(batch.iter()) {
            let Some(key) = packet.flow_key() else {
                self.dropped += 1;
                *slot = Verdict::Discard;
                continue;
            };
            let step = RulePort::Nic(packet.ingress_port);
            let evaluated = &*self;
            let allow =
                *memo.get_or_insert_with((step, key), |(step, key)| evaluated.evaluate(*step, key));
            if allow {
                self.passed += 1;
                // `slot` is already Verdict::Default per the batch contract.
            } else {
                self.dropped += 1;
                *slot = Verdict::Discard;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_flowtable::IpPrefix;
    use sdnfv_proto::packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn pkt_from(src: [u8; 4]) -> Packet {
        PacketBuilder::udp().src_ip(src).dst_port(80).build()
    }

    #[test]
    fn default_allow_passes_unmatched_traffic() {
        let mut fw = FirewallNf::allow_by_default();
        let mut ctx = NfContext::new(0);
        assert_eq!(
            fw.process(&pkt_from([10, 0, 0, 1]), &mut ctx),
            Verdict::Default
        );
        assert_eq!(fw.passed(), 1);
        assert_eq!(fw.dropped(), 0);
    }

    #[test]
    fn deny_rule_drops_matching_prefix() {
        let mut fw = FirewallNf::allow_by_default().with_rule(FirewallRule::deny(
            FlowMatch::any().with_src_ip(IpPrefix::new(Ipv4Addr::new(192, 168, 0, 0), 16)),
        ));
        let mut ctx = NfContext::new(0);
        assert_eq!(
            fw.process(&pkt_from([192, 168, 3, 4]), &mut ctx),
            Verdict::Discard
        );
        assert_eq!(
            fw.process(&pkt_from([10, 0, 0, 1]), &mut ctx),
            Verdict::Default
        );
        assert_eq!(fw.dropped(), 1);
        assert_eq!(fw.passed(), 1);
    }

    #[test]
    fn first_match_wins() {
        let prefix = IpPrefix::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        let mut fw = FirewallNf::deny_by_default()
            .with_rule(FirewallRule::allow(FlowMatch::any().with_src_ip(prefix)))
            .with_rule(FirewallRule::deny(FlowMatch::any().with_src_ip(prefix)));
        let mut ctx = NfContext::new(0);
        assert_eq!(
            fw.process(&pkt_from([10, 9, 9, 9]), &mut ctx),
            Verdict::Default
        );
        // Unmatched traffic hits the deny default.
        assert_eq!(
            fw.process(&pkt_from([172, 16, 0, 1]), &mut ctx),
            Verdict::Discard
        );
    }

    #[test]
    fn batch_path_matches_scalar_path() {
        use crate::batch::{PacketBatch, VerdictSlice};
        let rules = || {
            FirewallNf::allow_by_default().with_rule(FirewallRule::deny(
                FlowMatch::any().with_src_ip(IpPrefix::new(Ipv4Addr::new(192, 168, 0, 0), 16)),
            ))
        };
        // A burst mixing repeated flows, an unmatched flow and a non-IP frame.
        let denied = pkt_from([192, 168, 3, 4]);
        let allowed = pkt_from([10, 0, 0, 1]);
        let garbage = Packet::from_bytes(vec![0u8; 20]);
        let refs = [&denied, &allowed, &denied, &garbage, &allowed, &denied];
        let mut ctx = NfContext::new(0);

        let mut scalar = rules();
        let expected: Vec<Verdict> = refs.iter().map(|p| scalar.process(p, &mut ctx)).collect();

        let mut batched = rules();
        let mut verdicts = VerdictSlice::new();
        batched.process_batch(
            &PacketBatch::new(&refs),
            verdicts.reset(refs.len()),
            &mut ctx,
        );

        assert_eq!(verdicts.as_slice(), expected.as_slice());
        assert_eq!(batched.passed(), scalar.passed());
        assert_eq!(batched.dropped(), scalar.dropped());
    }

    #[test]
    fn non_ip_traffic_is_dropped() {
        let mut fw = FirewallNf::allow_by_default();
        let mut ctx = NfContext::new(0);
        let pkt = Packet::from_bytes(vec![0u8; 20]);
        assert_eq!(fw.process(&pkt, &mut ctx), Verdict::Discard);
        assert!(fw.read_only());
    }
}
