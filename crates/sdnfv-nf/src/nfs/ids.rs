//! A signature-based intrusion detection NF.

use sdnfv_flowtable::{Action, FlowMatch, RulePort, ServiceId};
use sdnfv_proto::Packet;
use std::collections::HashSet;

use crate::api::{NetworkFunction, NfContext, NfMessage, Verdict};

/// Scans packet payloads for malicious signatures (e.g. SQL exploits in HTTP
/// requests). When a signature is found the offending packet is diverted to
/// the scrubber service and a `ChangeDefault` message pins *all* subsequent
/// packets of the flow to the scrubber, as required by the anomaly-detection
/// use case (paper §2.2).
#[derive(Debug, Clone)]
pub struct IdsNf {
    /// The service id the IDS itself is deployed as (needed so the emitted
    /// `ChangeDefault` can name whose default rule to rewrite).
    own_service: ServiceId,
    scrubber: ServiceId,
    signatures: Vec<Vec<u8>>,
    flagged_flows: HashSet<u64>,
    alerts: u64,
    inspected: u64,
}

impl IdsNf {
    /// Creates an IDS with the default signature set.
    pub fn new(own_service: ServiceId, scrubber: ServiceId) -> Self {
        IdsNf::with_signatures(
            own_service,
            scrubber,
            vec![
                b"' OR '1'='1".to_vec(),
                b"UNION SELECT".to_vec(),
                b"/etc/passwd".to_vec(),
                b"<script>".to_vec(),
            ],
        )
    }

    /// Creates an IDS with a custom signature set.
    pub fn with_signatures(
        own_service: ServiceId,
        scrubber: ServiceId,
        signatures: Vec<Vec<u8>>,
    ) -> Self {
        IdsNf {
            own_service,
            scrubber,
            signatures,
            flagged_flows: HashSet::new(),
            alerts: 0,
            inspected: 0,
        }
    }

    /// Number of signature hits.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// Number of packets inspected.
    pub fn inspected(&self) -> u64 {
        self.inspected
    }

    fn payload_matches(&self, packet: &Packet) -> bool {
        let Ok(payload) = packet.l4_payload() else {
            return false;
        };
        self.signatures
            .iter()
            .any(|sig| !sig.is_empty() && contains(payload, sig))
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

impl NetworkFunction for IdsNf {
    fn name(&self) -> &str {
        "ids"
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        self.inspected += 1;
        let key = packet.flow_key();
        // Already-flagged flows keep going to the scrubber even if later
        // packets look innocent.
        if let Some(key) = key {
            if self.flagged_flows.contains(&key.stable_hash()) {
                return Verdict::ToService(self.scrubber);
            }
        }
        if self.payload_matches(packet) {
            self.alerts += 1;
            if let Some(key) = key {
                self.flagged_flows.insert(key.stable_hash());
                // Pin the rest of the flow to the scrubber.
                ctx.send(NfMessage::ChangeDefault {
                    flows: FlowMatch::exact(RulePort::Service(self.own_service), &key),
                    service: self.own_service,
                    new_default: Action::ToService(self.scrubber),
                });
            }
            return Verdict::ToService(self.scrubber);
        }
        Verdict::Default
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    const IDS: ServiceId = ServiceId::new(40);
    const SCRUBBER: ServiceId = ServiceId::new(50);

    fn http_packet(body: &str, src_port: u16) -> Packet {
        PacketBuilder::tcp()
            .src_port(src_port)
            .dst_port(80)
            .payload(format!("GET /q?{body} HTTP/1.1\r\n\r\n").as_bytes())
            .build()
    }

    #[test]
    fn clean_traffic_takes_default_path() {
        let mut ids = IdsNf::new(IDS, SCRUBBER);
        let mut ctx = NfContext::new(0);
        assert_eq!(
            ids.process(&http_packet("name=alice", 1000), &mut ctx),
            Verdict::Default
        );
        assert_eq!(ids.alerts(), 0);
        assert_eq!(ids.inspected(), 1);
        assert!(!ctx.has_messages());
    }

    #[test]
    fn signature_hit_diverts_and_pins_flow() {
        let mut ids = IdsNf::new(IDS, SCRUBBER);
        let mut ctx = NfContext::new(0);
        let bad = http_packet("q=' OR '1'='1", 2000);
        assert_eq!(ids.process(&bad, &mut ctx), Verdict::ToService(SCRUBBER));
        assert_eq!(ids.alerts(), 1);
        let msgs = ctx.take_messages();
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            NfMessage::ChangeDefault {
                service,
                new_default,
                ..
            } => {
                assert_eq!(*service, IDS);
                assert_eq!(*new_default, Action::ToService(SCRUBBER));
            }
            other => panic!("unexpected message {other:?}"),
        }
        // A later innocuous packet of the same flow is still scrubbed.
        let later = http_packet("q=hello", 2000);
        assert_eq!(ids.process(&later, &mut ctx), Verdict::ToService(SCRUBBER));
        // But the message is only sent once per flow.
        assert!(!ctx.has_messages());
    }

    #[test]
    fn custom_signatures() {
        let mut ids = IdsNf::with_signatures(IDS, SCRUBBER, vec![b"attack-token".to_vec()]);
        let mut ctx = NfContext::new(0);
        assert_eq!(
            ids.process(&http_packet("x=attack-token", 1), &mut ctx),
            Verdict::ToService(SCRUBBER)
        );
        assert_eq!(
            ids.process(&http_packet("x=UNION SELECT", 2), &mut ctx),
            Verdict::Default,
            "default signatures are not active when a custom set is supplied"
        );
    }

    #[test]
    fn non_payload_packets_pass() {
        let mut ids = IdsNf::new(IDS, SCRUBBER);
        let mut ctx = NfContext::new(0);
        let pkt = Packet::from_bytes(vec![0u8; 10]);
        assert_eq!(ids.process(&pkt, &mut ctx), Verdict::Default);
    }
}
