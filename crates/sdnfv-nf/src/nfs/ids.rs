//! A signature-based intrusion detection NF.

use sdnfv_flowtable::{Action, FlowMatch, RulePort, ServiceId};
use sdnfv_proto::flow::FlowKey;
use sdnfv_proto::Packet;
use std::collections::HashSet;

use crate::api::{NetworkFunction, NfContext, NfFlowState, NfMessage, Verdict};

/// Scans packet payloads for malicious signatures (e.g. SQL exploits in HTTP
/// requests). When a signature is found the offending packet is diverted to
/// the scrubber service and a `ChangeDefault` message pins *all* subsequent
/// packets of the flow to the scrubber, as required by the anomaly-detection
/// use case (paper §2.2).
#[derive(Debug, Clone)]
pub struct IdsNf {
    /// The service id the IDS itself is deployed as (needed so the emitted
    /// `ChangeDefault` can name whose default rule to rewrite).
    own_service: ServiceId,
    scrubber: ServiceId,
    signatures: Vec<Vec<u8>>,
    /// Flows pinned to the scrubber. Keyed by the full [`FlowKey`] (not a
    /// bare hash) so the re-home handshake can enumerate and migrate the
    /// set when a flow's steering bucket changes shards.
    flagged_flows: HashSet<FlowKey>,
    alerts: u64,
    inspected: u64,
}

impl IdsNf {
    /// Creates an IDS with the default signature set.
    pub fn new(own_service: ServiceId, scrubber: ServiceId) -> Self {
        IdsNf::with_signatures(
            own_service,
            scrubber,
            vec![
                b"' OR '1'='1".to_vec(),
                b"UNION SELECT".to_vec(),
                b"/etc/passwd".to_vec(),
                b"<script>".to_vec(),
            ],
        )
    }

    /// Creates an IDS with a custom signature set.
    pub fn with_signatures(
        own_service: ServiceId,
        scrubber: ServiceId,
        signatures: Vec<Vec<u8>>,
    ) -> Self {
        IdsNf {
            own_service,
            scrubber,
            signatures,
            flagged_flows: HashSet::new(),
            alerts: 0,
            inspected: 0,
        }
    }

    /// Number of signature hits.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// Number of packets inspected.
    pub fn inspected(&self) -> u64 {
        self.inspected
    }

    /// Whether `key`'s flow has been flagged (pinned to the scrubber).
    pub fn is_flagged(&self, key: &FlowKey) -> bool {
        self.flagged_flows.contains(key)
    }

    fn payload_matches(&self, packet: &Packet) -> bool {
        let Ok(payload) = packet.l4_payload() else {
            return false;
        };
        self.signatures
            .iter()
            .any(|sig| !sig.is_empty() && contains(payload, sig))
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

impl NetworkFunction for IdsNf {
    fn name(&self) -> &str {
        "ids"
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        self.inspected += 1;
        let key = packet.flow_key();
        // Already-flagged flows keep going to the scrubber even if later
        // packets look innocent.
        if let Some(key) = key {
            if self.flagged_flows.contains(&key) {
                return Verdict::ToService(self.scrubber);
            }
        }
        if self.payload_matches(packet) {
            self.alerts += 1;
            if let Some(key) = key {
                self.flagged_flows.insert(key);
                // Pin the rest of the flow to the scrubber.
                ctx.send_for_flow(
                    &key,
                    NfMessage::ChangeDefault {
                        flows: FlowMatch::exact(RulePort::Service(self.own_service), &key),
                        service: self.own_service,
                        new_default: Action::ToService(self.scrubber),
                    },
                );
            }
            return Verdict::ToService(self.scrubber);
        }
        Verdict::Default
    }

    fn export_flow_state(&mut self, key: &FlowKey) -> Option<NfFlowState> {
        self.flagged_flows
            .remove(key)
            .then(|| NfFlowState::with_counter("flagged", 1))
    }

    fn import_flow_state(&mut self, key: &FlowKey, state: NfFlowState) {
        if state.counter("flagged") == Some(1) {
            self.flagged_flows.insert(*key);
        }
    }

    fn flow_state_keys(&self) -> Vec<FlowKey> {
        self.flagged_flows.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    const IDS: ServiceId = ServiceId::new(40);
    const SCRUBBER: ServiceId = ServiceId::new(50);

    fn http_packet(body: &str, src_port: u16) -> Packet {
        PacketBuilder::tcp()
            .src_port(src_port)
            .dst_port(80)
            .payload(format!("GET /q?{body} HTTP/1.1\r\n\r\n").as_bytes())
            .build()
    }

    #[test]
    fn clean_traffic_takes_default_path() {
        let mut ids = IdsNf::new(IDS, SCRUBBER);
        let mut ctx = NfContext::new(0);
        assert_eq!(
            ids.process(&http_packet("name=alice", 1000), &mut ctx),
            Verdict::Default
        );
        assert_eq!(ids.alerts(), 0);
        assert_eq!(ids.inspected(), 1);
        assert!(!ctx.has_messages());
    }

    #[test]
    fn signature_hit_diverts_and_pins_flow() {
        let mut ids = IdsNf::new(IDS, SCRUBBER);
        let mut ctx = NfContext::new(0);
        let bad = http_packet("q=' OR '1'='1", 2000);
        assert_eq!(ids.process(&bad, &mut ctx), Verdict::ToService(SCRUBBER));
        assert_eq!(ids.alerts(), 1);
        let msgs = ctx.take_messages();
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            NfMessage::ChangeDefault {
                service,
                new_default,
                ..
            } => {
                assert_eq!(*service, IDS);
                assert_eq!(*new_default, Action::ToService(SCRUBBER));
            }
            other => panic!("unexpected message {other:?}"),
        }
        // A later innocuous packet of the same flow is still scrubbed.
        let later = http_packet("q=hello", 2000);
        assert_eq!(ids.process(&later, &mut ctx), Verdict::ToService(SCRUBBER));
        // But the message is only sent once per flow.
        assert!(!ctx.has_messages());
    }

    #[test]
    fn custom_signatures() {
        let mut ids = IdsNf::with_signatures(IDS, SCRUBBER, vec![b"attack-token".to_vec()]);
        let mut ctx = NfContext::new(0);
        assert_eq!(
            ids.process(&http_packet("x=attack-token", 1), &mut ctx),
            Verdict::ToService(SCRUBBER)
        );
        assert_eq!(
            ids.process(&http_packet("x=UNION SELECT", 2), &mut ctx),
            Verdict::Default,
            "default signatures are not active when a custom set is supplied"
        );
    }

    #[test]
    fn flagged_flow_state_migrates_between_instances() {
        let mut old_shard = IdsNf::new(IDS, SCRUBBER);
        let mut new_shard = IdsNf::new(IDS, SCRUBBER);
        let mut ctx = NfContext::new(0);
        let bad = http_packet("q=' OR '1'='1", 4242);
        let key = bad.flow_key().expect("tcp packet");
        old_shard.process(&bad, &mut ctx);
        assert!(old_shard.is_flagged(&key));
        assert_eq!(old_shard.flow_state_keys(), vec![key]);

        // Export removes the state from the old instance…
        let state = old_shard.export_flow_state(&key).expect("flow is flagged");
        assert!(!old_shard.is_flagged(&key));
        assert_eq!(old_shard.export_flow_state(&key), None, "export is a move");
        // …and import restores it on the new one: an innocuous packet of
        // the migrated flow is still scrubbed.
        new_shard.import_flow_state(&key, state);
        assert!(new_shard.is_flagged(&key));
        let innocent = http_packet("q=hello", 4242);
        assert_eq!(
            new_shard.process(&innocent, &mut ctx),
            Verdict::ToService(SCRUBBER),
            "the migrated flag keeps governing the flow"
        );
    }

    #[test]
    fn non_payload_packets_pass() {
        let mut ids = IdsNf::new(IDS, SCRUBBER);
        let mut ctx = NfContext::new(0);
        let pkt = Packet::from_bytes(vec![0u8; 10]);
        assert_eq!(ids.process(&pkt, &mut ctx), Verdict::Default);
    }
}
