//! The application-aware memcached proxy / load balancer (paper §5.4,
//! Figure 12).

use sdnfv_proto::memcached::Request;
use sdnfv_proto::Packet;
use std::net::Ipv4Addr;

use crate::api::{NetworkFunction, NfContext, Verdict};

/// A memcached backend server the proxy can steer requests to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    /// Server address.
    pub ip: Ipv4Addr,
    /// Server UDP port.
    pub port: u16,
}

impl Backend {
    /// Creates a backend description.
    pub fn new(ip: Ipv4Addr, port: u16) -> Self {
        Backend { ip, port }
    }
}

/// Parses incoming UDP memcached requests, maps the requested key to a
/// backend server by hashing, and rewrites the packet's destination address
/// so the request is delivered there. Responses flow directly from the
/// server to the client without traversing the proxy, which is what gives
/// the NF-based proxy its large advantage over TwemProxy in Figure 12.
#[derive(Debug, Clone)]
pub struct MemcachedProxyNf {
    backends: Vec<Backend>,
    /// Port packets are forwarded out of after rewriting.
    egress_port: u16,
    proxied: u64,
    not_memcached: u64,
}

impl MemcachedProxyNf {
    /// Creates a proxy balancing across `backends`.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty.
    pub fn new(backends: Vec<Backend>, egress_port: u16) -> Self {
        assert!(!backends.is_empty(), "proxy needs at least one backend");
        MemcachedProxyNf {
            backends,
            egress_port,
            proxied: 0,
            not_memcached: 0,
        }
    }

    /// Requests rewritten and forwarded to a backend.
    pub fn proxied(&self) -> u64 {
        self.proxied
    }

    /// Packets that were not parseable memcached requests.
    pub fn not_memcached(&self) -> u64 {
        self.not_memcached
    }

    /// The backend a key maps to (exposed for tests and the simulator).
    pub fn backend_for_key(&self, key: &str) -> Backend {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        self.backends[(hash % self.backends.len() as u64) as usize]
    }
}

impl NetworkFunction for MemcachedProxyNf {
    fn name(&self) -> &str {
        "memcached-proxy"
    }

    fn read_only(&self) -> bool {
        false
    }

    fn process(&mut self, packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        // Read-only path (used only if misconfigured as parallel): classify
        // but do not rewrite.
        match packet
            .l4_payload()
            .ok()
            .and_then(|p| Request::parse(p).ok())
        {
            Some(_) => Verdict::Default,
            None => {
                self.not_memcached += 1;
                Verdict::Default
            }
        }
    }

    fn process_mut(&mut self, packet: &mut Packet, _ctx: &mut NfContext) -> Verdict {
        let request = match packet
            .l4_payload()
            .ok()
            .and_then(|p| Request::parse(p).ok())
        {
            Some(r) => r,
            None => {
                self.not_memcached += 1;
                return Verdict::Default;
            }
        };
        let backend = self.backend_for_key(request.command.key());
        if packet.set_dst_ip(backend.ip).is_err() || packet.set_dst_port(backend.port).is_err() {
            self.not_memcached += 1;
            return Verdict::Default;
        }
        self.proxied += 1;
        Verdict::ToPort(self.egress_port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::memcached::get_request;
    use sdnfv_proto::packet::PacketBuilder;

    fn backends() -> Vec<Backend> {
        vec![
            Backend::new(Ipv4Addr::new(10, 10, 0, 1), 11211),
            Backend::new(Ipv4Addr::new(10, 10, 0, 2), 11211),
            Backend::new(Ipv4Addr::new(10, 10, 0, 3), 11211),
        ]
    }

    fn get_packet(key: &str) -> Packet {
        PacketBuilder::udp()
            .src_ip([10, 0, 0, 50])
            .dst_ip([10, 10, 0, 100]) // the proxy's VIP
            .dst_port(11211)
            .payload(&get_request(1, key))
            .build()
    }

    #[test]
    fn rewrites_destination_to_consistent_backend() {
        let mut nf = MemcachedProxyNf::new(backends(), 1);
        let mut ctx = NfContext::new(0);
        let mut pkt = get_packet("user:42");
        let verdict = nf.process_mut(&mut pkt, &mut ctx);
        assert_eq!(verdict, Verdict::ToPort(1));
        let expected = nf.backend_for_key("user:42");
        assert_eq!(pkt.ipv4().unwrap().dst, expected.ip);
        assert_eq!(pkt.udp().unwrap().dst_port, expected.port);
        assert_eq!(nf.proxied(), 1);

        // The same key always maps to the same backend.
        let mut pkt2 = get_packet("user:42");
        nf.process_mut(&mut pkt2, &mut ctx);
        assert_eq!(pkt2.ipv4().unwrap().dst, expected.ip);
    }

    #[test]
    fn distributes_keys_across_backends() {
        let nf = MemcachedProxyNf::new(backends(), 1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(nf.backend_for_key(&format!("key:{i}")).ip);
        }
        assert_eq!(seen.len(), 3, "all backends should receive some keys");
    }

    #[test]
    fn non_memcached_traffic_passes_through() {
        let mut nf = MemcachedProxyNf::new(backends(), 1);
        let mut ctx = NfContext::new(0);
        let mut pkt = PacketBuilder::udp().payload(b"not memcached").build();
        assert_eq!(nf.process_mut(&mut pkt, &mut ctx), Verdict::Default);
        assert_eq!(nf.not_memcached(), 1);
        assert_eq!(nf.proxied(), 0);
        assert!(!nf.read_only());
    }

    #[test]
    fn read_only_path_does_not_rewrite() {
        let mut nf = MemcachedProxyNf::new(backends(), 1);
        let mut ctx = NfContext::new(0);
        let pkt = get_packet("abc");
        let before = pkt.ipv4().unwrap().dst;
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::Default);
        assert_eq!(pkt.ipv4().unwrap().dst, before);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_backends_panics() {
        let _ = MemcachedProxyNf::new(vec![], 1);
    }
}
