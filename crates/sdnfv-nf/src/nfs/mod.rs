//! The network functions used in the paper's use cases and evaluation.
//!
//! Security / anomaly detection (paper §2.2, §5.2):
//! [`FirewallNf`](firewall::FirewallNf), [`SamplerNf`](sampler::SamplerNf),
//! [`IdsNf`](ids::IdsNf), [`DdosDetectorNf`](ddos::DdosDetectorNf),
//! [`ScrubberNf`](scrubber::ScrubberNf).
//!
//! Video optimization (paper §2.2, §5.3):
//! [`VideoDetectorNf`](video_detector::VideoDetectorNf),
//! [`PolicyEngineNf`](policy_engine::PolicyEngineNf),
//! [`QualityDetectorNf`](quality_detector::QualityDetectorNf),
//! [`TranscoderNf`](transcoder::TranscoderNf), [`CacheNf`](cache::CacheNf),
//! [`ShaperNf`](shaper::ShaperNf).
//!
//! Flow management (paper §5.2): [`AntDetectorNf`](ant::AntDetectorNf).
//!
//! Application awareness (paper §5.4):
//! [`MemcachedProxyNf`](memcached_proxy::MemcachedProxyNf).
//!
//! Microbenchmark helpers (paper §5.1): [`NoOpNf`](noop::NoOpNf),
//! [`ComputeNf`](compute::ComputeNf), [`ForwarderNf`](noop::ForwarderNf).

pub mod ant;
pub mod cache;
pub mod compute;
pub mod ddos;
pub mod firewall;
pub mod ids;
pub mod memcached_proxy;
pub mod noop;
pub mod policy_engine;
pub mod quality_detector;
pub mod sampler;
pub mod scrubber;
pub mod shaper;
pub mod transcoder;
pub mod video_detector;

pub use ant::{AntDetectorNf, FlowClass};
pub use cache::CacheNf;
pub use compute::ComputeNf;
pub use ddos::DdosDetectorNf;
pub use firewall::{FirewallNf, FirewallRule};
pub use ids::IdsNf;
pub use memcached_proxy::{Backend, MemcachedProxyNf};
pub use noop::{ForwarderNf, NoOpNf};
pub use policy_engine::{PolicyEngineNf, PolicyHandle};
pub use quality_detector::QualityDetectorNf;
pub use sampler::SamplerNf;
pub use scrubber::ScrubberNf;
pub use shaper::ShaperNf;
pub use transcoder::TranscoderNf;
pub use video_detector::VideoDetectorNf;
