//! No-op and plain-forwarding functions used by the latency/throughput
//! microbenchmarks (Table 2, Figure 7).

use sdnfv_proto::packet::Port;
use sdnfv_proto::Packet;

use crate::api::{NetworkFunction, NfContext, Verdict};
use crate::batch::PacketBatch;

/// A network function that performs no processing and follows the default
/// path. It models the "no-op application" of Table 2.
#[derive(Debug, Default, Clone)]
pub struct NoOpNf {
    packets: u64,
}

impl NoOpNf {
    /// Creates a no-op function.
    pub fn new() -> Self {
        NoOpNf::default()
    }

    /// Number of packets processed.
    pub fn packets(&self) -> u64 {
        self.packets
    }
}

impl NetworkFunction for NoOpNf {
    fn name(&self) -> &str {
        "noop"
    }

    fn process(&mut self, _packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        self.packets += 1;
        Verdict::Default
    }

    /// Native batch path: one counter bump per burst; the verdict slice
    /// arrives pre-filled with [`Verdict::Default`], which is exactly the
    /// no-op answer.
    fn process_batch(
        &mut self,
        batch: &PacketBatch<'_>,
        verdicts: &mut [Verdict],
        _ctx: &mut NfContext,
    ) {
        debug_assert_eq!(batch.len(), verdicts.len());
        self.packets += batch.len() as u64;
    }
}

/// A function that unconditionally forwards packets out a fixed NIC port —
/// the "simple DPDK forwarder" baseline (0 VM row of Table 2 / Figure 7)
/// expressed as an NF so the same harness can run it.
#[derive(Debug, Clone)]
pub struct ForwarderNf {
    port: Port,
    packets: u64,
}

impl ForwarderNf {
    /// Creates a forwarder that sends every packet out `port`.
    pub fn new(port: Port) -> Self {
        ForwarderNf { port, packets: 0 }
    }

    /// Number of packets forwarded.
    pub fn packets(&self) -> u64 {
        self.packets
    }
}

impl NetworkFunction for ForwarderNf {
    fn name(&self) -> &str {
        "forwarder"
    }

    fn process(&mut self, _packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        self.packets += 1;
        Verdict::ToPort(self.port)
    }

    /// Native batch path: a single fill of the verdict slice per burst.
    fn process_batch(
        &mut self,
        batch: &PacketBatch<'_>,
        verdicts: &mut [Verdict],
        _ctx: &mut NfContext,
    ) {
        debug_assert_eq!(batch.len(), verdicts.len());
        self.packets += batch.len() as u64;
        verdicts.fill(Verdict::ToPort(self.port));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    #[test]
    fn noop_defaults_and_counts() {
        let mut nf = NoOpNf::new();
        let pkt = PacketBuilder::udp().build();
        let mut ctx = NfContext::new(0);
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::Default);
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::Default);
        assert_eq!(nf.packets(), 2);
        assert!(nf.read_only());
        assert_eq!(nf.name(), "noop");
        assert!(!ctx.has_messages());
    }

    #[test]
    fn batch_paths_match_scalar_paths() {
        use crate::batch::{PacketBatch, VerdictSlice};
        let a = PacketBuilder::udp().src_port(1).build();
        let b = PacketBuilder::udp().src_port(2).build();
        let refs = [&a, &b];
        let batch = PacketBatch::new(&refs);
        let mut ctx = NfContext::new(0);
        let mut verdicts = VerdictSlice::new();

        let mut noop = NoOpNf::new();
        noop.process_batch(&batch, verdicts.reset(2), &mut ctx);
        assert_eq!(noop.packets(), 2);
        assert_eq!(verdicts.as_slice(), &[Verdict::Default, Verdict::Default]);

        let mut fwd = ForwarderNf::new(7);
        fwd.process_batch(&batch, verdicts.reset(2), &mut ctx);
        assert_eq!(fwd.packets(), 2);
        assert_eq!(
            verdicts.as_slice(),
            &[Verdict::ToPort(7), Verdict::ToPort(7)]
        );
    }

    #[test]
    fn forwarder_steers_to_port() {
        let mut nf = ForwarderNf::new(3);
        let pkt = PacketBuilder::udp().build();
        let mut ctx = NfContext::new(0);
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::ToPort(3));
        assert_eq!(nf.packets(), 1);
        assert_eq!(nf.name(), "forwarder");
    }
}
