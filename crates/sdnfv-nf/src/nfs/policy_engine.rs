//! The video policy engine (paper §5.3, Figure 11).

use parking_lot::RwLock;
use sdnfv_flowtable::{Action, FlowMatch, RulePort, ServiceId};
use sdnfv_proto::flow::FlowKey;
use sdnfv_proto::Packet;
use std::collections::HashSet;
use std::sync::Arc;

use crate::api::{NetworkFunction, NfContext, NfFlowState, NfMessage, Verdict};

#[derive(Debug, Default)]
struct PolicyState {
    /// When `true`, video flows must be transcoded down to a lower bit rate.
    throttle: bool,
    /// Bumped on every policy change so NFs can notice transitions.
    version: u64,
}

/// A handle through which operators (or the SDNFV Application) change the
/// active policy; the [`PolicyEngineNf`] observes changes on its packet path.
#[derive(Debug, Clone, Default)]
pub struct PolicyHandle {
    state: Arc<RwLock<PolicyState>>,
}

impl PolicyHandle {
    /// Creates a handle with throttling disabled.
    pub fn new() -> Self {
        PolicyHandle::default()
    }

    /// Enables or disables throttling (the t=60 s policy flip in Figure 11).
    pub fn set_throttle(&self, throttle: bool) {
        let mut state = self.state.write();
        if state.throttle != throttle {
            state.throttle = throttle;
            state.version += 1;
        }
    }

    /// Returns `true` if throttling is currently required.
    pub fn throttle(&self) -> bool {
        self.state.read().throttle
    }

    fn snapshot(&self) -> (bool, u64) {
        let state = self.state.read();
        (state.throttle, state.version)
    }
}

/// Decides, per flow, whether video traffic should be sent to the transcoder
/// (when the network policy requires throttling) or straight along the fast
/// path.
///
/// The engine exercises both halves of the paper's cross-layer protocol:
///
/// * while *not* throttling, it issues `ChangeDefault` messages so that the
///   video detector sends established flows directly out of the host,
///   removing the policy engine (and itself) from their path;
/// * when the policy flips to throttling, it issues a `RequestMe` so all
///   those flows are pulled back through the policy engine, after which each
///   is handed to the transcoder.
#[derive(Debug)]
pub struct PolicyEngineNf {
    own_service: ServiceId,
    video_detector: ServiceId,
    transcoder: ServiceId,
    /// Egress action used for flows that need no processing.
    fast_action: Action,
    policy: PolicyHandle,
    seen_version: u64,
    /// Flows that have been offloaded to the fast path. Keyed by the full
    /// [`FlowKey`] (not a bare hash) so the set can be enumerated and
    /// migrated when a flow's steering bucket is re-homed.
    offloaded: HashSet<FlowKey>,
    /// Flows whose default has already been pointed at the transcoder —
    /// the ChangeDefault is only sent once per flow.
    throttled: HashSet<FlowKey>,
    throttled_packets: u64,
    fast_packets: u64,
}

impl PolicyEngineNf {
    /// Creates a policy engine.
    pub fn new(
        own_service: ServiceId,
        video_detector: ServiceId,
        transcoder: ServiceId,
        fast_action: Action,
        policy: PolicyHandle,
    ) -> Self {
        PolicyEngineNf {
            own_service,
            video_detector,
            transcoder,
            fast_action,
            policy,
            seen_version: 0,
            offloaded: HashSet::new(),
            throttled: HashSet::new(),
            throttled_packets: 0,
            fast_packets: 0,
        }
    }

    /// Packets steered to the transcoder.
    pub fn throttled_packets(&self) -> u64 {
        self.throttled_packets
    }

    /// Packets sent along the fast path.
    pub fn fast_packets(&self) -> u64 {
        self.fast_packets
    }

    fn note_policy_transition(&mut self, trigger: Option<&FlowKey>, ctx: &mut NfContext) {
        let (throttle, version) = self.policy.snapshot();
        if version == self.seen_version {
            return;
        }
        self.seen_version = version;
        if throttle {
            // Pull every offloaded flow back through the policy engine so it
            // can be redirected to the transcoder (RequestMe in the paper).
            // Attributed to the packet that observed the transition, so the
            // wildcard mutation follows that flow's bucket on a re-home.
            let message = NfMessage::RequestMe {
                flows: FlowMatch::any(),
            };
            match trigger {
                Some(key) => ctx.send_for_flow(key, message),
                None => ctx.send(message),
            }
            self.offloaded.clear();
        } else {
            self.throttled.clear();
        }
    }
}

impl NetworkFunction for PolicyEngineNf {
    fn name(&self) -> &str {
        "policy-engine"
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        let key = packet.flow_key();
        self.note_policy_transition(key.as_ref(), ctx);
        let throttle = self.policy.throttle();
        let Some(key) = key else {
            return Verdict::Default;
        };
        if throttle {
            self.throttled_packets += 1;
            // Route this flow's future packets to the transcoder by default
            // (once per flow), and send this packet there too.
            if self.throttled.insert(key) {
                ctx.send_for_flow(
                    &key,
                    NfMessage::ChangeDefault {
                        flows: FlowMatch::exact(RulePort::Service(self.own_service), &key),
                        service: self.own_service,
                        new_default: Action::ToService(self.transcoder),
                    },
                );
            }
            Verdict::ToService(self.transcoder)
        } else {
            self.fast_packets += 1;
            if self.offloaded.insert(key) {
                // Offload the flow: the video detector should send it
                // straight out rather than through the policy engine.
                ctx.send_for_flow(
                    &key,
                    NfMessage::ChangeDefault {
                        flows: FlowMatch::exact(RulePort::Service(self.video_detector), &key),
                        service: self.video_detector,
                        new_default: self.fast_action,
                    },
                );
            }
            match self.fast_action {
                Action::ToPort(p) => Verdict::ToPort(p),
                Action::ToService(s) => Verdict::ToService(s),
                Action::Drop => Verdict::Discard,
                // A trace marker is not a forwarding action; fall back to
                // the rule default, as for controller-bound fast actions.
                Action::ToController | Action::Trace => Verdict::Default,
            }
        }
    }

    fn export_flow_state(&mut self, key: &FlowKey) -> Option<NfFlowState> {
        let offloaded = self.offloaded.remove(key);
        let throttled = self.throttled.remove(key);
        if !offloaded && !throttled {
            return None;
        }
        let mut state = NfFlowState::new();
        state.set_counter("offloaded", u64::from(offloaded));
        state.set_counter("throttled", u64::from(throttled));
        Some(state)
    }

    fn import_flow_state(&mut self, key: &FlowKey, state: NfFlowState) {
        if state.counter("offloaded") == Some(1) {
            self.offloaded.insert(*key);
        }
        if state.counter("throttled") == Some(1) {
            self.throttled.insert(*key);
        }
    }

    fn flow_state_keys(&self) -> Vec<FlowKey> {
        self.offloaded
            .iter()
            .chain(self.throttled.iter())
            .copied()
            .collect::<HashSet<FlowKey>>()
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    const PE: ServiceId = ServiceId::new(3);
    const VD: ServiceId = ServiceId::new(2);
    const TC: ServiceId = ServiceId::new(4);

    fn video_packet(src_port: u16) -> Packet {
        PacketBuilder::tcp()
            .src_port(src_port)
            .dst_port(50000)
            .payload(&[0u8; 400])
            .build()
    }

    #[test]
    fn fast_path_offloads_flows_to_video_detector() {
        let policy = PolicyHandle::new();
        let mut nf = PolicyEngineNf::new(PE, VD, TC, Action::ToPort(1), policy);
        let mut ctx = NfContext::new(0);
        assert_eq!(nf.process(&video_packet(100), &mut ctx), Verdict::ToPort(1));
        let msgs = ctx.take_messages();
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            NfMessage::ChangeDefault {
                service,
                new_default,
                ..
            } => {
                assert_eq!(*service, VD);
                assert_eq!(*new_default, Action::ToPort(1));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The offload message is sent only once per flow.
        assert_eq!(nf.process(&video_packet(100), &mut ctx), Verdict::ToPort(1));
        assert!(!ctx.has_messages());
        assert_eq!(nf.fast_packets(), 2);
    }

    #[test]
    fn throttling_redirects_to_transcoder_and_requests_flows_back() {
        let policy = PolicyHandle::new();
        let mut nf = PolicyEngineNf::new(PE, VD, TC, Action::ToPort(1), policy.clone());
        let mut ctx = NfContext::new(0);
        // Establish a fast-path flow first.
        nf.process(&video_packet(200), &mut ctx);
        ctx.take_messages();
        // Flip the policy.
        policy.set_throttle(true);
        assert!(policy.throttle());
        let verdict = nf.process(&video_packet(200), &mut ctx);
        assert_eq!(verdict, Verdict::ToService(TC));
        let msgs = ctx.take_messages();
        // RequestMe (policy transition) + ChangeDefault (this flow -> transcoder).
        assert_eq!(msgs.len(), 2);
        assert!(matches!(msgs[0], NfMessage::RequestMe { .. }));
        assert!(matches!(
            msgs[1],
            NfMessage::ChangeDefault {
                new_default: Action::ToService(TC),
                ..
            }
        ));
        assert_eq!(nf.throttled_packets(), 1);
        // Turning throttling back off returns flows to the fast path.
        policy.set_throttle(false);
        assert_eq!(nf.process(&video_packet(200), &mut ctx), Verdict::ToPort(1));
    }

    #[test]
    fn policy_handle_versioning_ignores_redundant_sets() {
        let policy = PolicyHandle::new();
        policy.set_throttle(false);
        let (_, v0) = policy.snapshot();
        policy.set_throttle(true);
        policy.set_throttle(true);
        let (_, v1) = policy.snapshot();
        assert_eq!(v1, v0 + 1);
    }

    #[test]
    fn offload_state_migrates_between_instances() {
        let policy = PolicyHandle::new();
        let mut old_shard = PolicyEngineNf::new(PE, VD, TC, Action::ToPort(1), policy.clone());
        let mut new_shard = PolicyEngineNf::new(PE, VD, TC, Action::ToPort(1), policy);
        let mut ctx = NfContext::new(0);
        let pkt = video_packet(300);
        let key = pkt.flow_key().unwrap();
        // Establish the flow on the old shard: the offload message fires.
        old_shard.process(&pkt, &mut ctx);
        assert_eq!(ctx.take_messages().len(), 1);
        assert_eq!(old_shard.flow_state_keys(), vec![key]);

        // Migrate the flow's state, then process on the new shard: without
        // the migration the offload would fire again; with it, it does not.
        let state = old_shard.export_flow_state(&key).expect("flow has state");
        assert_eq!(state.counter("offloaded"), Some(1));
        assert_eq!(state.counter("throttled"), Some(0));
        assert_eq!(old_shard.export_flow_state(&key), None, "export is a move");
        new_shard.import_flow_state(&key, state);
        new_shard.process(&pkt, &mut ctx);
        assert!(
            !ctx.has_messages(),
            "the migrated offload mark suppresses a duplicate ChangeDefault"
        );
    }

    #[test]
    fn non_ip_packets_take_default() {
        let policy = PolicyHandle::new();
        let mut nf = PolicyEngineNf::new(PE, VD, TC, Action::ToPort(1), policy);
        let mut ctx = NfContext::new(0);
        let pkt = Packet::from_bytes(vec![0u8; 16]);
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::Default);
    }
}
