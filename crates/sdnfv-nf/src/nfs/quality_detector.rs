//! Decides whether a video flow can be transcoded while retaining acceptable
//! quality (paper §2.2).

use sdnfv_flowtable::ServiceId;
use sdnfv_proto::Packet;
use std::collections::HashMap;

use crate::api::{NetworkFunction, NfContext, Verdict};

/// Estimates each flow's bit rate from observed packets; flows already at or
/// below the minimum acceptable rate skip the transcoder (they are routed to
/// the bypass service — typically the cache), while higher-rate flows follow
/// the default path to the transcoder.
#[derive(Debug, Clone)]
pub struct QualityDetectorNf {
    /// Minimum acceptable rate in bytes/second; flows below it are not
    /// transcoded further.
    min_rate_bytes_per_sec: u64,
    /// Service to send flows that should skip the transcoder.
    bypass: ServiceId,
    flows: HashMap<u64, FlowRate>,
    skipped: u64,
    forwarded: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct FlowRate {
    first_ns: u64,
    last_ns: u64,
    bytes: u64,
}

impl QualityDetectorNf {
    /// Creates a quality detector.
    pub fn new(min_rate_bytes_per_sec: u64, bypass: ServiceId) -> Self {
        QualityDetectorNf {
            min_rate_bytes_per_sec,
            bypass,
            flows: HashMap::new(),
            skipped: 0,
            forwarded: 0,
        }
    }

    /// Flows sent to the bypass service because transcoding would hurt
    /// quality too much.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Packets forwarded toward the transcoder.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl NetworkFunction for QualityDetectorNf {
    fn name(&self) -> &str {
        "quality-detector"
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        let Some(key) = packet.flow_key() else {
            return Verdict::Default;
        };
        let now = ctx.now_ns();
        let entry = self.flows.entry(key.stable_hash()).or_insert(FlowRate {
            first_ns: now,
            last_ns: now,
            bytes: 0,
        });
        entry.bytes += packet.len() as u64;
        entry.last_ns = now;
        let elapsed_ns = entry.last_ns.saturating_sub(entry.first_ns).max(1);
        let rate = entry.bytes as f64 / (elapsed_ns as f64 / 1e9);
        if entry.bytes > 0 && elapsed_ns > 1 && rate <= self.min_rate_bytes_per_sec as f64 {
            self.skipped += 1;
            Verdict::ToService(self.bypass)
        } else {
            self.forwarded += 1;
            Verdict::Default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    const CACHE: ServiceId = ServiceId::new(6);

    fn packet(src_port: u16, size: usize) -> Packet {
        PacketBuilder::udp()
            .src_port(src_port)
            .total_size(size)
            .build()
    }

    #[test]
    fn high_rate_flows_go_to_transcoder() {
        // Flow sends 1000 bytes/ms = 1 MB/s, above a 100 KB/s floor.
        let mut nf = QualityDetectorNf::new(100_000, CACHE);
        let mut ctx = NfContext::new(0);
        for i in 0..10u64 {
            ctx.set_now_ns(i * 1_000_000);
            assert_eq!(nf.process(&packet(1, 1000), &mut ctx), Verdict::Default);
        }
        assert_eq!(nf.forwarded(), 10);
        assert_eq!(nf.skipped(), 0);
    }

    #[test]
    fn low_rate_flows_skip_transcoder() {
        // Flow sends 100 bytes/s, below a 10 KB/s floor.
        let mut nf = QualityDetectorNf::new(10_000, CACHE);
        let mut ctx = NfContext::new(0);
        ctx.set_now_ns(0);
        // First packet: no elapsed time yet, forwarded by default.
        assert_eq!(nf.process(&packet(2, 100), &mut ctx), Verdict::Default);
        ctx.set_now_ns(1_000_000_000);
        assert_eq!(
            nf.process(&packet(2, 100), &mut ctx),
            Verdict::ToService(CACHE)
        );
        assert_eq!(nf.skipped(), 1);
    }

    #[test]
    fn flows_tracked_independently() {
        let mut nf = QualityDetectorNf::new(10_000, CACHE);
        let mut ctx = NfContext::new(0);
        nf.process(&packet(3, 1000), &mut ctx);
        nf.process(&packet(4, 10), &mut ctx);
        ctx.set_now_ns(1_000_000_000);
        // Flow 3 accumulates far more than 10 KB over the second, flow 4 does
        // not; once enough volume is seen, flow 3 keeps being forwarded while
        // flow 4 is diverted to the cache.
        for _ in 0..100 {
            nf.process(&packet(3, 1000), &mut ctx);
        }
        assert_eq!(nf.process(&packet(3, 1000), &mut ctx), Verdict::Default);
        assert_eq!(
            nf.process(&packet(4, 10), &mut ctx),
            Verdict::ToService(CACHE)
        );
    }

    #[test]
    fn non_ip_defaults() {
        let mut nf = QualityDetectorNf::new(10_000, CACHE);
        let mut ctx = NfContext::new(0);
        assert_eq!(
            nf.process(&Packet::from_bytes(vec![0; 8]), &mut ctx),
            Verdict::Default
        );
    }
}
