//! A traffic sampler that diverts a subset of packets for deeper analysis.

use sdnfv_flowtable::ServiceId;
use sdnfv_proto::flow::FlowKey;
use sdnfv_proto::Packet;
use std::collections::HashMap;

use crate::api::{NetworkFunction, NfContext, NfFlowState, Verdict};
use crate::batch::{BurstMemo, PacketBatch};

/// Samples packets either deterministically (every N-th packet) or by flow
/// hash (a stable fraction of flows), steering samples to an analysis
/// service and everything else down the default path.
#[derive(Debug, Clone)]
pub struct SamplerNf {
    target: ServiceId,
    /// Sample 1 out of every `one_in` packets (or flows).
    one_in: u64,
    /// When `true`, sampling is per flow (hash-based) so all packets of a
    /// sampled flow are diverted; otherwise it is per packet.
    per_flow: bool,
    counter: u64,
    sampled: u64,
    /// Per-flow reservoir (per-flow mode only): how many packets of each
    /// sampled flow have been diverted so far. Touched only for sampled
    /// packets, keyed by the full [`FlowKey`] so the tally migrates when
    /// the flow's steering bucket is re-homed to another shard.
    flow_reservoir: HashMap<FlowKey, u64>,
}

impl SamplerNf {
    /// Creates a per-packet sampler diverting one in `one_in` packets to
    /// `target`.
    ///
    /// # Panics
    ///
    /// Panics if `one_in` is zero.
    pub fn per_packet(target: ServiceId, one_in: u64) -> Self {
        assert!(one_in > 0, "sampling rate must be at least 1");
        SamplerNf {
            target,
            one_in,
            per_flow: false,
            counter: 0,
            sampled: 0,
            flow_reservoir: HashMap::new(),
        }
    }

    /// Creates a per-flow sampler diverting roughly one in `one_in` flows.
    ///
    /// # Panics
    ///
    /// Panics if `one_in` is zero.
    pub fn per_flow(target: ServiceId, one_in: u64) -> Self {
        assert!(one_in > 0, "sampling rate must be at least 1");
        SamplerNf {
            target,
            one_in,
            per_flow: true,
            counter: 0,
            sampled: 0,
            flow_reservoir: HashMap::new(),
        }
    }

    /// Number of packets diverted to the analysis service.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// How many of `key`'s packets this instance has diverted (per-flow
    /// mode only; always 0 in per-packet mode, which keeps no flow state).
    pub fn flow_sampled(&self, key: &FlowKey) -> u64 {
        self.flow_reservoir.get(key).copied().unwrap_or(0)
    }
}

impl NetworkFunction for SamplerNf {
    fn name(&self) -> &str {
        "sampler"
    }

    fn process(&mut self, packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        let (take, key) = if self.per_flow {
            match packet.flow_key() {
                Some(k) => (k.stable_hash() % self.one_in == 0, Some(k)),
                None => (false, None),
            }
        } else {
            self.counter += 1;
            (self.counter.is_multiple_of(self.one_in), None)
        };
        if take {
            self.sampled += 1;
            if let Some(key) = key {
                *self.flow_reservoir.entry(key).or_insert(0) += 1;
            }
            Verdict::ToService(self.target)
        } else {
            Verdict::Default
        }
    }

    /// Native batch path.
    ///
    /// Per-packet mode needs no packet inspection at all: which burst
    /// offsets are sampled follows from counter arithmetic, so the loop
    /// writes only the sampled slots (the rest stay `Default` per the batch
    /// contract). Per-flow mode hashes each distinct flow in the burst once
    /// and memoizes the decision.
    fn process_batch(
        &mut self,
        batch: &PacketBatch<'_>,
        verdicts: &mut [Verdict],
        _ctx: &mut NfContext,
    ) {
        debug_assert_eq!(batch.len(), verdicts.len());
        let n = batch.len() as u64;
        if !self.per_flow {
            // The sampled offsets are those where (counter + 1 + offset) is a
            // multiple of one_in. Jump straight to the first one.
            let mut offset = (self.one_in - 1) - (self.counter % self.one_in);
            while offset < n {
                verdicts[offset as usize] = Verdict::ToService(self.target);
                self.sampled += 1;
                offset += self.one_in;
            }
            self.counter += n;
            return;
        }
        let mut memo: BurstMemo<FlowKey, bool> = BurstMemo::new();
        for (slot, packet) in verdicts.iter_mut().zip(batch.iter()) {
            let one_in = self.one_in;
            let key = packet.flow_key();
            let take = match key {
                Some(key) => *memo.get_or_insert_with(key, |key| key.stable_hash() % one_in == 0),
                None => false,
            };
            if take {
                self.sampled += 1;
                if let Some(key) = key {
                    *self.flow_reservoir.entry(key).or_insert(0) += 1;
                }
                *slot = Verdict::ToService(self.target);
            }
        }
    }

    fn export_flow_state(&mut self, key: &FlowKey) -> Option<NfFlowState> {
        self.flow_reservoir
            .remove(key)
            .map(|sampled| NfFlowState::with_counter("sampled", sampled))
    }

    fn import_flow_state(&mut self, key: &FlowKey, state: NfFlowState) {
        if let Some(sampled) = state.counter("sampled") {
            // Merge: the flow's packets may have been split across replicas.
            *self.flow_reservoir.entry(*key).or_insert(0) += sampled;
        }
    }

    fn flow_state_keys(&self) -> Vec<FlowKey> {
        self.flow_reservoir.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    const DDOS: ServiceId = ServiceId::new(30);

    #[test]
    fn per_packet_sampling_rate() {
        let mut nf = SamplerNf::per_packet(DDOS, 4);
        let pkt = PacketBuilder::udp().build();
        let mut ctx = NfContext::new(0);
        let mut diverted = 0;
        for _ in 0..100 {
            if nf.process(&pkt, &mut ctx) == Verdict::ToService(DDOS) {
                diverted += 1;
            }
        }
        assert_eq!(diverted, 25);
        assert_eq!(nf.sampled(), 25);
    }

    #[test]
    fn sample_every_packet() {
        let mut nf = SamplerNf::per_packet(DDOS, 1);
        let pkt = PacketBuilder::udp().build();
        let mut ctx = NfContext::new(0);
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::ToService(DDOS));
    }

    #[test]
    fn per_flow_sampling_is_consistent_within_a_flow() {
        let mut nf = SamplerNf::per_flow(DDOS, 2);
        let mut ctx = NfContext::new(0);
        // All packets of the same flow get the same decision.
        let pkt = PacketBuilder::udp().src_port(1111).build();
        let first = nf.process(&pkt, &mut ctx);
        for _ in 0..10 {
            assert_eq!(nf.process(&pkt, &mut ctx), first);
        }
        // And across many flows roughly half are sampled.
        let mut sampled_flows = 0;
        for port in 0..200u16 {
            let pkt = PacketBuilder::udp().src_port(port).build();
            if nf.process(&pkt, &mut ctx) == Verdict::ToService(DDOS) {
                sampled_flows += 1;
            }
        }
        assert!((50..=150).contains(&sampled_flows), "got {sampled_flows}");
    }

    #[test]
    fn per_packet_batch_path_matches_scalar_sequence() {
        use crate::batch::{PacketBatch, VerdictSlice};
        let pkt = PacketBuilder::udp().build();
        let mut ctx = NfContext::new(0);
        let mut scalar = SamplerNf::per_packet(DDOS, 4);
        let mut batched = SamplerNf::per_packet(DDOS, 4);
        let mut verdicts = VerdictSlice::new();
        // Uneven burst sizes so sampling points straddle burst boundaries.
        for burst in [1usize, 3, 7, 4, 1, 9, 2] {
            let refs: Vec<&sdnfv_proto::Packet> = std::iter::repeat_n(&pkt, burst).collect();
            batched.process_batch(&PacketBatch::new(&refs), verdicts.reset(burst), &mut ctx);
            let expected: Vec<Verdict> =
                (0..burst).map(|_| scalar.process(&pkt, &mut ctx)).collect();
            assert_eq!(verdicts.as_slice(), expected.as_slice());
        }
        assert_eq!(batched.sampled(), scalar.sampled());
    }

    #[test]
    fn per_flow_batch_path_matches_scalar_path() {
        use crate::batch::{PacketBatch, VerdictSlice};
        let mut ctx = NfContext::new(0);
        let mut scalar = SamplerNf::per_flow(DDOS, 2);
        let mut batched = SamplerNf::per_flow(DDOS, 2);
        let pkts: Vec<sdnfv_proto::Packet> = (0..32u16)
            .map(|p| PacketBuilder::udp().src_port(p % 8).build())
            .collect();
        let refs: Vec<&sdnfv_proto::Packet> = pkts.iter().collect();
        let mut verdicts = VerdictSlice::new();
        batched.process_batch(
            &PacketBatch::new(&refs),
            verdicts.reset(refs.len()),
            &mut ctx,
        );
        let expected: Vec<Verdict> = refs.iter().map(|p| scalar.process(p, &mut ctx)).collect();
        assert_eq!(verdicts.as_slice(), expected.as_slice());
        assert_eq!(batched.sampled(), scalar.sampled());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_rate_panics() {
        let _ = SamplerNf::per_packet(DDOS, 0);
    }

    #[test]
    fn per_flow_reservoir_migrates_and_merges() {
        let mut ctx = NfContext::new(0);
        let mut old_shard = SamplerNf::per_flow(DDOS, 1); // sample everything
        let mut new_shard = SamplerNf::per_flow(DDOS, 1);
        let pkt = PacketBuilder::udp().src_port(77).build();
        let key = pkt.flow_key().unwrap();
        for _ in 0..3 {
            old_shard.process(&pkt, &mut ctx);
        }
        assert_eq!(old_shard.flow_sampled(&key), 3);
        assert_eq!(old_shard.flow_state_keys(), vec![key]);

        // A packet already seen on the destination (replica split), then the
        // migrated tally merges in.
        new_shard.process(&pkt, &mut ctx);
        let state = old_shard.export_flow_state(&key).expect("flow has state");
        assert_eq!(old_shard.flow_sampled(&key), 0, "export is a move");
        new_shard.import_flow_state(&key, state);
        assert_eq!(new_shard.flow_sampled(&key), 4, "tallies merge additively");
        // Per-packet mode keeps no per-flow state at all.
        let mut per_packet = SamplerNf::per_packet(DDOS, 1);
        per_packet.process(&pkt, &mut ctx);
        assert_eq!(per_packet.flow_sampled(&key), 0);
        assert!(per_packet.flow_state_keys().is_empty());
        assert_eq!(per_packet.export_flow_state(&key), None);
    }
}
