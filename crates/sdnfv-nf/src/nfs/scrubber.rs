//! A traffic scrubber that cleans flows flagged as malicious.

use sdnfv_flowtable::{FlowMatch, IpPrefix};
use sdnfv_proto::Packet;

use crate::api::{NetworkFunction, NfContext, NfMessage, Verdict};

/// Drops traffic from configured malicious prefixes (or carrying malicious
/// payload signatures) and passes everything else along the default path.
///
/// On startup the scrubber announces itself with `RequestMe`, so that NFs
/// upstream start defaulting to it — this is exactly how the newly booted
/// scrubber VM inserts itself into the DDoS mitigation path in Figure 9.
#[derive(Debug, Clone, Default)]
pub struct ScrubberNf {
    /// Prefixes whose traffic is dropped.
    malicious_prefixes: Vec<IpPrefix>,
    /// Payload signatures that are dropped.
    signatures: Vec<Vec<u8>>,
    /// Flow filter announced in the startup `RequestMe` message.
    request_filter: FlowMatch,
    announce_on_start: bool,
    scrubbed: u64,
    passed: u64,
}

impl ScrubberNf {
    /// Creates a scrubber with no rules that silently passes traffic.
    pub fn new() -> Self {
        ScrubberNf::default()
    }

    /// Creates a scrubber that drops traffic from `prefix` and announces
    /// itself with `RequestMe` when started.
    pub fn for_prefix(prefix: IpPrefix) -> Self {
        ScrubberNf {
            malicious_prefixes: vec![prefix],
            request_filter: FlowMatch::any().with_src_ip(prefix),
            announce_on_start: true,
            ..ScrubberNf::default()
        }
    }

    /// Adds a malicious prefix.
    pub fn with_prefix(mut self, prefix: IpPrefix) -> Self {
        self.malicious_prefixes.push(prefix);
        self
    }

    /// Adds a payload signature to drop.
    pub fn with_signature(mut self, signature: Vec<u8>) -> Self {
        self.signatures.push(signature);
        self
    }

    /// Number of packets dropped.
    pub fn scrubbed(&self) -> u64 {
        self.scrubbed
    }

    /// Number of packets passed through.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    fn is_malicious(&self, packet: &Packet) -> bool {
        if let Some(key) = packet.flow_key() {
            if self
                .malicious_prefixes
                .iter()
                .any(|p| p.contains(key.src_ip))
            {
                return true;
            }
        }
        if let Ok(payload) = packet.l4_payload() {
            if self
                .signatures
                .iter()
                .any(|sig| !sig.is_empty() && payload.windows(sig.len()).any(|w| w == &sig[..]))
            {
                return true;
            }
        }
        false
    }
}

impl NetworkFunction for ScrubberNf {
    fn name(&self) -> &str {
        "scrubber"
    }

    fn on_start(&mut self, ctx: &mut NfContext) {
        if self.announce_on_start {
            ctx.send(NfMessage::RequestMe {
                flows: self.request_filter,
            });
        }
    }

    fn process(&mut self, packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        if self.is_malicious(packet) {
            self.scrubbed += 1;
            Verdict::Discard
        } else {
            self.passed += 1;
            Verdict::Default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn drops_malicious_prefix_and_passes_rest() {
        let mut nf = ScrubberNf::for_prefix(IpPrefix::new(Ipv4Addr::new(66, 0, 0, 0), 8));
        let mut ctx = NfContext::new(0);
        let attack = PacketBuilder::udp().src_ip([66, 1, 2, 3]).build();
        let normal = PacketBuilder::udp().src_ip([10, 1, 2, 3]).build();
        assert_eq!(nf.process(&attack, &mut ctx), Verdict::Discard);
        assert_eq!(nf.process(&normal, &mut ctx), Verdict::Default);
        assert_eq!(nf.scrubbed(), 1);
        assert_eq!(nf.passed(), 1);
    }

    #[test]
    fn announces_itself_on_start() {
        let mut nf = ScrubberNf::for_prefix(IpPrefix::new(Ipv4Addr::new(66, 0, 0, 0), 8));
        let mut ctx = NfContext::new(0);
        nf.on_start(&mut ctx);
        let msgs = ctx.take_messages();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], NfMessage::RequestMe { .. }));
        // A plain scrubber with no rules stays quiet.
        let mut plain = ScrubberNf::new();
        plain.on_start(&mut ctx);
        assert!(!ctx.has_messages());
    }

    #[test]
    fn signature_scrubbing() {
        let mut nf = ScrubberNf::new().with_signature(b"evil-bytes".to_vec());
        let mut ctx = NfContext::new(0);
        let bad = PacketBuilder::udp().payload(b"xx evil-bytes xx").build();
        let good = PacketBuilder::udp().payload(b"hello").build();
        assert_eq!(nf.process(&bad, &mut ctx), Verdict::Discard);
        assert_eq!(nf.process(&good, &mut ctx), Verdict::Default);
    }

    #[test]
    fn builder_accumulates_prefixes() {
        let mut nf = ScrubberNf::new()
            .with_prefix(IpPrefix::new(Ipv4Addr::new(1, 0, 0, 0), 8))
            .with_prefix(IpPrefix::new(Ipv4Addr::new(2, 0, 0, 0), 8));
        let mut ctx = NfContext::new(0);
        assert_eq!(
            nf.process(&PacketBuilder::udp().src_ip([1, 1, 1, 1]).build(), &mut ctx),
            Verdict::Discard
        );
        assert_eq!(
            nf.process(&PacketBuilder::udp().src_ip([2, 1, 1, 1]).build(), &mut ctx),
            Verdict::Discard
        );
        assert_eq!(
            nf.process(&PacketBuilder::udp().src_ip([3, 1, 1, 1]).build(), &mut ctx),
            Verdict::Default
        );
    }
}
