//! A token-bucket traffic shaper / policer (paper §2.2 video pipeline).

use sdnfv_proto::Packet;

use crate::api::{NetworkFunction, NfContext, Verdict};

/// Polices traffic to a configured rate using a token bucket: packets that
/// exceed the rate (beyond the allowed burst) are dropped, limiting the
/// flow's bandwidth to the desired level.
#[derive(Debug, Clone)]
pub struct ShaperNf {
    rate_bytes_per_sec: u64,
    burst_bytes: u64,
    tokens: f64,
    last_refill_ns: u64,
    passed: u64,
    dropped: u64,
}

impl ShaperNf {
    /// Creates a shaper limiting traffic to `rate_bytes_per_sec` with the
    /// given burst allowance.
    ///
    /// # Panics
    ///
    /// Panics if the rate or burst is zero.
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: u64) -> Self {
        assert!(rate_bytes_per_sec > 0, "rate must be non-zero");
        assert!(burst_bytes > 0, "burst must be non-zero");
        ShaperNf {
            rate_bytes_per_sec,
            burst_bytes,
            tokens: burst_bytes as f64,
            last_refill_ns: 0,
            passed: 0,
            dropped: 0,
        }
    }

    /// Packets passed within the rate.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Packets dropped for exceeding the rate.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn refill(&mut self, now_ns: u64) {
        let elapsed_ns = now_ns.saturating_sub(self.last_refill_ns);
        self.last_refill_ns = now_ns;
        let add = self.rate_bytes_per_sec as f64 * (elapsed_ns as f64 / 1e9);
        self.tokens = (self.tokens + add).min(self.burst_bytes as f64);
    }
}

impl NetworkFunction for ShaperNf {
    fn name(&self) -> &str {
        "shaper"
    }

    fn read_only(&self) -> bool {
        false
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        self.refill(ctx.now_ns());
        let cost = packet.len() as f64;
        if self.tokens >= cost {
            self.tokens -= cost;
            self.passed += 1;
            Verdict::Default
        } else {
            self.dropped += 1;
            Verdict::Discard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    fn pkt(size: usize) -> Packet {
        PacketBuilder::udp().total_size(size).build()
    }

    #[test]
    fn passes_within_burst_then_drops() {
        // 1000 B/s rate with a 500 B burst.
        let mut nf = ShaperNf::new(1000, 500);
        let mut ctx = NfContext::new(0);
        assert_eq!(nf.process(&pkt(200), &mut ctx), Verdict::Default);
        assert_eq!(nf.process(&pkt(200), &mut ctx), Verdict::Default);
        // Burst exhausted: the next packet is dropped.
        assert_eq!(nf.process(&pkt(200), &mut ctx), Verdict::Discard);
        assert_eq!(nf.passed(), 2);
        assert_eq!(nf.dropped(), 1);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut nf = ShaperNf::new(1000, 500);
        let mut ctx = NfContext::new(0);
        for _ in 0..3 {
            nf.process(&pkt(200), &mut ctx);
        }
        // After one second, 1000 bytes worth of tokens (capped at 500).
        ctx.set_now_ns(1_000_000_000);
        assert_eq!(nf.process(&pkt(400), &mut ctx), Verdict::Default);
    }

    #[test]
    fn sustained_rate_approximates_configured_rate() {
        // Send 100 B packets every 50 ms for 10 s against a 1 KB/s limit:
        // offered 2 KB/s, so roughly half should pass.
        let mut nf = ShaperNf::new(1000, 200);
        let mut ctx = NfContext::new(0);
        for i in 0..200u64 {
            ctx.set_now_ns(i * 50_000_000);
            nf.process(&pkt(100), &mut ctx);
        }
        let passed_bytes = nf.passed() * 100;
        assert!(
            (8_000..=12_000).contains(&passed_bytes),
            "passed {passed_bytes} bytes over 10s against a 1000 B/s limit"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be non-zero")]
    fn zero_rate_panics() {
        let _ = ShaperNf::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "burst must be non-zero")]
    fn zero_burst_panics() {
        let _ = ShaperNf::new(10, 0);
    }
}
