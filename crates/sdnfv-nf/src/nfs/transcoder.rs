//! A video transcoder that emulates bit-rate reduction (paper §5.3).

use sdnfv_proto::Packet;
use std::collections::HashMap;

use crate::api::{NetworkFunction, NfContext, Verdict};

/// Emulates down-sampling a video stream by dropping a configurable fraction
/// of each flow's packets, exactly as the paper's evaluation does ("the
/// transcoder emulates down sampling by dropping packets", halving the rate
/// in Figure 11).
///
/// The transcoder is not read-only (a real implementation rewrites payload),
/// so it is never scheduled in parallel with other NFs.
#[derive(Debug, Clone)]
pub struct TranscoderNf {
    /// Keep one packet out of every `keep_one_in` per flow; the rest are
    /// dropped. `keep_one_in = 2` halves the rate.
    keep_one_in: u64,
    per_flow_counters: HashMap<u64, u64>,
    transcoded: u64,
    dropped: u64,
}

impl TranscoderNf {
    /// Creates a transcoder that keeps one in `keep_one_in` packets per flow.
    ///
    /// # Panics
    ///
    /// Panics if `keep_one_in` is zero.
    pub fn new(keep_one_in: u64) -> Self {
        assert!(keep_one_in > 0, "keep rate must be at least 1");
        TranscoderNf {
            keep_one_in,
            per_flow_counters: HashMap::new(),
            transcoded: 0,
            dropped: 0,
        }
    }

    /// A transcoder that halves each flow's rate (the Figure 11 setting).
    pub fn halving() -> Self {
        TranscoderNf::new(2)
    }

    /// Packets passed through (after "transcoding").
    pub fn transcoded(&self) -> u64 {
        self.transcoded
    }

    /// Packets dropped to reduce the bit rate.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl NetworkFunction for TranscoderNf {
    fn name(&self) -> &str {
        "transcoder"
    }

    fn read_only(&self) -> bool {
        false
    }

    fn process(&mut self, packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        let hash = packet.flow_key().map(|k| k.stable_hash()).unwrap_or(0);
        let counter = self.per_flow_counters.entry(hash).or_insert(0);
        *counter += 1;
        if (*counter).is_multiple_of(self.keep_one_in) {
            self.transcoded += 1;
            Verdict::Default
        } else {
            self.dropped += 1;
            Verdict::Discard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    #[test]
    fn halving_drops_every_other_packet_per_flow() {
        let mut nf = TranscoderNf::halving();
        let mut ctx = NfContext::new(0);
        let pkt = PacketBuilder::udp().src_port(9).build();
        let mut kept = 0;
        for _ in 0..100 {
            if nf.process(&pkt, &mut ctx) == Verdict::Default {
                kept += 1;
            }
        }
        assert_eq!(kept, 50);
        assert_eq!(nf.transcoded(), 50);
        assert_eq!(nf.dropped(), 50);
        assert!(!nf.read_only());
    }

    #[test]
    fn per_flow_counters_are_independent() {
        let mut nf = TranscoderNf::new(2);
        let mut ctx = NfContext::new(0);
        let a = PacketBuilder::udp().src_port(1).build();
        let b = PacketBuilder::udp().src_port(2).build();
        // First packet of each flow is dropped, second kept, independently.
        assert_eq!(nf.process(&a, &mut ctx), Verdict::Discard);
        assert_eq!(nf.process(&b, &mut ctx), Verdict::Discard);
        assert_eq!(nf.process(&a, &mut ctx), Verdict::Default);
        assert_eq!(nf.process(&b, &mut ctx), Verdict::Default);
    }

    #[test]
    fn keep_one_in_one_passes_everything() {
        let mut nf = TranscoderNf::new(1);
        let mut ctx = NfContext::new(0);
        let pkt = PacketBuilder::udp().build();
        for _ in 0..10 {
            assert_eq!(nf.process(&pkt, &mut ctx), Verdict::Default);
        }
        assert_eq!(nf.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_keep_rate_panics() {
        let _ = TranscoderNf::new(0);
    }
}
