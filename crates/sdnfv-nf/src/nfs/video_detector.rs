//! Detects video flows by inspecting HTTP response headers (paper §2.2/§5.3).

use sdnfv_proto::http::HttpResponse;
use sdnfv_proto::Packet;
use std::collections::HashMap;

use crate::api::{NetworkFunction, NfContext, Verdict};

/// Per-flow content classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Content {
    Unknown,
    Video,
    Other,
}

/// Inspects the HTTP response headers of each flow to determine whether it
/// carries video content. Video flows follow the default path (toward the
/// policy engine); everything else takes the configured bypass verdict
/// (typically straight out of the host).
#[derive(Debug, Clone)]
pub struct VideoDetectorNf {
    bypass: Verdict,
    flows: HashMap<u64, Content>,
    video_flows: u64,
    other_flows: u64,
}

impl VideoDetectorNf {
    /// Creates a detector that sends non-video flows to `bypass` (e.g.
    /// `Verdict::ToPort(egress)`); video flows follow the default path.
    pub fn new(bypass: Verdict) -> Self {
        VideoDetectorNf {
            bypass,
            flows: HashMap::new(),
            video_flows: 0,
            other_flows: 0,
        }
    }

    /// Number of flows classified as video.
    pub fn video_flows(&self) -> u64 {
        self.video_flows
    }

    /// Number of flows classified as non-video.
    pub fn other_flows(&self) -> u64 {
        self.other_flows
    }

    fn classify(&mut self, packet: &Packet) -> Content {
        let Some(key) = packet.flow_key() else {
            return Content::Other;
        };
        let hash = key.stable_hash();
        if let Some(existing) = self.flows.get(&hash) {
            if *existing != Content::Unknown {
                return *existing;
            }
        }
        // Try to parse an HTTP response head out of the payload; until one is
        // seen the flow stays unknown and follows the default path.
        let content = match packet
            .l4_payload()
            .ok()
            .and_then(|p| HttpResponse::parse(p).ok())
        {
            Some(resp) if resp.is_video() => Content::Video,
            Some(_) => Content::Other,
            None => Content::Unknown,
        };
        if content != Content::Unknown {
            match content {
                Content::Video => self.video_flows += 1,
                Content::Other => self.other_flows += 1,
                Content::Unknown => {}
            }
        }
        self.flows.insert(hash, content);
        content
    }
}

impl NetworkFunction for VideoDetectorNf {
    fn name(&self) -> &str {
        "video-detector"
    }

    fn process(&mut self, packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        match self.classify(packet) {
            // Video flows continue toward the policy engine.
            Content::Video => Verdict::Default,
            // Unknown flows (no HTTP head seen yet) also follow the default
            // path so the policy engine sees them.
            Content::Unknown => Verdict::Default,
            // Anything else bypasses the video pipeline.
            Content::Other => self.bypass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::http::response_with_content_type;
    use sdnfv_proto::packet::PacketBuilder;

    fn response_packet(content_type: &str, src_port: u16) -> Packet {
        PacketBuilder::tcp()
            .src_port(src_port)
            .dst_port(34000)
            .payload(&response_with_content_type(200, content_type))
            .build()
    }

    #[test]
    fn video_flows_follow_default_path() {
        let mut nf = VideoDetectorNf::new(Verdict::ToPort(1));
        let mut ctx = NfContext::new(0);
        let pkt = response_packet("video/mp4", 80);
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::Default);
        assert_eq!(nf.video_flows(), 1);
        assert_eq!(nf.other_flows(), 0);
    }

    #[test]
    fn non_video_flows_bypass() {
        let mut nf = VideoDetectorNf::new(Verdict::ToPort(1));
        let mut ctx = NfContext::new(0);
        let pkt = response_packet("text/html", 80);
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::ToPort(1));
        assert_eq!(nf.other_flows(), 1);
        // Later packets of the same flow keep bypassing even without headers.
        let data = PacketBuilder::tcp()
            .src_port(80)
            .dst_port(34000)
            .payload(b"<html>...")
            .build();
        assert_eq!(nf.process(&data, &mut ctx), Verdict::ToPort(1));
    }

    #[test]
    fn classification_sticks_once_learned() {
        let mut nf = VideoDetectorNf::new(Verdict::ToPort(1));
        let mut ctx = NfContext::new(0);
        // First packet has no HTTP head: unknown, follows default.
        let ack = PacketBuilder::tcp().src_port(81).dst_port(34001).build();
        assert_eq!(nf.process(&ack, &mut ctx), Verdict::Default);
        // Second packet carries the video header: flow becomes video.
        let head = response_packet("video/webm", 81);
        assert_eq!(nf.process(&head, &mut ctx), Verdict::Default);
        assert_eq!(nf.video_flows(), 1);
        // Subsequent payload packets of the flow stay on the default path.
        let data = PacketBuilder::tcp()
            .src_port(81)
            .dst_port(34001)
            .payload(&[0u8; 700])
            .build();
        assert_eq!(nf.process(&data, &mut ctx), Verdict::Default);
    }

    #[test]
    fn non_ip_traffic_bypasses() {
        let mut nf = VideoDetectorNf::new(Verdict::Discard);
        let mut ctx = NfContext::new(0);
        let pkt = Packet::from_bytes(vec![0u8; 30]);
        assert_eq!(nf.process(&pkt, &mut ctx), Verdict::Discard);
        assert!(nf.read_only());
    }
}
