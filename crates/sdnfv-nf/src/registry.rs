//! A registry mapping service names to NF factories, used by the NFV
//! orchestrator to instantiate network functions on demand.

use std::collections::HashMap;
use std::fmt;

use crate::api::NetworkFunction;

type Factory = Box<dyn Fn() -> Box<dyn NetworkFunction> + Send + Sync>;

/// Maps service names (the names used in service-graph vertices) to factory
/// functions producing fresh NF instances.
///
/// The NFV Orchestrator consults the registry when the SDNFV Application asks
/// it to instantiate a service on a host (paper Figure 2, step 4).
#[derive(Default)]
pub struct NfRegistry {
    factories: HashMap<String, Factory>,
}

impl fmt::Debug for NfRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NfRegistry")
            .field("services", &self.names())
            .finish()
    }
}

impl NfRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        NfRegistry::default()
    }

    /// Registers a factory for `name`, replacing any existing entry.
    pub fn register<F, N>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> N + Send + Sync + 'static,
        N: NetworkFunction + 'static,
    {
        self.factories
            .insert(name.into(), Box::new(move || Box::new(factory())));
    }

    /// Instantiates a fresh NF for `name`, if registered.
    pub fn instantiate(&self, name: &str) -> Option<Box<dyn NetworkFunction>> {
        self.factories.get(name).map(|f| f())
    }

    /// Returns `true` if a factory is registered for `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Registered service names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered factories.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// Returns `true` if no factories are registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfs::noop::NoOpNf;
    use crate::nfs::sampler::SamplerNf;
    use sdnfv_flowtable::ServiceId;

    #[test]
    fn register_and_instantiate() {
        let mut reg = NfRegistry::new();
        assert!(reg.is_empty());
        reg.register("noop", NoOpNf::new);
        reg.register("sampler", || SamplerNf::per_packet(ServiceId::new(1), 10));
        assert_eq!(reg.len(), 2);
        assert!(reg.contains("noop"));
        assert!(!reg.contains("missing"));
        assert_eq!(reg.names(), vec!["noop".to_string(), "sampler".to_string()]);

        let nf = reg.instantiate("noop").unwrap();
        assert_eq!(nf.name(), "noop");
        assert!(reg.instantiate("missing").is_none());
        // Each instantiation is a fresh instance.
        let a = reg.instantiate("sampler").unwrap();
        let b = reg.instantiate("sampler").unwrap();
        assert_eq!(a.name(), b.name());
    }

    #[test]
    fn re_registering_replaces() {
        let mut reg = NfRegistry::new();
        reg.register("svc", NoOpNf::new);
        reg.register("svc", || SamplerNf::per_packet(ServiceId::new(2), 5));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.instantiate("svc").unwrap().name(), "sampler");
        let debug = format!("{reg:?}");
        assert!(debug.contains("svc"));
    }
}
