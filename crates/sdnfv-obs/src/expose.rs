//! Exposition renderers: the merged observability state as
//! Prometheus-compatible text or a single JSON document.
//!
//! Both renderers read only the [`ObsHub`]'s current view — they never
//! drain anything — so rendering is idempotent between
//! [`ObsHub::observe`](crate::ObsHub::observe) calls.

use std::fmt::Write as _;

use sdnfv_telemetry::{HistogramSnapshot, TelemetrySnapshot};

use crate::hub::ObsHub;

/// The cumulative per-shard counters both renderers export, as
/// `(metric name, help text, extractor)` rows. One table keeps the two
/// formats (and their tests) in lockstep.
#[allow(clippy::type_complexity)]
fn counter_rows() -> [(&'static str, &'static str, fn(&TelemetrySnapshot) -> u64); 11] {
    [
        ("received", "packets admitted at ingress", |s| s.received),
        ("transmitted", "packets pushed to egress", |s| s.transmitted),
        ("dropped", "packets dropped", |s| s.dropped),
        (
            "controller_punts",
            "packets punted to the controller",
            |s| s.controller_punts,
        ),
        ("throttled", "injections refused under backpressure", |s| {
            s.throttled
        }),
        (
            "rules_evicted_idle",
            "flow rules evicted by idle timeout",
            |s| s.rules_evicted_idle,
        ),
        (
            "rules_evicted_hard",
            "flow rules evicted by hard timeout",
            |s| s.rules_evicted_hard,
        ),
        (
            "nf_state_scrubbed",
            "per-flow NF state entries scrubbed after eviction",
            |s| s.nf_state_scrubbed,
        ),
        (
            "nf_state_handoffs",
            "per-flow NF state entries handed off from retiring replicas",
            |s| s.nf_state_handoffs,
        ),
        (
            "nf_state_import_drops",
            "migrated NF state payloads dropped at import",
            |s| s.nf_state_import_drops,
        ),
        (
            "spans_dropped",
            "trace spans lost to full trace rings",
            |s| s.spans_dropped,
        ),
    ]
}

/// The quantiles both renderers export per latency stage:
/// `(prometheus quantile label, json percentile key, quantile)`.
const QUANTILES: [(&str, &str, f64); 4] = [
    ("0.5", "p50", 0.5),
    ("0.9", "p90", 0.9),
    ("0.99", "p99", 0.99),
    ("0.999", "p999", 0.999),
];

/// Renders the hub's current view in the Prometheus text exposition
/// format: per-shard cumulative counters, queue gauges, and the merged
/// latency histograms as quantile summaries.
pub fn prometheus_text(obs: &ObsHub) -> String {
    let mut out = String::new();
    let snapshots = obs.telemetry().latest_all();
    for (name, help, get) in counter_rows() {
        let _ = writeln!(out, "# HELP sdnfv_{name}_total {help}");
        let _ = writeln!(out, "# TYPE sdnfv_{name}_total counter");
        for snapshot in &snapshots {
            let _ = writeln!(
                out,
                "sdnfv_{name}_total{{shard=\"{}\"}} {}",
                snapshot.shard,
                get(snapshot)
            );
        }
    }
    let _ = writeln!(out, "# HELP sdnfv_ingress_depth packets queued at ingress");
    let _ = writeln!(out, "# TYPE sdnfv_ingress_depth gauge");
    for snapshot in &snapshots {
        let _ = writeln!(
            out,
            "sdnfv_ingress_depth{{shard=\"{}\"}} {}",
            snapshot.shard, snapshot.ingress_depth
        );
    }
    let _ = writeln!(
        out,
        "# HELP sdnfv_rehome_pen_depth packets parked in re-home pens"
    );
    let _ = writeln!(out, "# TYPE sdnfv_rehome_pen_depth gauge");
    for snapshot in &snapshots {
        let _ = writeln!(
            out,
            "sdnfv_rehome_pen_depth{{shard=\"{}\"}} {}",
            snapshot.shard, snapshot.rehome_pen_depth
        );
    }
    let latency = obs.latency();
    let _ = writeln!(
        out,
        "# HELP sdnfv_latency_ns per-stage packet latency, nanoseconds"
    );
    let _ = writeln!(out, "# TYPE sdnfv_latency_ns summary");
    for (stage, histogram) in latency.stages() {
        for (label, _, q) in QUANTILES {
            let _ = writeln!(
                out,
                "sdnfv_latency_ns{{stage=\"{stage}\",quantile=\"{label}\"}} {}",
                histogram.percentile(q)
            );
        }
        let _ = writeln!(
            out,
            "sdnfv_latency_ns_count{{stage=\"{stage}\"}} {}",
            histogram.count()
        );
    }
    let _ = writeln!(
        out,
        "# HELP sdnfv_trace_spans_collected_total trace spans drained from the data plane"
    );
    let _ = writeln!(out, "# TYPE sdnfv_trace_spans_collected_total counter");
    let _ = writeln!(
        out,
        "sdnfv_trace_spans_collected_total {}",
        obs.spans_collected()
    );
    out
}

fn json_histogram(out: &mut String, histogram: &HistogramSnapshot) {
    let _ = write!(out, "{{\"count\":{}", histogram.count());
    for (_, key, q) in QUANTILES {
        let _ = write!(out, ",\"{key}\":{}", histogram.percentile(q));
    }
    out.push('}');
}

/// Renders the hub's current view as one JSON document:
/// `{"shards": [...], "latency": {...}, "flight_recorder": [...]}`.
/// Hand-rolled (no serde): every value is a number, a string from a fixed
/// vocabulary, or a rendered replay line (escaped).
pub fn json_report(obs: &ObsHub) -> String {
    let mut out = String::from("{\"shards\":[");
    for (index, snapshot) in obs.telemetry().latest_all().iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"shard\":{}", snapshot.shard);
        for (name, _, get) in counter_rows() {
            let _ = write!(out, ",\"{name}\":{}", get(snapshot));
        }
        let _ = write!(out, ",\"ingress_depth\":{}", snapshot.ingress_depth);
        let _ = write!(out, ",\"rehome_pen_depth\":{}", snapshot.rehome_pen_depth);
        out.push('}');
    }
    out.push_str("],\"latency\":{");
    let latency = obs.latency();
    for (index, (stage, histogram)) in latency.stages().iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{stage}\":");
        json_histogram(&mut out, histogram);
    }
    let _ = write!(
        out,
        "}},\"spans_collected\":{},\"flight_recorder\":[",
        obs.spans_collected()
    );
    for (index, line) in obs.recorder().replay().iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push('"');
        for c in line.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_telemetry::{LatencyReport, NfTelemetry};

    fn hub_with_snapshot() -> ObsHub {
        let mut latency = LatencyReport::default();
        let hist = sdnfv_telemetry::LatencyHistogram::new();
        for v in [100, 200, 300, 4_000] {
            hist.record(v);
        }
        latency.end_to_end = hist.snapshot();
        let snapshot = TelemetrySnapshot {
            shard: 0,
            seq: 1,
            at_ns: 1_000,
            ingress_depth: 3,
            ingress_capacity: 64,
            egress_depth: 0,
            egress_capacity: 64,
            credits_in_flight: 0,
            credit_capacity: 64,
            nfs: Vec::<NfTelemetry>::new(),
            nf_slots_allocated: 0,
            received: 42,
            transmitted: 40,
            dropped: 1,
            controller_punts: 1,
            throttled: 0,
            applied_commands: 0,
            rehome_pen_depth: 2,
            rehome_pen_max_age_ns: 0,
            rules_evicted_idle: 7,
            rules_evicted_hard: 2,
            nf_state_scrubbed: 5,
            nf_state_handoffs: 4,
            nf_state_import_drops: 1,
            spans_dropped: 3,
            latency,
        };
        let mut obs = ObsHub::new();
        obs.absorb_snapshots(vec![snapshot]);
        obs
    }

    #[test]
    fn prometheus_text_exports_every_counter_and_quantiles() {
        let obs = hub_with_snapshot();
        let text = prometheus_text(&obs);
        for (name, _, _) in counter_rows() {
            assert!(
                text.contains(&format!("sdnfv_{name}_total{{shard=\"0\"}}")),
                "missing counter {name}\n{text}"
            );
        }
        assert!(text.contains("sdnfv_nf_state_handoffs_total{shard=\"0\"} 4"));
        assert!(text.contains("sdnfv_nf_state_import_drops_total{shard=\"0\"} 1"));
        assert!(text.contains("sdnfv_spans_dropped_total{shard=\"0\"} 3"));
        assert!(text.contains("sdnfv_latency_ns{stage=\"end_to_end\",quantile=\"0.5\"}"));
        assert!(text.contains("sdnfv_latency_ns_count{stage=\"end_to_end\"} 4"));
    }

    #[test]
    fn json_report_is_balanced_and_carries_percentiles() {
        let obs = hub_with_snapshot();
        let json = json_report(&obs);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert!(json.contains("\"nf_state_handoffs\":4"));
        assert!(json.contains("\"spans_dropped\":3"));
        assert!(json.contains("\"end_to_end\":{\"count\":4"));
        assert!(json.contains("\"p999\":"));
    }
}
