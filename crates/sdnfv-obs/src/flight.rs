//! The control-plane flight recorder: a bounded, sequenced journal of
//! everything the control plane did to the data plane — elastic actions,
//! shard lifecycle transitions, bucket re-home steps, and eviction sweeps —
//! replayable in order after an incident.
//!
//! Every record carries a monotonic sequence number and, where the
//! recorder can tell, a **cause link**: the sequence number of the control
//! action that set the event in motion (a `SpawnShard` causes the bucket
//! re-homes that follow it; a `RetireShard` causes the shard's `Retired`
//! event). Replaying the journal therefore reads as a causal narrative,
//! not just a flat event list.

use std::collections::VecDeque;

use sdnfv_dataplane::{RehomeEvent, RehomeStep};
use sdnfv_telemetry::{ControlAction, ShardLifecycleEvent};

/// Journal capacity used by [`FlightRecorder::new`].
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// What one [`FlightRecord`] witnessed.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEvent {
    /// The elastic control plane issued an action.
    Action(ControlAction),
    /// A pipeline shard came up.
    ShardSpawned {
        /// The new shard's index.
        shard: usize,
    },
    /// A pipeline shard finished draining and was torn down.
    ShardRetired {
        /// The retired shard's (former) index.
        shard: usize,
    },
    /// A steering bucket was parked and began its re-home drain.
    RehomeBegun {
        /// The bucket being moved.
        bucket: usize,
        /// Source shard.
        from: usize,
        /// Destination shard.
        to: usize,
    },
    /// A steering bucket finished its re-home (pen drained into the
    /// destination).
    RehomeCompleted {
        /// The bucket that moved.
        bucket: usize,
        /// Source shard.
        from: usize,
        /// Destination shard.
        to: usize,
    },
    /// A shard's timeout sweep evicted rules since the previous telemetry
    /// snapshot (deltas, not cumulative totals).
    EvictionSweep {
        /// The sweeping shard.
        shard: usize,
        /// Rules evicted by idle timeout in the interval.
        idle: u64,
        /// Rules evicted by hard timeout in the interval.
        hard: u64,
        /// NF per-flow state entries scrubbed in the interval.
        scrubbed: u64,
    },
}

impl std::fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlightEvent::Action(action) => write!(f, "action: {action}"),
            FlightEvent::ShardSpawned { shard } => write!(f, "shard {shard} spawned"),
            FlightEvent::ShardRetired { shard } => write!(f, "shard {shard} retired"),
            FlightEvent::RehomeBegun { bucket, from, to } => {
                write!(f, "bucket {bucket} re-home begun {from} -> {to}")
            }
            FlightEvent::RehomeCompleted { bucket, from, to } => {
                write!(f, "bucket {bucket} re-home completed {from} -> {to}")
            }
            FlightEvent::EvictionSweep {
                shard,
                idle,
                hard,
                scrubbed,
            } => write!(
                f,
                "shard {shard} evicted {idle} idle + {hard} hard rules, scrubbed {scrubbed} NF states"
            ),
        }
    }
}

/// One journal entry: a sequenced, timestamped event with an optional
/// cause link to the control action that triggered it.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotonic journal sequence number (never reused, survives eviction
    /// of older records).
    pub seq: u64,
    /// Host-clock nanoseconds when the event happened.
    pub at_ns: u64,
    /// Sequence number of the control-action record that caused this
    /// event, when the recorder can attribute one.
    pub cause: Option<u64>,
    /// The event itself.
    pub event: FlightEvent,
}

impl FlightRecord {
    /// One replay line: `#seq t=<ns> [caused-by #seq] <event>`.
    pub fn replay_line(&self) -> String {
        match self.cause {
            Some(cause) => format!(
                "#{seq} t={at}ns [caused-by #{cause}] {event}",
                seq = self.seq,
                at = self.at_ns,
                event = self.event
            ),
            None => format!(
                "#{seq} t={at}ns {event}",
                seq = self.seq,
                at = self.at_ns,
                event = self.event
            ),
        }
    }
}

/// A bounded ring journal of control-plane events. When full, the oldest
/// record is evicted (and counted) — sequence numbers keep climbing, so a
/// gap at the front of a replay is visible, never silent.
#[derive(Debug)]
pub struct FlightRecorder {
    records: VecDeque<FlightRecord>,
    capacity: usize,
    next_seq: u64,
    evicted: u64,
    /// The most recent re-home-triggering action (`SpawnShard`,
    /// `RetireShard`, `SetSteeringWeights`): the cause link stamped onto
    /// subsequent re-home and lifecycle records.
    last_topology_action: Option<u64>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default capacity.
    pub fn new() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A recorder holding at most `capacity` records (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
            evicted: 0,
            last_topology_action: None,
        }
    }

    fn push(&mut self, at_ns: u64, cause: Option<u64>, event: FlightEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(FlightRecord {
            seq,
            at_ns,
            cause,
            event,
        });
        seq
    }

    /// Journals one control action, remembering it as the cause of
    /// subsequent topology events when it moves buckets or shards.
    pub fn record_action(&mut self, at_ns: u64, action: &ControlAction) {
        let topology = matches!(
            action,
            ControlAction::SpawnShard
                | ControlAction::RetireShard { .. }
                | ControlAction::SetSteeringWeights { .. }
        );
        let seq = self.push(at_ns, None, FlightEvent::Action(action.clone()));
        if topology {
            self.last_topology_action = Some(seq);
        }
    }

    /// Journals a shard lifecycle transition, cause-linked to the last
    /// topology action.
    pub fn record_lifecycle(&mut self, event: &ShardLifecycleEvent) {
        let (at_ns, flight) = match event {
            ShardLifecycleEvent::Spawned { shard, at_ns } => {
                (*at_ns, FlightEvent::ShardSpawned { shard: *shard })
            }
            ShardLifecycleEvent::Retired { shard, at_ns } => {
                (*at_ns, FlightEvent::ShardRetired { shard: *shard })
            }
        };
        let cause = self.last_topology_action;
        self.push(at_ns, cause, flight);
    }

    /// Journals one bucket re-home step, cause-linked to the last topology
    /// action.
    pub fn record_rehome(&mut self, event: &RehomeEvent) {
        let flight = match event.step {
            RehomeStep::Begun => FlightEvent::RehomeBegun {
                bucket: event.bucket,
                from: event.from,
                to: event.to,
            },
            RehomeStep::Completed => FlightEvent::RehomeCompleted {
                bucket: event.bucket,
                from: event.from,
                to: event.to,
            },
        };
        let cause = self.last_topology_action;
        self.push(event.at_ns, cause, flight);
    }

    /// Journals an eviction sweep delta (no cause: sweeps are autonomous).
    pub fn record_evictions(
        &mut self,
        at_ns: u64,
        shard: usize,
        idle: u64,
        hard: u64,
        scrubbed: u64,
    ) {
        self.push(
            at_ns,
            None,
            FlightEvent::EvictionSweep {
                shard,
                idle,
                hard,
                scrubbed,
            },
        );
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been journaled (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted to make room (the replay gap at the front).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Renders the journal as replay lines, oldest first; the first line
    /// flags any eviction gap.
    pub fn replay(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.records.len() + 1);
        if self.evicted > 0 {
            lines.push(format!(
                "... {} older records evicted (capacity {})",
                self.evicted, self.capacity
            ));
        }
        lines.extend(self.records.iter().map(FlightRecord::replay_line));
        lines
    }

    /// Order-sensitive digest of the journal (for determinism checks):
    /// FNV-1a over every record's sequence, timestamp, cause and rendered
    /// event text.
    pub fn digest(&self) -> u64 {
        fn fold_bytes(hash: u64, bytes: &[u8]) -> u64 {
            bytes.iter().fold(hash, |h, byte| {
                (h ^ u64::from(*byte)).wrapping_mul(0x1000_0000_01b3)
            })
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for record in &self.records {
            hash = fold_bytes(hash, &record.seq.to_le_bytes());
            hash = fold_bytes(hash, &record.at_ns.to_le_bytes());
            hash = fold_bytes(hash, &record.cause.map_or(u64::MAX, |c| c).to_le_bytes());
            hash = fold_bytes(hash, record.event.to_string().as_bytes());
        }
        hash = fold_bytes(hash, &self.evicted.to_le_bytes());
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_monotonic_and_survive_eviction() {
        let mut rec = FlightRecorder::with_capacity(2);
        for i in 0..5u64 {
            rec.record_evictions(i, 0, 1, 0, 0);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.evicted(), 3);
        let seqs: Vec<u64> = rec.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        let replay = rec.replay();
        assert_eq!(replay.len(), 3, "gap line + two records");
        assert!(replay[0].contains("3 older records evicted"));
    }

    #[test]
    fn topology_actions_cause_link_rehomes_and_lifecycle() {
        let mut rec = FlightRecorder::new();
        rec.record_action(10, &ControlAction::SetTraceSampling { every: 8 });
        rec.record_action(20, &ControlAction::SpawnShard);
        rec.record_lifecycle(&ShardLifecycleEvent::Spawned {
            shard: 1,
            at_ns: 25,
        });
        rec.record_rehome(&RehomeEvent {
            at_ns: 30,
            bucket: 7,
            from: 0,
            to: 1,
            step: RehomeStep::Begun,
        });
        rec.record_rehome(&RehomeEvent {
            at_ns: 40,
            bucket: 7,
            from: 0,
            to: 1,
            step: RehomeStep::Completed,
        });
        let records: Vec<&FlightRecord> = rec.records().collect();
        assert_eq!(records[0].cause, None, "sampling knob is not topology");
        assert_eq!(records[1].cause, None, "actions are roots");
        // Spawned + both re-home steps point at the SpawnShard record.
        assert_eq!(records[2].cause, Some(records[1].seq));
        assert_eq!(records[3].cause, Some(records[1].seq));
        assert_eq!(records[4].cause, Some(records[1].seq));
        assert!(records[4]
            .replay_line()
            .contains("bucket 7 re-home completed 0 -> 1"));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = FlightRecorder::new();
        let mut b = FlightRecorder::new();
        a.record_evictions(1, 0, 1, 0, 0);
        a.record_evictions(2, 1, 0, 1, 0);
        b.record_evictions(2, 1, 0, 1, 0);
        b.record_evictions(1, 0, 1, 0, 0);
        assert_ne!(a.digest(), b.digest());
    }
}
