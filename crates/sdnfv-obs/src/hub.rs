//! [`ObsHub`]: the one-stop observability consumer for a running
//! [`ThreadedHost`] — merged telemetry, collected trace spans, and the
//! control-plane flight recorder, drained together in one call.

use std::collections::HashMap;

use sdnfv_dataplane::runtime::ThreadedHost;
use sdnfv_proto::flow::FlowKey;
use sdnfv_telemetry::{
    ControlAction, LatencyReport, TelemetryHub, TelemetrySnapshot, TraceSpan, TraceStage,
};

use crate::flight::FlightRecorder;

/// How many trace spans [`ObsHub`] retains between [`ObsHub::take_spans`]
/// drains before counting further spans as shed.
pub const SPAN_BUFFER_CAP: usize = 65_536;

/// How many distinct flows the hub's hash → 5-tuple registry retains;
/// beyond this, new flows are counted as shed rather than registered.
pub const FLOW_KEY_CAP: usize = 262_144;

/// Per-shard eviction counters at the last observation, for computing the
/// sweep deltas the flight recorder journals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct EvictionWatermark {
    idle: u64,
    hard: u64,
    scrubbed: u64,
}

/// Aggregates everything the data plane exports about itself:
///
/// * **telemetry** — per-shard [`TelemetrySnapshot`](sdnfv_telemetry::TelemetrySnapshot)s
///   merged by an inner [`TelemetryHub`] (queue gauges, rates, cumulative
///   counters, latency histograms);
/// * **traces** — sampled per-packet [`TraceSpan`]s, buffered for a
///   consumer with per-stage counts;
/// * **flight recorder** — a sequenced journal of control actions, shard
///   lifecycle, bucket re-homes and eviction sweeps.
///
/// One [`ObsHub::observe`] call drains all of the host's feeds in a fixed
/// order, so under a virtual clock two identical runs observe identically.
#[derive(Debug)]
pub struct ObsHub {
    hub: TelemetryHub,
    recorder: FlightRecorder,
    spans: Vec<TraceSpan>,
    spans_shed: u64,
    spans_collected: u64,
    spans_by_stage: [u64; 4],
    eviction_marks: Vec<EvictionWatermark>,
    flow_keys: HashMap<u64, FlowKey>,
    flow_keys_shed: u64,
}

impl Default for ObsHub {
    fn default() -> Self {
        ObsHub::new()
    }
}

impl ObsHub {
    /// An empty hub.
    pub fn new() -> Self {
        ObsHub {
            hub: TelemetryHub::new(),
            recorder: FlightRecorder::new(),
            spans: Vec::new(),
            spans_shed: 0,
            spans_collected: 0,
            spans_by_stage: [0; 4],
            eviction_marks: Vec::new(),
            flow_keys: HashMap::new(),
            flow_keys_shed: 0,
        }
    }

    /// Drains every observability feed of `host` once, in a fixed order:
    /// shard lifecycle events (journaled, then applied to the telemetry
    /// view), bucket re-home steps (journaled), telemetry snapshots
    /// (merged; eviction-sweep deltas journaled), and trace spans
    /// (buffered). Call it from the same loop that drives the host.
    pub fn observe(&mut self, host: &ThreadedHost) {
        let lifecycle = host.take_shard_events();
        for event in &lifecycle {
            self.recorder.record_lifecycle(event);
        }
        self.hub.observe_lifecycle(&lifecycle);
        for event in host.take_rehome_events() {
            self.recorder.record_rehome(&event);
        }
        self.absorb_snapshots(host.poll_telemetry());
        self.absorb_spans(host.poll_traces());
    }

    /// Merges a batch of telemetry snapshots into the view, journaling an
    /// eviction-sweep record for every shard whose cumulative eviction
    /// counters advanced since the last batch. Usable directly when the
    /// snapshots come from somewhere other than a live host (a replayed
    /// trace, a faulty-source adapter).
    pub fn absorb_snapshots(&mut self, snapshots: Vec<TelemetrySnapshot>) {
        for snapshot in &snapshots {
            let shard = snapshot.shard;
            if shard >= self.eviction_marks.len() {
                self.eviction_marks
                    .resize(shard + 1, EvictionWatermark::default());
            }
            let mark = &mut self.eviction_marks[shard];
            // Counters are cumulative per shard; a snapshot below the
            // watermark means the shard slot was reused by a fresh
            // incarnation, whose counters restart from zero.
            if snapshot.rules_evicted_idle < mark.idle
                || snapshot.rules_evicted_hard < mark.hard
                || snapshot.nf_state_scrubbed < mark.scrubbed
            {
                *mark = EvictionWatermark::default();
            }
            let idle = snapshot.rules_evicted_idle - mark.idle;
            let hard = snapshot.rules_evicted_hard - mark.hard;
            let scrubbed = snapshot.nf_state_scrubbed - mark.scrubbed;
            if idle > 0 || hard > 0 || scrubbed > 0 {
                self.recorder
                    .record_evictions(snapshot.at_ns, shard, idle, hard, scrubbed);
                *mark = EvictionWatermark {
                    idle: snapshot.rules_evicted_idle,
                    hard: snapshot.rules_evicted_hard,
                    scrubbed: snapshot.nf_state_scrubbed,
                };
            }
        }
        self.hub.absorb(snapshots);
    }

    /// Buffers a batch of trace spans (bounded by [`SPAN_BUFFER_CAP`]) and
    /// updates the per-stage tallies.
    pub fn absorb_spans(&mut self, spans: Vec<TraceSpan>) {
        for span in spans {
            self.spans_collected += 1;
            self.spans_by_stage[span.stage as usize] += 1;
            if self.spans.len() < SPAN_BUFFER_CAP {
                self.spans.push(span);
            } else {
                self.spans_shed += 1;
            }
        }
    }

    /// Registers a flow's 5-tuple under its stable hash, so a
    /// [`TraceSpan`]'s `flow_hash` can be joined back to the concrete flow
    /// it belongs to. Call it wherever the key is in hand anyway — an
    /// injection path, a wire hand-off — it is idempotent per flow. Bounded
    /// by [`FLOW_KEY_CAP`]; flows beyond the cap are counted as shed.
    pub fn record_flow(&mut self, key: &FlowKey) {
        let hash = key.stable_hash();
        if self.flow_keys.contains_key(&hash) {
            return;
        }
        if self.flow_keys.len() >= FLOW_KEY_CAP {
            self.flow_keys_shed += 1;
            return;
        }
        self.flow_keys.insert(hash, *key);
    }

    /// The 5-tuple registered under `hash`, if the flow has been recorded.
    pub fn key_for_hash(&self, hash: u64) -> Option<&FlowKey> {
        self.flow_keys.get(&hash)
    }

    /// Joins a span back to its flow's 5-tuple: `None` for unrecorded (or
    /// untraced, `flow_hash == 0`) flows.
    pub fn resolve_span(&self, span: &TraceSpan) -> Option<&FlowKey> {
        if span.flow_hash == 0 {
            return None;
        }
        self.key_for_hash(span.flow_hash)
    }

    /// Distinct flows currently registered in the hash → key map.
    pub fn flows_recorded(&self) -> usize {
        self.flow_keys.len()
    }

    /// Flows that could not be registered because the registry was full.
    pub fn flow_keys_shed(&self) -> u64 {
        self.flow_keys_shed
    }

    /// Journals control actions the caller's elastic loop issued this tick
    /// (pass the return value of
    /// [`ElasticNfManager::drive`](../../sdnfv_control/elastic/struct.ElasticNfManager.html#method.drive)).
    pub fn record_actions(&mut self, at_ns: u64, actions: &[ControlAction]) {
        for action in actions {
            self.recorder.record_action(at_ns, action);
        }
    }

    /// The merged telemetry view.
    pub fn telemetry(&self) -> &TelemetryHub {
        &self.hub
    }

    /// The control-plane journal.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Mutable access to the journal (to record events the hub cannot see
    /// itself, or to drain it).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.recorder
    }

    /// Merged latency distributions across every live shard.
    pub fn latency(&self) -> LatencyReport {
        self.hub.merged_latency()
    }

    /// Takes the buffered trace spans, oldest first.
    pub fn take_spans(&mut self) -> Vec<TraceSpan> {
        std::mem::take(&mut self.spans)
    }

    /// Spans collected over the hub's lifetime (buffered or shed).
    pub fn spans_collected(&self) -> u64 {
        self.spans_collected
    }

    /// Spans collected for `stage` over the hub's lifetime.
    pub fn spans_for_stage(&self, stage: TraceStage) -> u64 {
        self.spans_by_stage[stage as usize]
    }

    /// Spans shed because the hub's buffer was full (distinct from the
    /// data plane's own `spans_dropped`, which counts ring overflow).
    pub fn spans_shed(&self) -> u64 {
        self.spans_shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_telemetry::{NfTelemetry, TelemetrySnapshot};

    fn snapshot(shard: usize, seq: u64, idle: u64, hard: u64, scrubbed: u64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            shard,
            seq,
            at_ns: seq * 1_000,
            ingress_depth: 0,
            ingress_capacity: 64,
            egress_depth: 0,
            egress_capacity: 64,
            credits_in_flight: 0,
            credit_capacity: 64,
            nfs: Vec::<NfTelemetry>::new(),
            nf_slots_allocated: 0,
            received: 0,
            transmitted: 0,
            dropped: 0,
            controller_punts: 0,
            throttled: 0,
            applied_commands: 0,
            rehome_pen_depth: 0,
            rehome_pen_max_age_ns: 0,
            rules_evicted_idle: idle,
            rules_evicted_hard: hard,
            nf_state_scrubbed: scrubbed,
            nf_state_handoffs: 0,
            nf_state_import_drops: 0,
            spans_dropped: 0,
            latency: LatencyReport::default(),
        }
    }

    #[test]
    fn eviction_sweeps_journal_deltas_not_totals() {
        let mut hub = ObsHub::new();
        hub.absorb_snapshots(vec![snapshot(0, 1, 0, 0, 0)]);
        assert!(hub.recorder().is_empty(), "no evictions, no record");
        hub.absorb_snapshots(vec![snapshot(0, 2, 5, 1, 3)]);
        hub.absorb_snapshots(vec![snapshot(0, 3, 7, 1, 3)]);
        let lines = hub.recorder().replay();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("evicted 5 idle + 1 hard rules, scrubbed 3"));
        assert!(lines[1].contains("evicted 2 idle + 0 hard rules, scrubbed 0"));
    }

    #[test]
    fn reused_shard_slot_resets_the_watermark() {
        let mut hub = ObsHub::new();
        hub.absorb_snapshots(vec![snapshot(0, 5, 10, 0, 0)]);
        // A fresh incarnation restarts its counters below the watermark.
        hub.absorb_snapshots(vec![snapshot(0, 6, 2, 0, 0)]);
        let lines = hub.recorder().replay();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("evicted 2 idle"));
    }

    #[test]
    fn spans_join_back_to_recorded_flow_keys() {
        use sdnfv_proto::flow::IpProtocol;
        use std::net::Ipv4Addr;
        let mut hub = ObsHub::new();
        let key = FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4242,
            80,
            IpProtocol::Udp,
        );
        hub.record_flow(&key);
        hub.record_flow(&key);
        assert_eq!(hub.flows_recorded(), 1, "idempotent per flow");
        let span = |flow_hash: u64| TraceSpan {
            shard: 0,
            stage: TraceStage::Rx,
            service: 0,
            flow_hash,
            t_start_ns: 0,
            t_end_ns: 1,
            verdict: sdnfv_telemetry::SpanVerdict::Forwarded,
        };
        assert_eq!(hub.resolve_span(&span(key.stable_hash())), Some(&key));
        assert_eq!(hub.resolve_span(&span(0)), None, "untraced never joins");
        assert_eq!(hub.resolve_span(&span(1)), None, "unknown hash");
        assert_eq!(hub.flow_keys_shed(), 0);
    }

    #[test]
    fn span_buffer_tallies_by_stage_and_sheds_at_cap() {
        let mut hub = ObsHub::new();
        let span = |stage: TraceStage| TraceSpan {
            shard: 0,
            stage,
            service: 0,
            flow_hash: 1,
            t_start_ns: 0,
            t_end_ns: 1,
            verdict: sdnfv_telemetry::SpanVerdict::Forwarded,
        };
        hub.absorb_spans(vec![
            span(TraceStage::Rx),
            span(TraceStage::Rx),
            span(TraceStage::Egress),
        ]);
        assert_eq!(hub.spans_collected(), 3);
        assert_eq!(hub.spans_for_stage(TraceStage::Rx), 2);
        assert_eq!(hub.spans_for_stage(TraceStage::Egress), 1);
        assert_eq!(hub.spans_shed(), 0);
        assert_eq!(hub.take_spans().len(), 3);
        assert!(hub.take_spans().is_empty(), "take drains the buffer");
    }
}
