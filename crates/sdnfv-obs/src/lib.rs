//! End-to-end observability for the SDNFV data plane.
//!
//! Three feeds, one consumer:
//!
//! * **Latency histograms** — every shard worker records ingress wait, NF
//!   service time, egress wait, pen dwell and end-to-end latency into
//!   lock-free [`LatencyHistogram`](sdnfv_telemetry::LatencyHistogram)s,
//!   published through the telemetry rings; merging per-shard snapshots is
//!   exact, so whole-host p50/p99/p999 are true percentiles of the union.
//! * **Sampled flow tracing** — one in N flows (controller-settable via
//!   [`ControlAction::SetTraceSampling`](sdnfv_telemetry::ControlAction),
//!   plus per-flow pins via the `Trace` rule action) emits a compact
//!   [`TraceSpan`](sdnfv_telemetry::TraceSpan) at every pipeline stage,
//!   over lossy per-shard rings with explicit drop accounting.
//! * **Control-plane flight recorder** — a bounded, sequenced,
//!   cause-linked journal of control actions, shard lifecycle, bucket
//!   re-homes and eviction sweeps, replayable in order.
//!
//! [`ObsHub`] drains all three from a running
//! [`ThreadedHost`](sdnfv_dataplane::ThreadedHost) in one call;
//! [`prometheus_text`] and [`json_report`] render the merged view.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod expose;
pub mod flight;
pub mod hub;

pub use expose::{json_report, prometheus_text};
pub use flight::{FlightEvent, FlightRecord, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use hub::{ObsHub, FLOW_KEY_CAP, SPAN_BUFFER_CAP};
