//! The SDNFV NF placement engine (paper §3.5, Figure 5).
//!
//! Given a network topology, a set of service types and a set of flows that
//! each need a chain of services, the placement engine decides how many
//! instances of each service run on which node and how every flow is routed
//! through its chain, minimizing the maximum utilization `U` of links and
//! CPU cores — the objective of the paper's MILP formulation (Table 1).
//!
//! Three solvers are provided, matching the algorithms compared in Figure 5:
//!
//! * [`GreedySolver`](solvers::GreedySolver) — the paper's greedy baseline:
//!   walk the flow's shortest path and put services on the first node with a
//!   free core;
//! * [`OptimalSolver`](solvers::OptimalSolver) — the stand-in for solving
//!   the MILP exactly: per-flow min-max dynamic programming combined with
//!   iterated reassignment until no flow can improve the objective (see
//!   DESIGN.md for why this substitution preserves the Figure 5 comparison);
//! * [`DivisionSolver`](solvers::DivisionSolver) — the paper's Division
//!   Heuristic: split the flows into small sub-problems, solve each with the
//!   optimal solver, commit the resources, and continue.
//!
//! The [`model`] module defines the problem (topology, services, flows) and
//! the [`solution`] module defines placements, routing, the utilization
//! metrics and a validator checking every MILP constraint.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod model;
pub mod solution;
pub mod solvers;
pub mod topology;

pub use model::{FlowSpec, PlacementProblem, ServiceSpec};
pub use solution::{Placement, PlacementError, UtilizationReport};
pub use solvers::{DivisionSolver, GreedySolver, OptimalSolver, PlacementSolver};
pub use topology::{NodeId, Topology};
