//! The placement problem: services, flows, and the MILP's parameters.

use serde::{Deserialize, Serialize};

use sdnfv_flowtable::ServiceId;

use crate::topology::{NodeId, Topology};

/// A service type that can be instantiated on nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// The service identity (matches service-graph vertices).
    pub id: ServiceId,
    /// Human-readable name.
    pub name: String,
    /// Maximum number of flows one CPU core running this service can handle
    /// (the MILP's `P_ij`, identical across nodes here).
    pub flows_per_core: u32,
}

impl ServiceSpec {
    /// Creates a service spec.
    pub fn new(id: ServiceId, name: impl Into<String>, flows_per_core: u32) -> Self {
        ServiceSpec {
            id,
            name: name.into(),
            flows_per_core,
        }
    }
}

/// One flow that must be routed through a chain of services.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Flow identifier (dense, used for indexing).
    pub id: usize,
    /// Node where the flow enters the network (the MILP's `I_k`).
    pub ingress: NodeId,
    /// Node where the flow leaves the network (the MILP's `E_k`).
    pub egress: NodeId,
    /// Bandwidth the flow consumes on every link it crosses (`B_k`).
    pub bandwidth: f64,
    /// Maximum tolerable end-to-end delay (`T_k`).
    pub max_delay: f64,
    /// The service chain the flow must traverse, in order.
    pub chain: Vec<ServiceId>,
}

/// A complete placement problem instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementProblem {
    /// The network.
    pub topology: Topology,
    /// The service types.
    pub services: Vec<ServiceSpec>,
    /// The flows to place.
    pub flows: Vec<FlowSpec>,
}

impl PlacementProblem {
    /// Looks up a service spec by id.
    pub fn service(&self, id: ServiceId) -> Option<&ServiceSpec> {
        self.services.iter().find(|s| s.id == id)
    }

    /// The paper's Figure 5 configuration: a 22-node / 64-edge topology with
    /// 2 cores per node, a 5-service chain J1–J5 where J1–J4 support 10
    /// flows per core and J5 supports 4, and `flow_count` unit-bandwidth
    /// flows between pseudo-random (but deterministic) endpoints.
    pub fn paper_figure5(flow_count: usize, capacity_scale: f64, seed: u64) -> PlacementProblem {
        let topology =
            Topology::rocketfuel_like(22, 64, 2, 10.0, 16631).scaled(capacity_scale.max(1.0));
        let services: Vec<ServiceSpec> = (1..=5)
            .map(|j| {
                ServiceSpec::new(
                    ServiceId::new(j),
                    format!("j{j}"),
                    if j == 5 { 4 } else { 10 },
                )
            })
            .collect();
        let chain: Vec<ServiceId> = services.iter().map(|s| s.id).collect();
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let node_count = topology.node_count();
        let flows = (0..flow_count)
            .map(|id| {
                let ingress = (next() % node_count as u64) as usize;
                let mut egress = (next() % node_count as u64) as usize;
                if egress == ingress {
                    egress = (egress + 1) % node_count;
                }
                FlowSpec {
                    id,
                    ingress,
                    egress,
                    bandwidth: 1.0,
                    max_delay: 200.0,
                    chain: chain.clone(),
                }
            })
            .collect();
        PlacementProblem {
            topology,
            services,
            flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_problem_shape() {
        let problem = PlacementProblem::paper_figure5(10, 1.0, 42);
        assert_eq!(problem.topology.node_count(), 22);
        assert_eq!(problem.topology.link_count(), 64);
        assert_eq!(problem.services.len(), 5);
        assert_eq!(problem.flows.len(), 10);
        assert!(problem.flows.iter().all(|f| f.chain.len() == 5));
        assert!(problem.flows.iter().all(|f| f.ingress != f.egress));
        assert_eq!(
            problem.service(ServiceId::new(5)).unwrap().flows_per_core,
            4
        );
        assert_eq!(
            problem.service(ServiceId::new(1)).unwrap().flows_per_core,
            10
        );
        assert!(problem.service(ServiceId::new(9)).is_none());
        // Deterministic.
        let again = PlacementProblem::paper_figure5(10, 1.0, 42);
        assert_eq!(problem.flows, again.flows);
    }

    #[test]
    fn capacity_scaling_increases_cores() {
        let base = PlacementProblem::paper_figure5(1, 1.0, 1);
        let scaled = PlacementProblem::paper_figure5(1, 10.0, 1);
        assert_eq!(
            base.topology.node(0).cores * 10,
            scaled.topology.node(0).cores
        );
    }
}
