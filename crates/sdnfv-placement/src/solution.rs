//! Placement solutions: flow assignments, routing, utilization accounting
//! and constraint validation.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use sdnfv_flowtable::ServiceId;

use crate::model::{FlowSpec, PlacementProblem};
use crate::topology::NodeId;

/// Where one flow's chain was placed and how it is routed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowAssignment {
    /// The node hosting each position of the flow's service chain.
    pub nodes: Vec<NodeId>,
    /// Link-index paths for each segment of the route:
    /// `ingress → nodes[0]`, `nodes[0] → nodes[1]`, …, `nodes.last → egress`
    /// (`chain.len() + 1` segments; empty segments mean "same node").
    pub route: Vec<Vec<usize>>,
}

/// A placement of all flows; unplaced (rejected) flows are `None`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Per-flow assignments, indexed by `FlowSpec::id`.
    pub assignments: Vec<Option<FlowAssignment>>,
}

/// Constraint violations found by [`Placement::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The assignment has the wrong number of nodes or route segments.
    MalformedAssignment {
        /// The flow concerned.
        flow: usize,
    },
    /// A route segment does not connect the expected pair of nodes.
    RouteDisconnected {
        /// The flow concerned.
        flow: usize,
        /// The segment index.
        segment: usize,
    },
    /// The flow's end-to-end delay exceeds its tolerance (MILP eq. 6).
    DelayExceeded {
        /// The flow concerned.
        flow: usize,
        /// Achieved delay.
        delay: f64,
        /// Allowed delay.
        limit: f64,
    },
    /// A node needs more cores than it has (MILP eq. 1).
    CoreCapacityExceeded {
        /// The node concerned.
        node: NodeId,
        /// Cores required by the placement.
        required: u32,
        /// Cores available.
        available: u32,
    },
}

/// The utilization metrics the MILP minimizes (its objective `U`), plus the
/// derived instance counts.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// Highest link utilization (load / capacity) over all links.
    pub max_link_utilization: f64,
    /// Highest per-core utilization over all (node, service) instances.
    pub max_core_utilization: f64,
    /// The MILP objective: `max(max_link_utilization, max_core_utilization)`.
    pub max_utilization: f64,
    /// Number of flows that received an assignment.
    pub placed_flows: usize,
    /// Derived `M_ij`: cores (instances) used per node and service.
    pub instances: HashMap<(NodeId, ServiceId), u32>,
    /// Total cores used per node.
    pub cores_used: Vec<u32>,
}

/// Incremental accounting of the load a set of placed flows puts on the
/// network, shared by the solvers and by [`Placement::utilization`].
#[derive(Debug, Clone)]
pub struct LoadTracker {
    /// Flows assigned to (node, service).
    pub flows_on: HashMap<(NodeId, ServiceId), u32>,
    /// Cores used per node (derived from `flows_on`).
    pub cores_used: Vec<u32>,
    /// Bandwidth load per link.
    pub link_load: Vec<f64>,
}

impl LoadTracker {
    /// Creates an empty tracker for the problem's topology.
    pub fn new(problem: &PlacementProblem) -> Self {
        LoadTracker {
            flows_on: HashMap::new(),
            cores_used: vec![0; problem.topology.node_count()],
            link_load: vec![0.0; problem.topology.link_count()],
        }
    }

    /// Cores needed for `flows` flows of a service handling `per_core` flows
    /// per core.
    pub fn cores_for(flows: u32, per_core: u32) -> u32 {
        if flows == 0 {
            0
        } else {
            flows.div_ceil(per_core.max(1))
        }
    }

    /// Applies a flow's assignment to the tracker.
    pub fn apply(&mut self, problem: &PlacementProblem, flow: &FlowSpec, asg: &FlowAssignment) {
        for (position, node) in asg.nodes.iter().enumerate() {
            let service = flow.chain[position];
            let per_core = problem
                .service(service)
                .map(|s| s.flows_per_core)
                .unwrap_or(1);
            let count = self.flows_on.entry((*node, service)).or_insert(0);
            let before = Self::cores_for(*count, per_core);
            *count += 1;
            let after = Self::cores_for(*count, per_core);
            self.cores_used[*node] += after - before;
        }
        for segment in &asg.route {
            for link in segment {
                self.link_load[*link] += flow.bandwidth;
            }
        }
    }

    /// Removes a previously applied assignment (used by local search).
    pub fn remove(&mut self, problem: &PlacementProblem, flow: &FlowSpec, asg: &FlowAssignment) {
        for (position, node) in asg.nodes.iter().enumerate() {
            let service = flow.chain[position];
            let per_core = problem
                .service(service)
                .map(|s| s.flows_per_core)
                .unwrap_or(1);
            let count = self.flows_on.entry((*node, service)).or_insert(0);
            let before = Self::cores_for(*count, per_core);
            *count = count.saturating_sub(1);
            let after = Self::cores_for(*count, per_core);
            self.cores_used[*node] -= before - after;
        }
        for segment in &asg.route {
            for link in segment {
                self.link_load[*link] -= flow.bandwidth;
            }
        }
    }

    /// The highest link utilization.
    pub fn max_link_utilization(&self, problem: &PlacementProblem) -> f64 {
        self.link_load
            .iter()
            .enumerate()
            .map(|(i, load)| load / problem.topology.link(i).capacity)
            .fold(0.0, f64::max)
    }

    /// The highest per-core utilization over all (node, service) pairs.
    pub fn max_core_utilization(&self, problem: &PlacementProblem) -> f64 {
        self.flows_on
            .iter()
            .filter(|(_, flows)| **flows > 0)
            .map(|((_, service), flows)| {
                let per_core = problem
                    .service(*service)
                    .map(|s| s.flows_per_core)
                    .unwrap_or(1);
                let cores = Self::cores_for(*flows, per_core);
                f64::from(*flows) / f64::from(cores * per_core)
            })
            .fold(0.0, f64::max)
    }

    /// The MILP objective for the current load.
    pub fn objective(&self, problem: &PlacementProblem) -> f64 {
        self.max_link_utilization(problem)
            .max(self.max_core_utilization(problem))
    }
}

impl Placement {
    /// Creates an empty placement sized for the problem's flows.
    pub fn empty(problem: &PlacementProblem) -> Self {
        Placement {
            assignments: vec![None; problem.flows.len()],
        }
    }

    /// Number of flows that were placed.
    pub fn placed_flows(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_some()).count()
    }

    /// The `(node, service)` segments this placement assigned to
    /// `problem.flows[flow]`'s chain, in chain order — the form a deployer
    /// (e.g. a federation installing cross-host chains) consumes. `None`
    /// if the flow was rejected, unknown, or its assignment is malformed.
    pub fn chain_segments(
        &self,
        problem: &PlacementProblem,
        flow: usize,
    ) -> Option<Vec<(NodeId, ServiceId)>> {
        let assignment = self.assignments.get(flow)?.as_ref()?;
        let spec = problem.flows.iter().find(|f| f.id == flow)?;
        if assignment.nodes.len() != spec.chain.len() {
            return None;
        }
        Some(
            assignment
                .nodes
                .iter()
                .zip(&spec.chain)
                .map(|(node, service)| (*node, *service))
                .collect(),
        )
    }

    /// Computes the utilization report for this placement.
    pub fn utilization(&self, problem: &PlacementProblem) -> UtilizationReport {
        let mut tracker = LoadTracker::new(problem);
        for (flow, assignment) in problem.flows.iter().zip(&self.assignments) {
            if let Some(asg) = assignment {
                tracker.apply(problem, flow, asg);
            }
        }
        let mut instances = HashMap::new();
        for ((node, service), flows) in &tracker.flows_on {
            if *flows == 0 {
                continue;
            }
            let per_core = problem
                .service(*service)
                .map(|s| s.flows_per_core)
                .unwrap_or(1);
            instances.insert((*node, *service), LoadTracker::cores_for(*flows, per_core));
        }
        UtilizationReport {
            max_link_utilization: tracker.max_link_utilization(problem),
            max_core_utilization: tracker.max_core_utilization(problem),
            max_utilization: tracker.objective(problem),
            placed_flows: self.placed_flows(),
            instances,
            cores_used: tracker.cores_used.clone(),
        }
    }

    /// Checks the structural MILP constraints: well-formed assignments,
    /// connected routes, delay bounds, and node core capacities.
    pub fn validate(&self, problem: &PlacementProblem) -> Result<(), Vec<PlacementError>> {
        let mut errors = Vec::new();
        for (flow, assignment) in problem.flows.iter().zip(&self.assignments) {
            let Some(asg) = assignment else { continue };
            if asg.nodes.len() != flow.chain.len() || asg.route.len() != flow.chain.len() + 1 {
                errors.push(PlacementError::MalformedAssignment { flow: flow.id });
                continue;
            }
            // Route segments must connect ingress -> nodes[0] -> … -> egress.
            let mut waypoints = vec![flow.ingress];
            waypoints.extend(&asg.nodes);
            waypoints.push(flow.egress);
            let mut total_delay = 0.0;
            for (segment_index, segment) in asg.route.iter().enumerate() {
                let from = waypoints[segment_index];
                let to = waypoints[segment_index + 1];
                let visited = problem.topology.path_nodes(from, segment);
                if visited.last().copied() != Some(to) {
                    errors.push(PlacementError::RouteDisconnected {
                        flow: flow.id,
                        segment: segment_index,
                    });
                }
                total_delay += problem.topology.path_delay(segment);
            }
            if total_delay > flow.max_delay {
                errors.push(PlacementError::DelayExceeded {
                    flow: flow.id,
                    delay: total_delay,
                    limit: flow.max_delay,
                });
            }
        }
        let report = self.utilization(problem);
        for (node, used) in report.cores_used.iter().enumerate() {
            let available = problem.topology.node(node).cores;
            if *used > available {
                errors.push(PlacementError::CoreCapacityExceeded {
                    node,
                    required: *used,
                    available,
                });
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServiceSpec;
    use crate::topology::{Link, Node, Topology};

    fn tiny_problem() -> PlacementProblem {
        // 0 -- 1 -- 2, one service, flows from 0 to 2.
        let topology = Topology::new(
            vec![Node { cores: 1 }; 3],
            vec![
                Link {
                    a: 0,
                    b: 1,
                    delay: 1.0,
                    capacity: 4.0,
                },
                Link {
                    a: 1,
                    b: 2,
                    delay: 1.0,
                    capacity: 4.0,
                },
            ],
        );
        PlacementProblem {
            topology,
            services: vec![ServiceSpec::new(ServiceId::new(1), "svc", 2)],
            flows: vec![
                FlowSpec {
                    id: 0,
                    ingress: 0,
                    egress: 2,
                    bandwidth: 1.0,
                    max_delay: 10.0,
                    chain: vec![ServiceId::new(1)],
                },
                FlowSpec {
                    id: 1,
                    ingress: 0,
                    egress: 2,
                    bandwidth: 1.0,
                    max_delay: 10.0,
                    chain: vec![ServiceId::new(1)],
                },
            ],
        }
    }

    fn assignment_on_node(problem: &PlacementProblem, node: NodeId) -> FlowAssignment {
        FlowAssignment {
            nodes: vec![node],
            route: vec![
                problem.topology.shortest_path(0, node).unwrap(),
                problem.topology.shortest_path(node, 2).unwrap(),
            ],
        }
    }

    #[test]
    fn utilization_accounts_links_and_cores() {
        let problem = tiny_problem();
        let mut placement = Placement::empty(&problem);
        placement.assignments[0] = Some(assignment_on_node(&problem, 1));
        placement.assignments[1] = Some(assignment_on_node(&problem, 1));
        let report = placement.utilization(&problem);
        assert_eq!(report.placed_flows, 2);
        // Two unit flows over capacity-4 links.
        assert!((report.max_link_utilization - 0.5).abs() < 1e-9);
        // Two flows on one core that supports 2 flows -> fully utilized.
        assert!((report.max_core_utilization - 1.0).abs() < 1e-9);
        assert!((report.max_utilization - 1.0).abs() < 1e-9);
        assert_eq!(report.instances[&(1, ServiceId::new(1))], 1);
        assert_eq!(report.cores_used, vec![0, 1, 0]);
        assert!(placement.validate(&problem).is_ok());
    }

    #[test]
    fn validate_catches_core_overflow() {
        let problem = tiny_problem();
        let mut placement = Placement::empty(&problem);
        // Three flows would need 2 cores on node 1, but wait — the problem
        // only has two flows; instead shrink capacity by using node 0 which
        // also has one core but the service would need two cores for 3 flows.
        // Simpler: both flows on node 1 uses exactly one core (2 per core),
        // so force an overflow by placing them on node 0 and node 0 again
        // with a service that supports only 1 flow per core.
        let mut problem_tight = problem.clone();
        problem_tight.services[0].flows_per_core = 1;
        placement.assignments[0] = Some(assignment_on_node(&problem_tight, 0));
        placement.assignments[1] = Some(assignment_on_node(&problem_tight, 0));
        let errors = placement.validate(&problem_tight).unwrap_err();
        assert!(errors.iter().any(|e| matches!(
            e,
            PlacementError::CoreCapacityExceeded {
                node: 0,
                required: 2,
                available: 1
            }
        )));
    }

    #[test]
    fn validate_catches_disconnected_route_and_delay() {
        let problem = tiny_problem();
        let mut placement = Placement::empty(&problem);
        // Claim the service is on node 1 but provide an empty second segment
        // (which therefore does not reach the egress at node 2).
        placement.assignments[0] = Some(FlowAssignment {
            nodes: vec![1],
            route: vec![problem.topology.shortest_path(0, 1).unwrap(), vec![]],
        });
        let errors = placement.validate(&problem).unwrap_err();
        assert!(errors.iter().any(|e| matches!(
            e,
            PlacementError::RouteDisconnected {
                flow: 0,
                segment: 1
            }
        )));

        // Delay violation.
        let mut tight = problem.clone();
        tight.flows[0].max_delay = 0.5;
        let mut placement = Placement::empty(&tight);
        placement.assignments[0] = Some(assignment_on_node(&tight, 1));
        let errors = placement.validate(&tight).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, PlacementError::DelayExceeded { flow: 0, .. })));
    }

    #[test]
    fn validate_catches_malformed_assignment() {
        let problem = tiny_problem();
        let mut placement = Placement::empty(&problem);
        placement.assignments[0] = Some(FlowAssignment {
            nodes: vec![],
            route: vec![],
        });
        let errors = placement.validate(&problem).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, PlacementError::MalformedAssignment { flow: 0 })));
    }

    #[test]
    fn chain_segments_follows_assignment_order() {
        let problem = tiny_problem();
        let mut placement = Placement::empty(&problem);
        placement.assignments[0] = Some(assignment_on_node(&problem, 1));
        assert_eq!(
            placement.chain_segments(&problem, 0),
            Some(vec![(1, ServiceId::new(1))])
        );
        // Rejected flow.
        assert_eq!(placement.chain_segments(&problem, 1), None);
        // Unknown flow.
        assert_eq!(placement.chain_segments(&problem, 7), None);
        // Malformed assignment: node count disagrees with the chain.
        placement.assignments[1] = Some(FlowAssignment {
            nodes: vec![],
            route: vec![],
        });
        assert_eq!(placement.chain_segments(&problem, 1), None);
    }

    #[test]
    fn load_tracker_apply_remove_roundtrip() {
        let problem = tiny_problem();
        let mut tracker = LoadTracker::new(&problem);
        let asg = assignment_on_node(&problem, 1);
        tracker.apply(&problem, &problem.flows[0], &asg);
        assert!(tracker.objective(&problem) > 0.0);
        tracker.remove(&problem, &problem.flows[0], &asg);
        assert_eq!(tracker.objective(&problem), 0.0);
        assert_eq!(tracker.cores_used, vec![0, 0, 0]);
        assert_eq!(LoadTracker::cores_for(0, 10), 0);
        assert_eq!(LoadTracker::cores_for(11, 10), 2);
    }
}
