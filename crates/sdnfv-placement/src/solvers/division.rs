//! The Division Heuristic (paper §3.5).
//!
//! The flows are split into small sub-problems (five flows each in the
//! paper). Each sub-problem is solved near-optimally against the residual
//! capacity left by the previous sub-problems, after which its resource use
//! is committed and never revisited. This trades a small loss in quality
//! (~15 % in the paper) for per-sub-problem solve times of seconds.
//!
//! Because committed sub-problems are never revisited, the per-flow solver
//! is run with a *packing bias*: within a utilization bucket it prefers
//! filling partially used cores over opening fresh ones, so early groups do
//! not strand capacity that later groups will need.

use crate::model::PlacementProblem;
use crate::solution::{LoadTracker, Placement};
use crate::solvers::optimal::place_flow_dp_with_bias;
use crate::solvers::{PathCache, PlacementSolver};

/// The division heuristic.
#[derive(Debug, Clone)]
pub struct DivisionSolver {
    /// Number of flows per sub-problem (the paper uses 5).
    pub group_size: usize,
    /// Improvement passes within each sub-problem.
    pub passes_per_group: usize,
    /// Utilization bucket for the packing bias (see the module docs).
    pub packing_bucket: f64,
}

impl Default for DivisionSolver {
    fn default() -> Self {
        DivisionSolver {
            group_size: 5,
            passes_per_group: 2,
            packing_bucket: 0.0,
        }
    }
}

impl PlacementSolver for DivisionSolver {
    fn name(&self) -> &'static str {
        "division"
    }

    fn solve(&self, problem: &PlacementProblem) -> Placement {
        let cache = PathCache::new(&problem.topology);
        let mut tracker = LoadTracker::new(problem);
        let mut placement = Placement::empty(problem);
        let group_size = self.group_size.max(1);
        let place = |tracker: &LoadTracker, flow| {
            place_flow_dp_with_bias(problem, &cache, tracker, flow, self.packing_bucket)
        };

        for group in problem.flows.chunks(group_size) {
            // Initial placement of this group's flows.
            for flow in group {
                if let Some(assignment) = place(&tracker, flow) {
                    tracker.apply(problem, flow, &assignment);
                    placement.assignments[flow.id] = Some(assignment);
                }
            }
            // Local improvement restricted to this group (earlier groups are
            // already committed — that is what makes the heuristic cheap).
            for _ in 0..self.passes_per_group {
                let mut improved = false;
                for flow in group {
                    let Some(current) = placement.assignments[flow.id].clone() else {
                        // Try again to place a previously rejected flow.
                        if let Some(assignment) = place(&tracker, flow) {
                            tracker.apply(problem, flow, &assignment);
                            placement.assignments[flow.id] = Some(assignment);
                            improved = true;
                        }
                        continue;
                    };
                    tracker.remove(problem, flow, &current);
                    match place(&tracker, flow) {
                        Some(new_assignment) => {
                            tracker.apply(problem, flow, &new_assignment);
                            let new_objective = tracker.objective(problem);
                            tracker.remove(problem, flow, &new_assignment);
                            tracker.apply(problem, flow, &current);
                            let old_objective = tracker.objective(problem);
                            if new_objective < old_objective - 1e-9 {
                                tracker.remove(problem, flow, &current);
                                tracker.apply(problem, flow, &new_assignment);
                                placement.assignments[flow.id] = Some(new_assignment);
                                improved = true;
                            }
                        }
                        None => {
                            tracker.apply(problem, flow, &current);
                        }
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PlacementProblem;

    #[test]
    fn division_places_flows_and_validates() {
        let problem = PlacementProblem::paper_figure5(15, 1.0, 9);
        let placement = DivisionSolver::default().solve(&problem);
        placement.validate(&problem).unwrap();
        assert!(placement.placed_flows() >= 10);
    }

    #[test]
    fn group_size_one_still_works() {
        let problem = PlacementProblem::paper_figure5(6, 1.0, 9);
        let solver = DivisionSolver {
            group_size: 1,
            passes_per_group: 1,
            packing_bucket: 0.2,
        };
        let placement = solver.solve(&problem);
        placement.validate(&problem).unwrap();
        assert!(placement.placed_flows() > 0);
        assert_eq!(solver.name(), "division");
    }

    #[test]
    fn packing_bias_preserves_validity() {
        // The packing bias is an ablation knob: whatever bucket is chosen,
        // the resulting placement must stay feasible.
        for bucket in [0.0, 0.1, 0.25] {
            let problem = PlacementProblem::paper_figure5(25, 1.0, 16631);
            let solver = DivisionSolver {
                packing_bucket: bucket,
                ..DivisionSolver::default()
            };
            let placement = solver.solve(&problem);
            placement.validate(&problem).unwrap();
            assert!(placement.placed_flows() >= 15, "bucket {bucket}");
        }
    }
}
