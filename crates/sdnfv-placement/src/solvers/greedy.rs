//! The greedy best-effort baseline (paper §3.5).
//!
//! For each flow, walk the nodes of its shortest ingress→egress path and
//! assign the chain's services to the first node with spare capacity, using
//! neighbouring nodes when the path itself runs out of cores.

use crate::model::PlacementProblem;
use crate::solution::{FlowAssignment, LoadTracker, Placement};
use crate::solvers::{PathCache, PlacementSolver};
use crate::topology::NodeId;

/// The paper's greedy placement baseline.
#[derive(Debug, Clone, Default)]
pub struct GreedySolver;

impl GreedySolver {
    /// Checks whether one more flow of `service` fits on `node` and returns
    /// the extra cores that requires.
    fn fits(
        problem: &PlacementProblem,
        tracker: &LoadTracker,
        node: NodeId,
        service: sdnfv_flowtable::ServiceId,
    ) -> Option<u32> {
        let per_core = problem.service(service)?.flows_per_core;
        let count = tracker.flows_on.get(&(node, service)).copied().unwrap_or(0);
        let delta =
            LoadTracker::cores_for(count + 1, per_core) - LoadTracker::cores_for(count, per_core);
        let free = problem.topology.node(node).cores - tracker.cores_used[node];
        (delta <= free).then_some(delta)
    }
}

impl PlacementSolver for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn solve(&self, problem: &PlacementProblem) -> Placement {
        let cache = PathCache::new(&problem.topology);
        let mut tracker = LoadTracker::new(problem);
        let mut placement = Placement::empty(problem);

        'flows: for flow in &problem.flows {
            let Some(base_path) = cache.path(flow.ingress, flow.egress) else {
                continue;
            };
            let path_nodes = problem.topology.path_nodes(flow.ingress, base_path);
            // Candidate nodes in greedy order: the path itself, then the
            // neighbours of the path nodes.
            let mut candidates: Vec<NodeId> = path_nodes.clone();
            for node in &path_nodes {
                for (neighbor, _) in problem.topology.neighbors(*node) {
                    if !candidates.contains(neighbor) {
                        candidates.push(*neighbor);
                    }
                }
            }

            let mut nodes = Vec::with_capacity(flow.chain.len());
            // First-fit along the candidate list; the cursor never moves
            // backwards along the path so services stay in path order.
            let mut cursor = 0usize;
            let mut trial = tracker.clone();
            for service in &flow.chain {
                let mut chosen = None;
                for (offset, node) in candidates.iter().enumerate().skip(cursor) {
                    if let Some(delta) = Self::fits(problem, &trial, *node, *service) {
                        chosen = Some((offset, *node, delta));
                        break;
                    }
                }
                // Also allow re-using the current node (cursor already points
                // at it) — handled above since skip(cursor) includes it.
                let Some((offset, node, delta)) = chosen else {
                    continue 'flows; // cannot place this flow
                };
                cursor = offset;
                nodes.push(node);
                // Account for it in the trial tracker so subsequent services
                // of this same flow see the consumed cores.
                *trial.flows_on.entry((node, *service)).or_insert(0) += 1;
                trial.cores_used[node] += delta;
            }

            // Build the route through the chosen nodes.
            let mut waypoints = vec![flow.ingress];
            waypoints.extend(&nodes);
            waypoints.push(flow.egress);
            let mut route = Vec::with_capacity(waypoints.len() - 1);
            let mut delay = 0.0;
            for pair in waypoints.windows(2) {
                let Some(path) = cache.path(pair[0], pair[1]) else {
                    continue 'flows;
                };
                delay += problem.topology.path_delay(path);
                route.push(path.clone());
            }
            if delay > flow.max_delay {
                continue;
            }
            let assignment = FlowAssignment { nodes, route };
            tracker.apply(problem, flow, &assignment);
            placement.assignments[flow.id] = Some(assignment);
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FlowSpec, ServiceSpec};
    use crate::topology::{Link, Node, Topology};
    use sdnfv_flowtable::ServiceId;

    fn line_problem(cores: u32, flows: usize) -> PlacementProblem {
        let topology = Topology::new(
            vec![Node { cores }; 4],
            vec![
                Link {
                    a: 0,
                    b: 1,
                    delay: 1.0,
                    capacity: 100.0,
                },
                Link {
                    a: 1,
                    b: 2,
                    delay: 1.0,
                    capacity: 100.0,
                },
                Link {
                    a: 2,
                    b: 3,
                    delay: 1.0,
                    capacity: 100.0,
                },
            ],
        );
        let services = vec![
            ServiceSpec::new(ServiceId::new(1), "a", 2),
            ServiceSpec::new(ServiceId::new(2), "b", 2),
        ];
        let chain: Vec<ServiceId> = services.iter().map(|s| s.id).collect();
        PlacementProblem {
            topology,
            services,
            flows: (0..flows)
                .map(|id| FlowSpec {
                    id,
                    ingress: 0,
                    egress: 3,
                    bandwidth: 1.0,
                    max_delay: 50.0,
                    chain: chain.clone(),
                })
                .collect(),
        }
    }

    #[test]
    fn places_single_flow_on_path() {
        let problem = line_problem(2, 1);
        let placement = GreedySolver.solve(&problem);
        assert_eq!(placement.placed_flows(), 1);
        placement.validate(&problem).unwrap();
        let asg = placement.assignments[0].as_ref().unwrap();
        // Greedy uses the earliest path nodes with capacity: the ingress.
        assert_eq!(asg.nodes.len(), 2);
        let path_nodes = [0usize, 1, 2, 3];
        assert!(asg.nodes.iter().all(|n| path_nodes.contains(n)));
    }

    #[test]
    fn respects_core_capacity_and_rejects_overflow() {
        // Each node has 1 core; each core serves 2 flows of each service; so
        // at most 2 flows fit per (node, service) core and the four nodes can
        // hold 4 cores total = 2 services × 2 flows… place 6 flows, expect
        // some rejections but never an invalid placement.
        let problem = line_problem(1, 6);
        let placement = GreedySolver.solve(&problem);
        placement.validate(&problem).unwrap();
        assert!(placement.placed_flows() >= 2);
        assert!(placement.placed_flows() < 6);
    }

    #[test]
    fn solver_name() {
        assert_eq!(GreedySolver.name(), "greedy");
    }
}
