//! Placement solvers: the greedy baseline, the optimal (MILP stand-in)
//! solver and the division heuristic compared in Figure 5.

mod division;
mod greedy;
mod optimal;

pub use division::DivisionSolver;
pub use greedy::GreedySolver;
pub use optimal::OptimalSolver;

use crate::model::PlacementProblem;
use crate::solution::Placement;
use crate::topology::{NodeId, Topology};

/// Common interface of the placement algorithms.
pub trait PlacementSolver {
    /// Human-readable algorithm name (used in figure output).
    fn name(&self) -> &'static str;

    /// Places as many of the problem's flows as possible.
    fn solve(&self, problem: &PlacementProblem) -> Placement;
}

/// All-pairs shortest paths (by delay), computed once per solve and shared
/// by the solvers.
#[derive(Debug, Clone)]
pub(crate) struct PathCache {
    paths: Vec<Vec<Option<Vec<usize>>>>,
}

impl PathCache {
    pub(crate) fn new(topology: &Topology) -> Self {
        let n = topology.node_count();
        let mut paths = vec![vec![None; n]; n];
        for (from, row) in paths.iter_mut().enumerate() {
            for (to, entry) in row.iter_mut().enumerate() {
                *entry = topology.shortest_path(from, to);
            }
        }
        PathCache { paths }
    }

    pub(crate) fn path(&self, from: NodeId, to: NodeId) -> Option<&Vec<usize>> {
        self.paths[from][to].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FlowSpec, ServiceSpec};
    use crate::topology::{Link, Node};
    use sdnfv_flowtable::ServiceId;

    pub(crate) fn small_problem(flow_count: usize) -> PlacementProblem {
        let topology = Topology::rocketfuel_like(8, 14, 2, 10.0, 3);
        let services = vec![
            ServiceSpec::new(ServiceId::new(1), "j1", 10),
            ServiceSpec::new(ServiceId::new(2), "j2", 4),
        ];
        let chain: Vec<ServiceId> = services.iter().map(|s| s.id).collect();
        let flows = (0..flow_count)
            .map(|id| FlowSpec {
                id,
                ingress: id % 8,
                egress: (id + 3) % 8,
                bandwidth: 1.0,
                max_delay: 100.0,
                chain: chain.clone(),
            })
            .collect();
        PlacementProblem {
            topology,
            services,
            flows,
        }
    }

    #[test]
    fn path_cache_matches_direct_dijkstra() {
        let topology = Topology::new(
            vec![Node { cores: 1 }; 4],
            vec![
                Link {
                    a: 0,
                    b: 1,
                    delay: 1.0,
                    capacity: 1.0,
                },
                Link {
                    a: 1,
                    b: 2,
                    delay: 1.0,
                    capacity: 1.0,
                },
                Link {
                    a: 2,
                    b: 3,
                    delay: 1.0,
                    capacity: 1.0,
                },
            ],
        );
        let cache = PathCache::new(&topology);
        assert_eq!(cache.path(0, 3), topology.shortest_path(0, 3).as_ref());
        assert_eq!(cache.path(2, 2).unwrap().len(), 0);
    }

    #[test]
    fn all_solvers_produce_valid_placements() {
        let problem = small_problem(6);
        let solvers: Vec<Box<dyn PlacementSolver>> = vec![
            Box::new(GreedySolver),
            Box::new(OptimalSolver::default()),
            Box::new(DivisionSolver::default()),
        ];
        for solver in solvers {
            let placement = solver.solve(&problem);
            placement
                .validate(&problem)
                .unwrap_or_else(|e| panic!("{} produced invalid placement: {e:?}", solver.name()));
            assert!(
                placement.placed_flows() > 0,
                "{} placed no flows",
                solver.name()
            );
        }
    }

    #[test]
    fn optimal_is_no_worse_than_greedy() {
        let problem = small_problem(8);
        let greedy = GreedySolver.solve(&problem);
        let optimal = OptimalSolver::default().solve(&problem);
        let gr = greedy.utilization(&problem);
        let or = optimal.utilization(&problem);
        // The optimal solver must place at least as many flows, and when it
        // places the same number its objective must not be worse.
        assert!(or.placed_flows >= gr.placed_flows);
        if or.placed_flows == gr.placed_flows && gr.placed_flows == problem.flows.len() {
            assert!(or.max_utilization <= gr.max_utilization + 1e-9);
        }
    }

    #[test]
    fn division_is_between_greedy_and_optimal_in_spirit() {
        let problem = small_problem(10);
        let optimal = OptimalSolver::default()
            .solve(&problem)
            .utilization(&problem);
        let division = DivisionSolver::default()
            .solve(&problem)
            .utilization(&problem);
        // The division heuristic should achieve at least 60% of the optimal
        // solver's placed flows (the paper reports ~85%).
        assert!(division.placed_flows * 100 >= optimal.placed_flows * 60);
    }
}
