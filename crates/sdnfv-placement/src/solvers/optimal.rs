//! The MILP stand-in: per-flow min-max dynamic programming plus iterated
//! reassignment (local search) until the objective stops improving.
//!
//! For one flow, given the load already committed by other flows, the best
//! chain placement under the min-max objective can be found exactly by
//! dynamic programming over (chain position, node): the objective composes
//! with `max`, so Bellman's principle applies. Placing flows one at a time
//! with that DP and then repeatedly re-placing each flow against the load of
//! the others converges to a joint assignment that is locally optimal; on
//! the paper's problem sizes this tracks the true MILP optimum closely (see
//! DESIGN.md for the substitution note).

use crate::model::{FlowSpec, PlacementProblem};
use crate::solution::{FlowAssignment, LoadTracker, Placement};
use crate::solvers::{PathCache, PlacementSolver};
use crate::topology::NodeId;
use sdnfv_flowtable::ServiceId;

/// The optimal-placement stand-in solver.
#[derive(Debug, Clone)]
pub struct OptimalSolver {
    /// Maximum improvement passes over all flows.
    pub max_passes: usize,
}

impl Default for OptimalSolver {
    fn default() -> Self {
        OptimalSolver { max_passes: 4 }
    }
}

/// Cost of putting one more flow of `service` on `node`, given that earlier
/// positions of the *same* flow already consumed `extra` cores there:
/// returns `(per-core utilization, additional cores needed)` or `None` if
/// the node has no spare core for it.
fn node_cost(
    problem: &PlacementProblem,
    tracker: &LoadTracker,
    node: NodeId,
    service: ServiceId,
    extra: u32,
) -> Option<(f64, u32)> {
    let per_core = problem.service(service)?.flows_per_core;
    let count = tracker.flows_on.get(&(node, service)).copied().unwrap_or(0);
    let before = LoadTracker::cores_for(count, per_core);
    let after = LoadTracker::cores_for(count + 1, per_core);
    let delta = after - before;
    let free = problem
        .topology
        .node(node)
        .cores
        .saturating_sub(tracker.cores_used[node])
        .saturating_sub(extra);
    if delta > free {
        return None;
    }
    Some((f64::from(count + 1) / f64::from(after * per_core), delta))
}

/// Worst link utilization along `path` after adding `bandwidth` to it.
fn segment_cost(
    problem: &PlacementProblem,
    tracker: &LoadTracker,
    path: &[usize],
    bandwidth: f64,
) -> f64 {
    path.iter()
        .map(|link| (tracker.link_load[*link] + bandwidth) / problem.topology.link(*link).capacity)
        .fold(0.0, f64::max)
}

/// Finds the min-max placement of one flow against the committed load, or
/// `None` if no feasible placement exists.
pub(crate) fn place_flow_dp(
    problem: &PlacementProblem,
    cache: &PathCache,
    tracker: &LoadTracker,
    flow: &FlowSpec,
) -> Option<FlowAssignment> {
    place_flow_dp_with_bias(problem, cache, tracker, flow, 0.0)
}

/// Like [`place_flow_dp`], but utilization costs are compared in buckets of
/// `bucket` before tie-breaking on the number of newly opened cores. A
/// non-zero bucket makes the solver *pack* partially used cores as long as
/// the bottleneck stays within the same bucket, trading a little min-max
/// quality for much better capacity — which is what the Division Heuristic
/// needs, since it never revisits already committed sub-problems.
pub(crate) fn place_flow_dp_with_bias(
    problem: &PlacementProblem,
    cache: &PathCache,
    tracker: &LoadTracker,
    flow: &FlowSpec,
    bucket: f64,
) -> Option<FlowAssignment> {
    let n = problem.topology.node_count();
    let positions = flow.chain.len();
    if positions == 0 {
        let path = cache.path(flow.ingress, flow.egress)?.clone();
        return Some(FlowAssignment {
            nodes: vec![],
            route: vec![path],
        });
    }
    // DP state: (node hosting the current position, cores this flow has
    // already consumed on that node through consecutive earlier positions).
    // The second dimension keeps the DP from oversubscribing a node's cores
    // when it stacks several of the flow's services on it.
    let extra_bound = positions + 1;
    let index = |node: usize, extra: usize| node * extra_bound + extra;
    #[derive(Clone, Copy)]
    struct Entry {
        cost: f64,
        /// New cores this flow opens along the chain so far — used as a
        /// tie-breaker so the solver packs partially used cores before
        /// opening fresh ones (what a feasibility-constrained MILP would do).
        opened: u32,
        delay: f64,
        parent: Option<(NodeId, usize)>,
    }
    // Lexicographic comparison: (possibly bucketed) bottleneck first, then
    // cores opened, then delay.
    let quantize = move |cost: f64| {
        if bucket > 0.0 {
            (cost / bucket).floor()
        } else {
            cost
        }
    };
    let better_than = move |cost: f64, opened: u32, delay: f64, existing: &Entry| -> bool {
        let (a, b) = (quantize(cost), quantize(existing.cost));
        if a < b - 1e-12 {
            return true;
        }
        if (a - b).abs() <= 1e-12 {
            if opened < existing.opened {
                return true;
            }
            if opened == existing.opened && delay < existing.delay {
                return true;
            }
        }
        false
    };
    let mut dp: Vec<Option<Entry>> = vec![None; n * extra_bound];
    for node in 0..n {
        let Some(path) = cache.path(flow.ingress, node) else {
            continue;
        };
        let Some((core, delta)) = node_cost(problem, tracker, node, flow.chain[0], 0) else {
            continue;
        };
        let link = segment_cost(problem, tracker, path, flow.bandwidth);
        dp[index(node, delta as usize)] = Some(Entry {
            cost: core.max(link),
            opened: delta,
            delay: problem.topology.path_delay(path),
            parent: None,
        });
    }
    let mut parents: Vec<Vec<Option<(NodeId, usize)>>> =
        vec![dp.iter().map(|e| e.and_then(|e| e.parent)).collect()];
    for position in 1..positions {
        let service = flow.chain[position];
        let mut next: Vec<Option<Entry>> = vec![None; n * extra_bound];
        for node in 0..n {
            for prev in 0..n {
                for prev_extra in 0..extra_bound {
                    let Some(prev_entry) = dp[index(prev, prev_extra)] else {
                        continue;
                    };
                    // Cores already consumed by this flow on `node`: only
                    // carried over when the flow stays on the same node.
                    let carried = if prev == node { prev_extra as u32 } else { 0 };
                    let Some((core, delta)) = node_cost(problem, tracker, node, service, carried)
                    else {
                        continue;
                    };
                    let Some(path) = cache.path(prev, node) else {
                        continue;
                    };
                    let link = segment_cost(problem, tracker, path, flow.bandwidth);
                    let cost = prev_entry.cost.max(link).max(core);
                    let opened = prev_entry.opened + delta;
                    let delay = prev_entry.delay + problem.topology.path_delay(path);
                    let extra = (carried + delta) as usize;
                    let slot = &mut next[index(node, extra.min(extra_bound - 1))];
                    let better = match slot {
                        None => true,
                        Some(existing) => better_than(cost, opened, delay, existing),
                    };
                    if better {
                        *slot = Some(Entry {
                            cost,
                            opened,
                            delay,
                            parent: Some((prev, prev_extra)),
                        });
                    }
                }
            }
        }
        parents.push(next.iter().map(|e| e.and_then(|e| e.parent)).collect());
        dp = next;
    }
    // Close the chain to the egress and pick the best final state.
    let mut best_final: Option<(Entry, NodeId, usize)> = None;
    for node in 0..n {
        for extra in 0..extra_bound {
            let Some(entry) = dp[index(node, extra)] else {
                continue;
            };
            let Some(path) = cache.path(node, flow.egress) else {
                continue;
            };
            let link = segment_cost(problem, tracker, path, flow.bandwidth);
            let total_cost = entry.cost.max(link);
            let total_delay = entry.delay + problem.topology.path_delay(path);
            if total_delay > flow.max_delay {
                continue;
            }
            let better = match &best_final {
                None => true,
                Some((existing, _, _)) => {
                    better_than(total_cost, entry.opened, total_delay, existing)
                }
            };
            if better {
                best_final = Some((
                    Entry {
                        cost: total_cost,
                        opened: entry.opened,
                        delay: total_delay,
                        parent: entry.parent,
                    },
                    node,
                    extra,
                ));
            }
        }
    }
    let (_, last_node, last_extra) = best_final?;
    // Reconstruct the node sequence.
    let mut nodes = vec![last_node; positions];
    let mut state = (last_node, last_extra);
    for position in (1..positions).rev() {
        let parent = parents[position][index(state.0, state.1)]?;
        nodes[position - 1] = parent.0;
        state = parent;
    }
    // Build the route and re-verify feasibility of shared-node core use by
    // replaying onto a cloned tracker (the DP treats positions
    // independently, so stacking several services of this flow on one node
    // could oversubscribe its cores).
    let mut waypoints = vec![flow.ingress];
    waypoints.extend(&nodes);
    waypoints.push(flow.egress);
    let mut route = Vec::with_capacity(waypoints.len() - 1);
    for pair in waypoints.windows(2) {
        route.push(cache.path(pair[0], pair[1])?.clone());
    }
    let assignment = FlowAssignment { nodes, route };
    let mut trial = tracker.clone();
    trial.apply(problem, flow, &assignment);
    for (node, used) in trial.cores_used.iter().enumerate() {
        if *used > problem.topology.node(node).cores {
            return None;
        }
    }
    Some(assignment)
}

impl PlacementSolver for OptimalSolver {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn solve(&self, problem: &PlacementProblem) -> Placement {
        let cache = PathCache::new(&problem.topology);
        let mut tracker = LoadTracker::new(problem);
        let mut placement = Placement::empty(problem);

        // Initial pass: best-response placement in flow order.
        for flow in &problem.flows {
            if let Some(assignment) = place_flow_dp(problem, &cache, &tracker, flow) {
                tracker.apply(problem, flow, &assignment);
                placement.assignments[flow.id] = Some(assignment);
            }
        }

        // Iterated reassignment: re-place each flow against everyone else.
        for _ in 0..self.max_passes {
            let mut improved = false;
            for flow in &problem.flows {
                let current = placement.assignments[flow.id].clone();
                if let Some(current_assignment) = &current {
                    tracker.remove(problem, flow, current_assignment);
                }
                let baseline = tracker.objective(problem);
                match place_flow_dp(problem, &cache, &tracker, flow) {
                    Some(new_assignment) => {
                        tracker.apply(problem, flow, &new_assignment);
                        let new_objective = tracker.objective(problem);
                        let old_objective = match &current {
                            Some(old) => {
                                // Objective if we had kept the old assignment.
                                tracker.remove(problem, flow, &new_assignment);
                                tracker.apply(problem, flow, old);
                                let o = tracker.objective(problem);
                                tracker.remove(problem, flow, old);
                                tracker.apply(problem, flow, &new_assignment);
                                o
                            }
                            None => f64::INFINITY,
                        };
                        match current {
                            Some(old) if new_objective >= old_objective - 1e-9 => {
                                // Keep the previous assignment.
                                tracker.remove(problem, flow, &new_assignment);
                                tracker.apply(problem, flow, &old);
                                placement.assignments[flow.id] = Some(old);
                            }
                            _ => {
                                if placement.assignments[flow.id].as_ref() != Some(&new_assignment)
                                {
                                    improved = true;
                                }
                                placement.assignments[flow.id] = Some(new_assignment);
                            }
                        }
                    }
                    None => {
                        // Could not re-place; restore the old assignment.
                        if let Some(old) = current {
                            tracker.apply(problem, flow, &old);
                            placement.assignments[flow.id] = Some(old);
                        } else {
                            placement.assignments[flow.id] = None;
                        }
                        let _ = baseline;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServiceSpec;
    use crate::topology::{Link, Node, Topology};

    fn problem_with_two_equal_paths() -> PlacementProblem {
        // A diamond: 0 -> {1, 2} -> 3, services can go on 1 or 2.
        let topology = Topology::new(
            vec![
                Node { cores: 0 },
                Node { cores: 1 },
                Node { cores: 1 },
                Node { cores: 0 },
            ],
            vec![
                Link {
                    a: 0,
                    b: 1,
                    delay: 1.0,
                    capacity: 2.0,
                },
                Link {
                    a: 0,
                    b: 2,
                    delay: 1.0,
                    capacity: 2.0,
                },
                Link {
                    a: 1,
                    b: 3,
                    delay: 1.0,
                    capacity: 2.0,
                },
                Link {
                    a: 2,
                    b: 3,
                    delay: 1.0,
                    capacity: 2.0,
                },
            ],
        );
        let service = ServiceSpec::new(ServiceId::new(1), "svc", 2);
        PlacementProblem {
            topology,
            services: vec![service],
            flows: (0..2)
                .map(|id| FlowSpec {
                    id,
                    ingress: 0,
                    egress: 3,
                    bandwidth: 1.0,
                    max_delay: 10.0,
                    chain: vec![ServiceId::new(1)],
                })
                .collect(),
        }
    }

    #[test]
    fn dp_finds_feasible_min_max_placement() {
        let problem = problem_with_two_equal_paths();
        let cache = PathCache::new(&problem.topology);
        let tracker = LoadTracker::new(&problem);
        let assignment = place_flow_dp(&problem, &cache, &tracker, &problem.flows[0]).unwrap();
        assert_eq!(assignment.nodes.len(), 1);
        assert!(assignment.nodes[0] == 1 || assignment.nodes[0] == 2);
        assert_eq!(assignment.route.len(), 2);
    }

    #[test]
    fn solver_spreads_load_across_the_diamond() {
        let problem = problem_with_two_equal_paths();
        let placement = OptimalSolver::default().solve(&problem);
        placement.validate(&problem).unwrap();
        assert_eq!(placement.placed_flows(), 2);
        let report = placement.utilization(&problem);
        // Spreading the two flows over the two middle nodes keeps the link
        // utilization at 1/2; stacking them would push a link to 1.0.
        assert!(report.max_link_utilization <= 0.5 + 1e-9);
    }

    #[test]
    fn infeasible_when_no_cores_anywhere() {
        let mut problem = problem_with_two_equal_paths();
        problem.flows.truncate(1);
        // Remove all cores.
        problem.topology = Topology::new(
            vec![Node { cores: 0 }; 4],
            problem.topology.links().to_vec(),
        );
        let placement = OptimalSolver::default().solve(&problem);
        assert_eq!(placement.placed_flows(), 0);
    }

    #[test]
    fn empty_chain_routes_directly() {
        let mut problem = problem_with_two_equal_paths();
        problem.flows = vec![FlowSpec {
            id: 0,
            ingress: 0,
            egress: 3,
            bandwidth: 1.0,
            max_delay: 10.0,
            chain: vec![],
        }];
        let cache = PathCache::new(&problem.topology);
        let tracker = LoadTracker::new(&problem);
        let assignment = place_flow_dp(&problem, &cache, &tracker, &problem.flows[0]).unwrap();
        assert!(assignment.nodes.is_empty());
        assert_eq!(assignment.route.len(), 1);
    }

    #[test]
    fn solver_name() {
        assert_eq!(OptimalSolver::default().name(), "optimal");
    }
}
