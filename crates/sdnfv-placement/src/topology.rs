//! Network topology model and generators.

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Identifier of a node (switch + attached NFV host) in the topology.
pub type NodeId = usize;

/// A bidirectional link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Propagation/processing delay of the link (arbitrary units, the MILP's
    /// `D_ij`).
    pub delay: f64,
    /// Capacity of the link in bandwidth units (the MILP's `H_ij`).
    pub capacity: f64,
}

/// A node: a switch with an attached COTS server able to host NF instances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Number of CPU cores available for NFs (the MILP's `C_i`).
    pub cores: u32,
}

/// An undirected network topology of NFV-capable nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(NodeId, usize)>>,
}

impl Topology {
    /// Creates a topology from nodes and links.
    ///
    /// # Panics
    ///
    /// Panics if a link references a node that does not exist.
    pub fn new(nodes: Vec<Node>, links: Vec<Link>) -> Self {
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for (index, link) in links.iter().enumerate() {
            assert!(
                link.a < nodes.len() && link.b < nodes.len(),
                "link references unknown node"
            );
            adjacency[link.a].push((link.b, index));
            adjacency[link.b].push((link.a, index));
        }
        Topology {
            nodes,
            links,
            adjacency,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The node description.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link with a given index.
    pub fn link(&self, index: usize) -> &Link {
        &self.links[index]
    }

    /// Neighbors of a node with the connecting link index.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, usize)] {
        &self.adjacency[id]
    }

    /// Scales every node's core count and every link's capacity by `factor`
    /// (used by the right-hand side of Figure 5, which sweeps 1–100× the
    /// original CPU and link capacity).
    pub fn scaled(&self, factor: f64) -> Topology {
        let nodes = self
            .nodes
            .iter()
            .map(|n| Node {
                cores: ((n.cores as f64) * factor).round().max(1.0) as u32,
            })
            .collect();
        let links = self
            .links
            .iter()
            .map(|l| Link {
                capacity: l.capacity * factor,
                ..*l
            })
            .collect();
        Topology::new(nodes, links)
    }

    /// Shortest path (by summed delay) between two nodes, as a list of link
    /// indices. Returns `None` if the nodes are disconnected, and an empty
    /// path when `from == to`.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<usize>> {
        if from == to {
            return Some(Vec::new());
        }
        #[derive(PartialEq)]
        struct Entry {
            cost: f64,
            node: NodeId,
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse for a min-heap; costs are finite by construction.
                other
                    .cost
                    .partial_cmp(&self.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut dist = vec![f64::INFINITY; self.nodes.len()];
        let mut previous: Vec<Option<(NodeId, usize)>> = vec![None; self.nodes.len()];
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(Entry {
            cost: 0.0,
            node: from,
        });
        while let Some(Entry { cost, node }) = heap.pop() {
            if cost > dist[node] {
                continue;
            }
            if node == to {
                break;
            }
            for &(next, link_index) in &self.adjacency[node] {
                let next_cost = cost + self.links[link_index].delay;
                if next_cost < dist[next] {
                    dist[next] = next_cost;
                    previous[next] = Some((node, link_index));
                    heap.push(Entry {
                        cost: next_cost,
                        node: next,
                    });
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut path = Vec::new();
        let mut current = to;
        while current != from {
            let (prev, link_index) = previous[current]?;
            path.push(link_index);
            current = prev;
        }
        path.reverse();
        Some(path)
    }

    /// Total delay along a path of link indices.
    pub fn path_delay(&self, path: &[usize]) -> f64 {
        path.iter().map(|i| self.links[*i].delay).sum()
    }

    /// The nodes visited by a path starting at `from` (inclusive of both
    /// endpoints).
    pub fn path_nodes(&self, from: NodeId, path: &[usize]) -> Vec<NodeId> {
        let mut nodes = vec![from];
        let mut current = from;
        for &link_index in path {
            let link = &self.links[link_index];
            current = if link.a == current { link.b } else { link.a };
            nodes.push(current);
        }
        nodes
    }

    /// A deterministic topology with the same gross statistics as the
    /// Rocketfuel AS-16631 topology used in the paper's placement study:
    /// `node_count` nodes and `link_count` undirected links, homogeneous
    /// cores and link capacities.
    ///
    /// A ring backbone guarantees connectivity; the remaining links are
    /// added pseudo-randomly (but reproducibly, from `seed`) between
    /// non-adjacent nodes, giving the irregular mesh typical of ISP maps.
    pub fn rocketfuel_like(
        node_count: usize,
        link_count: usize,
        cores_per_node: u32,
        link_capacity: f64,
        seed: u64,
    ) -> Topology {
        assert!(node_count >= 3, "need at least three nodes");
        assert!(
            link_count >= node_count,
            "need at least as many links as nodes for a connected ring plus extras"
        );
        let nodes = vec![
            Node {
                cores: cores_per_node
            };
            node_count
        ];
        let mut links = Vec::with_capacity(link_count);
        let mut exists = std::collections::HashSet::new();
        // Ring for connectivity.
        for i in 0..node_count {
            let j = (i + 1) % node_count;
            exists.insert((i.min(j), i.max(j)));
            links.push(Link {
                a: i,
                b: j,
                delay: 1.0,
                capacity: link_capacity,
            });
        }
        // Extra chords from a small deterministic PRNG (xorshift).
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        while links.len() < link_count {
            let a = (next() % node_count as u64) as usize;
            let b = (next() % node_count as u64) as usize;
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if exists.contains(&key) {
                continue;
            }
            exists.insert(key);
            let delay = 1.0 + (next() % 4) as f64;
            links.push(Link {
                a,
                b,
                delay,
                capacity: link_capacity,
            });
        }
        Topology::new(nodes, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Topology {
        Topology::new(
            vec![Node { cores: 2 }; 3],
            vec![
                Link {
                    a: 0,
                    b: 1,
                    delay: 1.0,
                    capacity: 10.0,
                },
                Link {
                    a: 1,
                    b: 2,
                    delay: 2.0,
                    capacity: 10.0,
                },
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let t = line3();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.node(0).cores, 2);
        assert_eq!(t.neighbors(1).len(), 2);
        assert_eq!(t.links().len(), 2);
        assert_eq!(t.link(1).delay, 2.0);
    }

    #[test]
    fn shortest_path_on_line() {
        let t = line3();
        let path = t.shortest_path(0, 2).unwrap();
        assert_eq!(path, vec![0, 1]);
        assert_eq!(t.path_delay(&path), 3.0);
        assert_eq!(t.path_nodes(0, &path), vec![0, 1, 2]);
        assert_eq!(t.shortest_path(1, 1).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn shortest_path_prefers_lower_delay() {
        // Triangle where the direct edge is slower than the two-hop path.
        let t = Topology::new(
            vec![Node { cores: 1 }; 3],
            vec![
                Link {
                    a: 0,
                    b: 2,
                    delay: 10.0,
                    capacity: 1.0,
                },
                Link {
                    a: 0,
                    b: 1,
                    delay: 1.0,
                    capacity: 1.0,
                },
                Link {
                    a: 1,
                    b: 2,
                    delay: 1.0,
                    capacity: 1.0,
                },
            ],
        );
        let path = t.shortest_path(0, 2).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(t.path_delay(&path), 2.0);
    }

    #[test]
    fn disconnected_nodes_have_no_path() {
        let t = Topology::new(
            vec![Node { cores: 1 }; 4],
            vec![
                Link {
                    a: 0,
                    b: 1,
                    delay: 1.0,
                    capacity: 1.0,
                },
                Link {
                    a: 2,
                    b: 3,
                    delay: 1.0,
                    capacity: 1.0,
                },
            ],
        );
        assert!(t.shortest_path(0, 3).is_none());
    }

    #[test]
    fn rocketfuel_like_matches_requested_size() {
        let t = Topology::rocketfuel_like(22, 64, 2, 10.0, 7);
        assert_eq!(t.node_count(), 22);
        assert_eq!(t.link_count(), 64);
        // Connected: every node reaches node 0.
        for node in 1..22 {
            assert!(t.shortest_path(node, 0).is_some());
        }
        // Deterministic for the same seed, different for another seed.
        let same = Topology::rocketfuel_like(22, 64, 2, 10.0, 7);
        let other = Topology::rocketfuel_like(22, 64, 2, 10.0, 8);
        assert_eq!(t, same);
        assert_ne!(t, other);
    }

    #[test]
    fn scaling_multiplies_capacity() {
        let t = line3().scaled(3.0);
        assert_eq!(t.node(0).cores, 6);
        assert_eq!(t.link(0).capacity, 30.0);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn bad_link_panics() {
        let _ = Topology::new(
            vec![Node { cores: 1 }],
            vec![Link {
                a: 0,
                b: 5,
                delay: 1.0,
                capacity: 1.0,
            }],
        );
    }
}
