//! Property tests: every solver's output satisfies the MILP constraints on
//! randomly generated problem instances.

#![cfg(feature = "proptest")]
// Gated off by default: the real `proptest` crate is unavailable in the
// offline build environment (see shims/README.md and ROADMAP.md).
use proptest::prelude::*;
use sdnfv_flowtable::ServiceId;
use sdnfv_placement::model::{FlowSpec, PlacementProblem, ServiceSpec};
use sdnfv_placement::topology::Topology;
use sdnfv_placement::{DivisionSolver, GreedySolver, OptimalSolver, PlacementSolver};

fn arb_problem() -> impl Strategy<Value = PlacementProblem> {
    (
        6usize..14, // nodes
        1u32..4,    // cores per node
        1usize..4,  // chain length
        1usize..12, // flow count
        1u32..6,    // flows per core
        1u64..1000, // seed
    )
        .prop_map(|(nodes, cores, chain_len, flow_count, per_core, seed)| {
            let links = nodes + nodes / 2 + 2;
            let topology = Topology::rocketfuel_like(nodes, links, cores, 10.0, seed);
            let services: Vec<ServiceSpec> = (1..=chain_len as u32)
                .map(|j| ServiceSpec::new(ServiceId::new(j), format!("s{j}"), per_core))
                .collect();
            let chain: Vec<ServiceId> = services.iter().map(|s| s.id).collect();
            let flows = (0..flow_count)
                .map(|id| FlowSpec {
                    id,
                    ingress: (id * 3 + seed as usize) % nodes,
                    egress: (id * 5 + 1 + seed as usize) % nodes,
                    bandwidth: 1.0,
                    max_delay: 500.0,
                    chain: chain.clone(),
                })
                .collect();
            PlacementProblem {
                topology,
                services,
                flows,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_outputs_always_satisfy_constraints(problem in arb_problem()) {
        let solvers: Vec<Box<dyn PlacementSolver>> = vec![
            Box::new(GreedySolver::default()),
            Box::new(OptimalSolver { max_passes: 2 }),
            Box::new(DivisionSolver { group_size: 3, passes_per_group: 1, packing_bucket: 0.2 }),
        ];
        for solver in solvers {
            let placement = solver.solve(&problem);
            prop_assert_eq!(placement.assignments.len(), problem.flows.len());
            if let Err(errors) = placement.validate(&problem) {
                return Err(TestCaseError::fail(format!(
                    "{} produced constraint violations: {errors:?}",
                    solver.name()
                )));
            }
            // Every placed flow's utilization report is internally consistent.
            let report = placement.utilization(&problem);
            prop_assert!(report.max_utilization >= report.max_link_utilization - 1e-12);
            prop_assert!(report.max_utilization >= report.max_core_utilization - 1e-12);
            prop_assert_eq!(report.placed_flows, placement.placed_flows());
        }
    }

    #[test]
    fn placements_are_deterministic(problem in arb_problem()) {
        // The solvers are deterministic functions of the problem: running a
        // solver twice yields the identical placement (important so the
        // figure harness is reproducible).
        for solver in [
            Box::new(GreedySolver::default()) as Box<dyn PlacementSolver>,
            Box::new(OptimalSolver { max_passes: 2 }),
            Box::new(DivisionSolver { group_size: 3, passes_per_group: 1, packing_bucket: 0.2 }),
        ] {
            let a = solver.solve(&problem);
            let b = solver.solve(&problem);
            prop_assert_eq!(a, b, "{} is not deterministic", solver.name());
        }
    }
}
