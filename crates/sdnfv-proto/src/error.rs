//! Error type shared by all protocol parsers.

use std::fmt;

/// Errors produced while parsing or building packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer is shorter than the header or payload being parsed.
    Truncated {
        /// Protocol layer that failed to parse (e.g. `"ipv4"`).
        layer: &'static str,
        /// Number of bytes required by the parser.
        needed: usize,
        /// Number of bytes actually available.
        available: usize,
    },
    /// A field holds a value the parser cannot interpret.
    InvalidField {
        /// Protocol layer that failed to parse.
        layer: &'static str,
        /// Human-readable description of the offending field.
        field: &'static str,
    },
    /// The packet does not carry the protocol that was requested
    /// (e.g. asking for a TCP header on a UDP packet).
    WrongProtocol {
        /// Protocol that was expected.
        expected: &'static str,
        /// Protocol that was found instead.
        found: String,
    },
    /// The payload is not valid for the application protocol
    /// (HTTP / memcached) being parsed.
    Malformed {
        /// Protocol layer that failed to parse.
        layer: &'static str,
        /// Human readable reason.
        reason: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated {
                layer,
                needed,
                available,
            } => write!(
                f,
                "{layer}: truncated packet (need {needed} bytes, have {available})"
            ),
            ProtoError::InvalidField { layer, field } => {
                write!(f, "{layer}: invalid field {field}")
            }
            ProtoError::WrongProtocol { expected, found } => {
                write!(f, "expected {expected} packet, found {found}")
            }
            ProtoError::Malformed { layer, reason } => write!(f, "{layer}: malformed ({reason})"),
        }
    }
}

impl std::error::Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_truncated() {
        let e = ProtoError::Truncated {
            layer: "ipv4",
            needed: 20,
            available: 4,
        };
        assert!(e.to_string().contains("ipv4"));
        assert!(e.to_string().contains("20"));
    }

    #[test]
    fn display_wrong_protocol() {
        let e = ProtoError::WrongProtocol {
            expected: "tcp",
            found: "udp".to_string(),
        };
        assert_eq!(e.to_string(), "expected tcp packet, found udp");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        let e = ProtoError::InvalidField {
            layer: "eth",
            field: "ethertype",
        };
        assert_err(&e);
    }
}
