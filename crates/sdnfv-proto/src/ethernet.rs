//! Ethernet II frame header parsing and serialization.

use serde::{Deserialize, Serialize};

use crate::error::ProtoError;
use crate::mac::MacAddr;
use crate::Result;

/// Length of an Ethernet II header in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// The EtherType of a frame: which protocol the payload carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// IPv6 (`0x86dd`).
    Ipv6,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Numeric value carried on the wire.
    pub fn value(&self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => *v,
        }
    }
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

/// A parsed Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetHeader {
    /// Destination hardware address.
    pub dst: MacAddr,
    /// Source hardware address.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Creates a new header.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType) -> Self {
        EthernetHeader {
            dst,
            src,
            ethertype,
        }
    }

    /// Parses the header from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(ProtoError::Truncated {
                layer: "ethernet",
                needed: ETHERNET_HEADER_LEN,
                available: buf.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = u16::from_be_bytes([buf[12], buf[13]]).into();
        Ok(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
        })
    }

    /// Serializes the header into exactly [`ETHERNET_HEADER_LEN`] bytes.
    pub fn to_bytes(&self) -> [u8; ETHERNET_HEADER_LEN] {
        let mut out = [0u8; ETHERNET_HEADER_LEN];
        out[0..6].copy_from_slice(&self.dst.octets());
        out[6..12].copy_from_slice(&self.src.octets());
        out[12..14].copy_from_slice(&self.ethertype.value().to_be_bytes());
        out
    }

    /// Writes the header into the first [`ETHERNET_HEADER_LEN`] bytes of `buf`.
    pub fn write(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(ProtoError::Truncated {
                layer: "ethernet",
                needed: ETHERNET_HEADER_LEN,
                available: buf.len(),
            });
        }
        buf[..ETHERNET_HEADER_LEN].copy_from_slice(&self.to_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_serialize_roundtrip() {
        let hdr = EthernetHeader::new(
            MacAddr::new([1, 2, 3, 4, 5, 6]),
            MacAddr::new([7, 8, 9, 10, 11, 12]),
            EtherType::Ipv4,
        );
        let bytes = hdr.to_bytes();
        let parsed = EthernetHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, hdr);
    }

    #[test]
    fn parse_rejects_short_buffer() {
        let err = EthernetHeader::parse(&[0u8; 10]).unwrap_err();
        assert!(matches!(
            err,
            ProtoError::Truncated {
                layer: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x86dd), EtherType::Ipv6);
        assert_eq!(EtherType::from(0x1234), EtherType::Other(0x1234));
        assert_eq!(EtherType::Other(0x1234).value(), 0x1234);
        assert_eq!(EtherType::Ipv6.value(), 0x86dd);
    }

    #[test]
    fn write_into_larger_buffer() {
        let hdr = EthernetHeader::new(MacAddr::ZERO, MacAddr::BROADCAST, EtherType::Arp);
        let mut buf = vec![0u8; 64];
        hdr.write(&mut buf).unwrap();
        assert_eq!(EthernetHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn write_rejects_short_buffer() {
        let hdr = EthernetHeader::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::Ipv4);
        let mut buf = [0u8; 8];
        assert!(hdr.write(&mut buf).is_err());
    }
}
