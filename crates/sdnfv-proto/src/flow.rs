//! Flow identity: IP protocol numbers and the classic 5-tuple [`FlowKey`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

use crate::packet::Packet;

/// Transport protocol carried inside an IPv4 datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IpProtocol {
    /// ICMP (protocol number 1).
    Icmp,
    /// TCP (protocol number 6).
    Tcp,
    /// UDP (protocol number 17).
    Udp,
    /// Any other protocol, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    /// Numeric protocol value as carried in the IPv4 header.
    pub fn value(&self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => *v,
        }
    }
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "icmp"),
            IpProtocol::Tcp => write!(f, "tcp"),
            IpProtocol::Udp => write!(f, "udp"),
            IpProtocol::Other(v) => write!(f, "proto-{v}"),
        }
    }
}

/// The classic 5-tuple identifying a flow.
///
/// Flow keys are the unit of matching in the
/// [`sdnfv-flowtable`](https://docs.rs/sdnfv-flowtable) crate and the unit of
/// consistency for flow-hash load balancing in the NF Manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port (zero for protocols without ports).
    pub src_port: u16,
    /// Destination transport port (zero for protocols without ports).
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: IpProtocol,
}

impl FlowKey {
    /// Creates a flow key from its five components.
    pub fn new(
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        protocol: IpProtocol,
    ) -> Self {
        FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol,
        }
    }

    /// Extracts the 5-tuple from a packet, if it carries IPv4.
    ///
    /// For transport protocols other than TCP/UDP the ports are reported as
    /// zero.
    pub fn from_packet(packet: &Packet) -> Option<FlowKey> {
        let ip = packet.ipv4().ok()?;
        let (src_port, dst_port) = match ip.protocol {
            IpProtocol::Tcp => {
                let tcp = packet.tcp().ok()?;
                (tcp.src_port, tcp.dst_port)
            }
            IpProtocol::Udp => {
                let udp = packet.udp().ok()?;
                (udp.src_port, udp.dst_port)
            }
            _ => (0, 0),
        };
        Some(FlowKey {
            src_ip: ip.src,
            dst_ip: ip.dst,
            src_port,
            dst_port,
            protocol: ip.protocol,
        })
    }

    /// Returns the key for traffic in the opposite direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A deterministic 64-bit hash of the key, stable across processes.
    ///
    /// Used for flow-hash load balancing so that all packets of a flow are
    /// steered to the same NF thread, as required for NFs holding per-flow
    /// state (paper §4.2).
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over the canonical byte representation.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let mut hash = OFFSET;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        feed(&self.src_ip.octets());
        feed(&self.dst_ip.octets());
        feed(&self.src_port.to_be_bytes());
        feed(&self.dst_port.to_be_bytes());
        feed(&[self.protocol.value()]);
        hash
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    #[test]
    fn protocol_numeric_mapping() {
        assert_eq!(IpProtocol::from(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from(1), IpProtocol::Icmp);
        assert_eq!(IpProtocol::from(89), IpProtocol::Other(89));
        assert_eq!(IpProtocol::Other(89).value(), 89);
        assert_eq!(IpProtocol::Tcp.value(), 6);
    }

    #[test]
    fn from_udp_packet() {
        let pkt = PacketBuilder::udp()
            .src_ip([10, 0, 0, 1])
            .dst_ip([10, 0, 0, 2])
            .src_port(1234)
            .dst_port(80)
            .payload(b"x")
            .build();
        let key = FlowKey::from_packet(&pkt).unwrap();
        assert_eq!(key.src_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(key.dst_port, 80);
        assert_eq!(key.protocol, IpProtocol::Udp);
    }

    #[test]
    fn from_tcp_packet() {
        let pkt = PacketBuilder::tcp()
            .src_ip([1, 1, 1, 1])
            .dst_ip([2, 2, 2, 2])
            .src_port(4567)
            .dst_port(443)
            .payload(b"hello")
            .build();
        let key = FlowKey::from_packet(&pkt).unwrap();
        assert_eq!(key.protocol, IpProtocol::Tcp);
        assert_eq!(key.src_port, 4567);
        assert_eq!(key.dst_port, 443);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let key = FlowKey::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            100,
            200,
            IpProtocol::Tcp,
        );
        let rev = key.reversed();
        assert_eq!(rev.src_ip, key.dst_ip);
        assert_eq!(rev.dst_port, key.src_port);
        assert_eq!(rev.reversed(), key);
    }

    #[test]
    fn stable_hash_differs_for_different_flows() {
        let a = FlowKey::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            100,
            200,
            IpProtocol::Tcp,
        );
        let mut b = a;
        b.src_port = 101;
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_eq!(a.stable_hash(), a.stable_hash());
    }

    #[test]
    fn display_contains_endpoints() {
        let key = FlowKey::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            100,
            200,
            IpProtocol::Udp,
        );
        let s = key.to_string();
        assert!(s.contains("1.2.3.4:100"));
        assert!(s.contains("5.6.7.8:200"));
        assert!(s.contains("udp"));
    }
}
