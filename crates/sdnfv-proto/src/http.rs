//! Minimal HTTP/1.x parsing used by application-aware network functions.
//!
//! The paper's Video Detector inspects HTTP response headers to discover the
//! content type of a flow, and the IDS looks for suspicious substrings in
//! HTTP requests. Only the small subset of HTTP needed for that is
//! implemented: request lines, status lines and header fields.

use serde::{Deserialize, Serialize};

use crate::error::ProtoError;
use crate::Result;

/// An HTTP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// PUT
    Put,
    /// DELETE
    Delete,
    /// HEAD
    Head,
}

impl Method {
    fn from_token(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }

    /// The token used on the request line.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }
}

/// A parsed HTTP request head (request line plus headers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Request target (path and query).
    pub path: String,
    /// Header fields in order of appearance, names lower-cased.
    pub headers: Vec<(String, String)>,
}

/// A parsed HTTP response head (status line plus headers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// Numeric status code.
    pub status: u16,
    /// Header fields in order of appearance, names lower-cased.
    pub headers: Vec<(String, String)>,
}

fn parse_headers(lines: &mut std::str::Lines<'_>) -> Vec<(String, String)> {
    let mut headers = Vec::new();
    for line in lines {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    headers
}

impl HttpRequest {
    /// Parses a request head from the start of a TCP payload.
    pub fn parse(payload: &[u8]) -> Result<HttpRequest> {
        let text = std::str::from_utf8(payload).map_err(|_| ProtoError::Malformed {
            layer: "http",
            reason: "payload is not valid UTF-8".to_string(),
        })?;
        let mut lines = text.lines();
        let request_line = lines.next().ok_or_else(|| ProtoError::Malformed {
            layer: "http",
            reason: "empty payload".to_string(),
        })?;
        let mut parts = request_line.trim_end_matches('\r').split_whitespace();
        let method =
            parts
                .next()
                .and_then(Method::from_token)
                .ok_or_else(|| ProtoError::Malformed {
                    layer: "http",
                    reason: "unknown method".to_string(),
                })?;
        let path = parts
            .next()
            .ok_or_else(|| ProtoError::Malformed {
                layer: "http",
                reason: "missing request target".to_string(),
            })?
            .to_string();
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/") {
            return Err(ProtoError::Malformed {
                layer: "http",
                reason: "missing HTTP version".to_string(),
            });
        }
        Ok(HttpRequest {
            method,
            path,
            headers: parse_headers(&mut lines),
        })
    }

    /// Looks up a header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the request head back to wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method.as_str(), self.path);
        for (name, value) in &self.headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str("\r\n");
        out.into_bytes()
    }
}

impl HttpResponse {
    /// Parses a response head from the start of a TCP payload.
    pub fn parse(payload: &[u8]) -> Result<HttpResponse> {
        let text = std::str::from_utf8(payload).map_err(|_| ProtoError::Malformed {
            layer: "http",
            reason: "payload is not valid UTF-8".to_string(),
        })?;
        let mut lines = text.lines();
        let status_line = lines.next().ok_or_else(|| ProtoError::Malformed {
            layer: "http",
            reason: "empty payload".to_string(),
        })?;
        let status_line = status_line.trim_end_matches('\r');
        if !status_line.starts_with("HTTP/") {
            return Err(ProtoError::Malformed {
                layer: "http",
                reason: "missing HTTP version in status line".to_string(),
            });
        }
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| ProtoError::Malformed {
                layer: "http",
                reason: "missing status code".to_string(),
            })?;
        Ok(HttpResponse {
            status,
            headers: parse_headers(&mut lines),
        })
    }

    /// Looks up a header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Returns the `Content-Type` header, if present.
    pub fn content_type(&self) -> Option<&str> {
        self.header("content-type")
    }

    /// Returns `true` if the response carries video content
    /// (`Content-Type: video/*`), the signal used by the Video Detector NF.
    pub fn is_video(&self) -> bool {
        self.content_type()
            .map(|ct| ct.trim_start().starts_with("video/"))
            .unwrap_or(false)
    }

    /// Serializes the response head back to wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!("HTTP/1.1 {} OK\r\n", self.status);
        for (name, value) in &self.headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str("\r\n");
        out.into_bytes()
    }
}

/// Convenience constructor for an HTTP response head with a content type,
/// used by traffic generators emulating video servers.
pub fn response_with_content_type(status: u16, content_type: &str) -> Vec<u8> {
    HttpResponse {
        status,
        headers: vec![("content-type".to_string(), content_type.to_string())],
    }
    .to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request() {
        let req = HttpRequest::parse(
            b"GET /videos/cat.mp4 HTTP/1.1\r\nHost: example.com\r\nUser-Agent: test\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/videos/cat.mp4");
        assert_eq!(req.header("host"), Some("example.com"));
        assert_eq!(req.header("HOST"), Some("example.com"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn request_roundtrip() {
        let req = HttpRequest {
            method: Method::Post,
            path: "/submit".to_string(),
            headers: vec![("content-length".to_string(), "5".to_string())],
        };
        let parsed = HttpRequest::parse(&req.to_bytes()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn parse_response_and_video_detection() {
        let resp =
            HttpResponse::parse(b"HTTP/1.1 200 OK\r\nContent-Type: video/mp4\r\n\r\n").unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.is_video());

        let resp =
            HttpResponse::parse(b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n").unwrap();
        assert!(!resp.is_video());

        let resp = HttpResponse::parse(b"HTTP/1.1 204 No Content\r\n\r\n").unwrap();
        assert!(!resp.is_video());
        assert_eq!(resp.status, 204);
    }

    #[test]
    fn response_helper_builds_parsable_head() {
        let bytes = response_with_content_type(200, "video/webm");
        let resp = HttpResponse::parse(&bytes).unwrap();
        assert!(resp.is_video());
    }

    #[test]
    fn rejects_garbage() {
        assert!(HttpRequest::parse(b"\xff\xfe\x00").is_err());
        assert!(HttpRequest::parse(b"").is_err());
        assert!(HttpRequest::parse(b"FETCH / HTTP/1.1\r\n\r\n").is_err());
        assert!(HttpRequest::parse(b"GET\r\n\r\n").is_err());
        assert!(HttpRequest::parse(b"GET /path\r\n\r\n").is_err());
        assert!(HttpResponse::parse(b"NOTHTTP 200\r\n\r\n").is_err());
        assert!(HttpResponse::parse(b"HTTP/1.1 abc\r\n\r\n").is_err());
        assert!(HttpResponse::parse(b"").is_err());
    }

    #[test]
    fn method_tokens() {
        for m in [
            Method::Get,
            Method::Post,
            Method::Put,
            Method::Delete,
            Method::Head,
        ] {
            assert_eq!(Method::from_token(m.as_str()), Some(m));
        }
        assert_eq!(Method::from_token("PATCH"), None);
    }
}
