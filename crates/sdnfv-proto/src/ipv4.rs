//! IPv4 header parsing, serialization and checksum computation.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

use crate::error::ProtoError;
use crate::flow::IpProtocol;
use crate::Result;

/// Minimum length of an IPv4 header (no options) in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// A parsed IPv4 header (options are preserved only as a length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated services / type-of-service byte.
    pub dscp_ecn: u8,
    /// Total length of the IP datagram (header + payload) in bytes.
    pub total_length: u16,
    /// Identification field (used for fragmentation).
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits) packed as on the wire.
    pub flags_fragment: u16,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol of the payload.
    pub protocol: IpProtocol,
    /// Header checksum as carried in the packet.
    pub checksum: u16,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Header length in bytes (20 when there are no options).
    pub header_len: usize,
}

impl Ipv4Header {
    /// Creates a header with sensible defaults (TTL 64, no fragmentation).
    ///
    /// `payload_len` is the length of the transport header plus payload; the
    /// total length field is computed from it. The checksum is left at zero
    /// and filled in by [`Ipv4Header::write`].
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_length: (IPV4_HEADER_LEN + payload_len) as u16,
            identification: 0,
            flags_fragment: 0x4000, // don't fragment
            ttl: 64,
            protocol,
            checksum: 0,
            src,
            dst,
            header_len: IPV4_HEADER_LEN,
        }
    }

    /// Parses an IPv4 header from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(ProtoError::Truncated {
                layer: "ipv4",
                needed: IPV4_HEADER_LEN,
                available: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(ProtoError::InvalidField {
                layer: "ipv4",
                field: "version",
            });
        }
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if ihl < IPV4_HEADER_LEN {
            return Err(ProtoError::InvalidField {
                layer: "ipv4",
                field: "ihl",
            });
        }
        if buf.len() < ihl {
            return Err(ProtoError::Truncated {
                layer: "ipv4",
                needed: ihl,
                available: buf.len(),
            });
        }
        Ok(Ipv4Header {
            dscp_ecn: buf[1],
            total_length: u16::from_be_bytes([buf[2], buf[3]]),
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            flags_fragment: u16::from_be_bytes([buf[6], buf[7]]),
            ttl: buf[8],
            protocol: IpProtocol::from(buf[9]),
            checksum: u16::from_be_bytes([buf[10], buf[11]]),
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            header_len: ihl,
        })
    }

    /// Serializes the header (without options) and computes its checksum.
    pub fn to_bytes(&self) -> [u8; IPV4_HEADER_LEN] {
        let mut out = [0u8; IPV4_HEADER_LEN];
        out[0] = 0x45; // version 4, IHL 5 words
        out[1] = self.dscp_ecn;
        out[2..4].copy_from_slice(&self.total_length.to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        out[6..8].copy_from_slice(&self.flags_fragment.to_be_bytes());
        out[8] = self.ttl;
        out[9] = self.protocol.value();
        // checksum at 10..12 computed below
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(&out);
        out[10..12].copy_from_slice(&csum.to_be_bytes());
        out
    }

    /// Writes the header into the first [`IPV4_HEADER_LEN`] bytes of `buf`.
    pub fn write(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(ProtoError::Truncated {
                layer: "ipv4",
                needed: IPV4_HEADER_LEN,
                available: buf.len(),
            });
        }
        buf[..IPV4_HEADER_LEN].copy_from_slice(&self.to_bytes());
        Ok(())
    }

    /// Returns `true` if the checksum carried in the header is consistent
    /// with its contents (only meaningful for option-less headers produced by
    /// [`Ipv4Header::to_bytes`]).
    pub fn checksum_valid(buf: &[u8]) -> bool {
        if buf.len() < IPV4_HEADER_LEN {
            return false;
        }
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if buf.len() < ihl || ihl < IPV4_HEADER_LEN {
            return false;
        }
        internet_checksum(&buf[..ihl]) == 0
    }
}

/// Computes the 16-bit one's-complement internet checksum over `data`.
///
/// When the buffer already contains a checksum field the result is `0` for a
/// consistent header; when the checksum field is zeroed the result is the
/// value to store there.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 1, 77),
            IpProtocol::Udp,
            100,
        )
    }

    #[test]
    fn roundtrip() {
        let hdr = sample();
        let bytes = hdr.to_bytes();
        let parsed = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(parsed.src, hdr.src);
        assert_eq!(parsed.dst, hdr.dst);
        assert_eq!(parsed.protocol, IpProtocol::Udp);
        assert_eq!(parsed.total_length, 120);
        assert_eq!(parsed.header_len, IPV4_HEADER_LEN);
    }

    #[test]
    fn checksum_is_valid_after_serialization() {
        let bytes = sample().to_bytes();
        assert!(Ipv4Header::checksum_valid(&bytes));
        let mut corrupted = bytes;
        corrupted[15] ^= 0xff;
        assert!(!Ipv4Header::checksum_valid(&corrupted));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&bytes),
            Err(ProtoError::InvalidField {
                field: "version",
                ..
            })
        ));
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(Ipv4Header::parse(&[0u8; 10]).is_err());
        assert!(!Ipv4Header::checksum_valid(&[0u8; 10]));
    }

    #[test]
    fn rejects_bad_ihl() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x42; // IHL 2 words = 8 bytes < minimum
        assert!(Ipv4Header::parse(&bytes).is_err());
    }

    #[test]
    fn checksum_of_zeros_is_all_ones() {
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xffff);
    }

    #[test]
    fn checksum_odd_length() {
        // Odd-length buffers are padded with a zero byte.
        assert_eq!(internet_checksum(&[0xff]), internet_checksum(&[0xff, 0x00]));
    }
}
