//! Packet model and protocol parsing for the SDNFV data plane.
//!
//! This crate provides the representation of network packets that flows
//! through every other SDNFV component, together with zero-allocation
//! parsers and builders for the protocols the paper's network functions
//! inspect:
//!
//! * [`ethernet`] — Ethernet II frames,
//! * [`ipv4`] — IPv4 headers with internet checksums,
//! * [`tcp`] / [`udp`] — transport headers,
//! * [`http`] — the subset of HTTP/1.x needed by the Video Detector and IDS,
//! * [`memcached`] — the UDP memcached framing and text protocol used by the
//!   application-aware load balancer (Figure 12 of the paper),
//! * [`packet`] — the [`Packet`](packet::Packet) type carrying a raw frame
//!   plus data-plane metadata, and convenience builders used by the traffic
//!   generators.
//!
//! Flow identity is captured by [`FlowKey`](flow::FlowKey), the classic
//! 5-tuple used for flow-table matching and flow-hash load balancing.
//!
//! # Example
//!
//! ```
//! use sdnfv_proto::packet::PacketBuilder;
//! use sdnfv_proto::flow::FlowKey;
//!
//! let pkt = PacketBuilder::udp()
//!     .src_ip([10, 0, 0, 1])
//!     .dst_ip([10, 0, 0, 2])
//!     .src_port(5000)
//!     .dst_port(53)
//!     .payload(b"hello")
//!     .build();
//! let key = FlowKey::from_packet(&pkt).expect("valid UDP packet");
//! assert_eq!(key.src_port, 5000);
//! assert_eq!(key.dst_port, 53);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod ethernet;
pub mod flow;
pub mod http;
pub mod ipv4;
pub mod mac;
pub mod memcached;
pub mod packet;
pub mod tcp;
pub mod udp;

pub use error::ProtoError;
pub use ethernet::{EtherType, EthernetHeader};
pub use flow::{FlowKey, IpProtocol};
pub use ipv4::Ipv4Header;
pub use mac::MacAddr;
pub use packet::{Packet, PacketBuilder, Port};
pub use tcp::TcpHeader;
pub use udp::UdpHeader;

/// Result alias used throughout the protocol crate.
pub type Result<T> = std::result::Result<T, ProtoError>;
