//! MAC (Ethernet hardware) addresses.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::ProtoError;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as a placeholder by traffic generators.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Returns the six octets of the address.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Returns `true` if the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns `true` if the locally-administered bit is set.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl FromStr for MacAddr {
    type Err = ProtoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(ProtoError::InvalidField {
                layer: "ethernet",
                field: "mac address",
            });
        }
        for (i, part) in parts.iter().enumerate() {
            octets[i] = u8::from_str_radix(part, 16).map_err(|_| ProtoError::InvalidField {
                layer: "ethernet",
                field: "mac address",
            })?;
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let mac = MacAddr::new([0x00, 0x1b, 0x21, 0xab, 0xcd, 0xef]);
        let s = mac.to_string();
        assert_eq!(s, "00:1b:21:ab:cd:ef");
        assert_eq!(s.parse::<MacAddr>().unwrap(), mac);
    }

    #[test]
    fn broadcast_and_multicast_flags() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::ZERO.is_broadcast());
        assert!(!MacAddr::new([0x00, 1, 2, 3, 4, 5]).is_multicast());
        assert!(MacAddr::new([0x01, 0, 0, 0, 0, 1]).is_multicast());
        assert!(MacAddr::new([0x02, 0, 0, 0, 0, 1]).is_local());
    }

    #[test]
    fn parse_rejects_bad_strings() {
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("zz:11:22:33:44:55".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }
}
