//! The memcached binary UDP framing and text protocol subset used by the
//! application-aware load balancer NF (paper §5.4, Figure 12).
//!
//! Memcached-over-UDP prefixes each datagram with an 8-byte frame header
//! (request id, sequence number, datagram count, reserved), followed by the
//! ordinary text protocol (`get <key>\r\n`, `set <key> ...`).

use serde::{Deserialize, Serialize};

use crate::error::ProtoError;
use crate::Result;

/// Length of the memcached UDP frame header in bytes.
pub const MEMCACHED_UDP_HEADER_LEN: usize = 8;

/// The 8-byte frame header prepended to memcached-over-UDP datagrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpFrameHeader {
    /// Opaque request id chosen by the client, echoed in the response.
    pub request_id: u16,
    /// Sequence number of this datagram within the message.
    pub sequence: u16,
    /// Total number of datagrams in the message.
    pub total_datagrams: u16,
    /// Reserved, must be zero.
    pub reserved: u16,
}

impl UdpFrameHeader {
    /// Creates a single-datagram frame header.
    pub fn single(request_id: u16) -> Self {
        UdpFrameHeader {
            request_id,
            sequence: 0,
            total_datagrams: 1,
            reserved: 0,
        }
    }

    /// Parses the frame header from the start of a UDP payload.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < MEMCACHED_UDP_HEADER_LEN {
            return Err(ProtoError::Truncated {
                layer: "memcached",
                needed: MEMCACHED_UDP_HEADER_LEN,
                available: buf.len(),
            });
        }
        Ok(UdpFrameHeader {
            request_id: u16::from_be_bytes([buf[0], buf[1]]),
            sequence: u16::from_be_bytes([buf[2], buf[3]]),
            total_datagrams: u16::from_be_bytes([buf[4], buf[5]]),
            reserved: u16::from_be_bytes([buf[6], buf[7]]),
        })
    }

    /// Serializes the frame header.
    pub fn to_bytes(&self) -> [u8; MEMCACHED_UDP_HEADER_LEN] {
        let mut out = [0u8; MEMCACHED_UDP_HEADER_LEN];
        out[0..2].copy_from_slice(&self.request_id.to_be_bytes());
        out[2..4].copy_from_slice(&self.sequence.to_be_bytes());
        out[4..6].copy_from_slice(&self.total_datagrams.to_be_bytes());
        out[6..8].copy_from_slice(&self.reserved.to_be_bytes());
        out
    }
}

/// A memcached text-protocol command relevant to the proxy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// `get <key>` — retrieve a value.
    Get {
        /// Key being requested.
        key: String,
    },
    /// `set <key> <flags> <exptime> <bytes>` — store a value.
    Set {
        /// Key being stored.
        key: String,
        /// Number of payload bytes that follow the command line.
        bytes: usize,
    },
}

impl Command {
    /// Returns the key the command operates on.
    pub fn key(&self) -> &str {
        match self {
            Command::Get { key } => key,
            Command::Set { key, .. } => key,
        }
    }
}

/// A parsed memcached-over-UDP request: frame header plus command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// UDP frame header.
    pub frame: UdpFrameHeader,
    /// Text-protocol command.
    pub command: Command,
}

impl Request {
    /// Parses a request from a full UDP payload (frame header + text).
    pub fn parse(payload: &[u8]) -> Result<Request> {
        let frame = UdpFrameHeader::parse(payload)?;
        let body = &payload[MEMCACHED_UDP_HEADER_LEN..];
        let command = parse_command(body)?;
        Ok(Request { frame, command })
    }

    /// Serializes the request into a UDP payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.frame.to_bytes().to_vec();
        match &self.command {
            Command::Get { key } => out.extend_from_slice(format!("get {key}\r\n").as_bytes()),
            Command::Set { key, bytes } => {
                out.extend_from_slice(format!("set {key} 0 0 {bytes}\r\n").as_bytes())
            }
        }
        out
    }
}

/// Builds a single-datagram `get` request payload for a key.
pub fn get_request(request_id: u16, key: &str) -> Vec<u8> {
    Request {
        frame: UdpFrameHeader::single(request_id),
        command: Command::Get {
            key: key.to_string(),
        },
    }
    .to_bytes()
}

fn parse_command(body: &[u8]) -> Result<Command> {
    let text = std::str::from_utf8(body).map_err(|_| ProtoError::Malformed {
        layer: "memcached",
        reason: "command is not valid UTF-8".to_string(),
    })?;
    let line = text.lines().next().unwrap_or("").trim_end_matches('\r');
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("get") => {
            let key = parts.next().ok_or_else(|| ProtoError::Malformed {
                layer: "memcached",
                reason: "get without key".to_string(),
            })?;
            Ok(Command::Get {
                key: key.to_string(),
            })
        }
        Some("set") => {
            let key = parts.next().ok_or_else(|| ProtoError::Malformed {
                layer: "memcached",
                reason: "set without key".to_string(),
            })?;
            // flags, exptime
            let _ = parts.next();
            let _ = parts.next();
            let bytes = parts
                .next()
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| ProtoError::Malformed {
                    layer: "memcached",
                    reason: "set without byte count".to_string(),
                })?;
            Ok(Command::Set {
                key: key.to_string(),
                bytes,
            })
        }
        other => Err(ProtoError::Malformed {
            layer: "memcached",
            reason: format!("unsupported command {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_header_roundtrip() {
        let hdr = UdpFrameHeader {
            request_id: 0xabcd,
            sequence: 2,
            total_datagrams: 3,
            reserved: 0,
        };
        assert_eq!(UdpFrameHeader::parse(&hdr.to_bytes()).unwrap(), hdr);
    }

    #[test]
    fn get_request_roundtrip() {
        let payload = get_request(7, "user:1234");
        let req = Request::parse(&payload).unwrap();
        assert_eq!(req.frame.request_id, 7);
        assert_eq!(req.frame.total_datagrams, 1);
        assert_eq!(
            req.command,
            Command::Get {
                key: "user:1234".to_string()
            }
        );
        assert_eq!(req.command.key(), "user:1234");
    }

    #[test]
    fn set_request_parses() {
        let mut payload = UdpFrameHeader::single(1).to_bytes().to_vec();
        payload.extend_from_slice(b"set session:9 0 300 128\r\n");
        let req = Request::parse(&payload).unwrap();
        assert_eq!(
            req.command,
            Command::Set {
                key: "session:9".to_string(),
                bytes: 128
            }
        );
        // And a serialize/parse roundtrip keeps the key and byte count.
        let reparsed = Request::parse(&req.to_bytes()).unwrap();
        assert_eq!(reparsed.command, req.command);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Request::parse(&[0u8; 4]).is_err());
        let mut payload = UdpFrameHeader::single(1).to_bytes().to_vec();
        payload.extend_from_slice(b"delete foo\r\n");
        assert!(Request::parse(&payload).is_err());
        let mut payload = UdpFrameHeader::single(1).to_bytes().to_vec();
        payload.extend_from_slice(b"get\r\n");
        assert!(Request::parse(&payload).is_err());
        let mut payload = UdpFrameHeader::single(1).to_bytes().to_vec();
        payload.extend_from_slice(b"set foo 0 0 notanumber\r\n");
        assert!(Request::parse(&payload).is_err());
        let mut payload = UdpFrameHeader::single(1).to_bytes().to_vec();
        payload.extend_from_slice(&[0xff, 0xfe]);
        assert!(Request::parse(&payload).is_err());
    }
}
