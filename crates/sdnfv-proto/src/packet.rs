//! The [`Packet`] type carried through the SDNFV data plane, and builders
//! used by traffic generators and tests.

use std::net::Ipv4Addr;

use crate::error::ProtoError;
use crate::ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN};
use crate::flow::{FlowKey, IpProtocol};
use crate::ipv4::{Ipv4Header, IPV4_HEADER_LEN};
use crate::mac::MacAddr;
use crate::tcp::{TcpHeader, TCP_HEADER_LEN};
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use crate::Result;

/// A logical NIC port / interface identifier on an NF host.
pub type Port = u16;

/// A network packet: a raw Ethernet frame plus the data-plane metadata the
/// NF Manager tracks for it.
///
/// The payload bytes model the shared "huge page" buffer of the paper's
/// zero-copy design; ownership of a `Packet` corresponds to holding its
/// descriptor. Parsing accessors ([`Packet::ethernet`], [`Packet::ipv4`],
/// [`Packet::tcp`], [`Packet::udp`], [`Packet::l4_payload`]) never copy the
/// frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    data: Vec<u8>,
    /// NIC port the packet arrived on.
    pub ingress_port: Port,
    /// Receive timestamp in nanoseconds (set by the RX thread or generator).
    pub timestamp_ns: u64,
}

impl Packet {
    /// Wraps a raw Ethernet frame.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Packet {
            data,
            ingress_port: 0,
            timestamp_ns: 0,
        }
    }

    /// Total frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only access to the raw frame.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw frame (used by NFs that rewrite headers).
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Parses the Ethernet header.
    pub fn ethernet(&self) -> Result<EthernetHeader> {
        EthernetHeader::parse(&self.data)
    }

    /// Parses the IPv4 header, if the frame carries IPv4.
    pub fn ipv4(&self) -> Result<Ipv4Header> {
        let eth = self.ethernet()?;
        if eth.ethertype != EtherType::Ipv4 {
            return Err(ProtoError::WrongProtocol {
                expected: "ipv4",
                found: format!("{:?}", eth.ethertype),
            });
        }
        Ipv4Header::parse(&self.data[ETHERNET_HEADER_LEN..])
    }

    /// Parses the TCP header, if the frame carries TCP over IPv4.
    pub fn tcp(&self) -> Result<TcpHeader> {
        let ip = self.ipv4()?;
        if ip.protocol != IpProtocol::Tcp {
            return Err(ProtoError::WrongProtocol {
                expected: "tcp",
                found: ip.protocol.to_string(),
            });
        }
        TcpHeader::parse(&self.data[ETHERNET_HEADER_LEN + ip.header_len..])
    }

    /// Parses the UDP header, if the frame carries UDP over IPv4.
    pub fn udp(&self) -> Result<UdpHeader> {
        let ip = self.ipv4()?;
        if ip.protocol != IpProtocol::Udp {
            return Err(ProtoError::WrongProtocol {
                expected: "udp",
                found: ip.protocol.to_string(),
            });
        }
        UdpHeader::parse(&self.data[ETHERNET_HEADER_LEN + ip.header_len..])
    }

    /// Byte offset of the transport payload (after the TCP/UDP header).
    pub fn l4_payload_offset(&self) -> Result<usize> {
        let ip = self.ipv4()?;
        let l4_offset = ETHERNET_HEADER_LEN + ip.header_len;
        let hdr_len = match ip.protocol {
            IpProtocol::Tcp => TcpHeader::parse(&self.data[l4_offset..])?.header_len,
            IpProtocol::Udp => {
                UdpHeader::parse(&self.data[l4_offset..])?;
                UDP_HEADER_LEN
            }
            other => {
                return Err(ProtoError::WrongProtocol {
                    expected: "tcp or udp",
                    found: other.to_string(),
                })
            }
        };
        Ok(l4_offset + hdr_len)
    }

    /// The transport (layer-4) payload bytes.
    pub fn l4_payload(&self) -> Result<&[u8]> {
        let offset = self.l4_payload_offset()?;
        Ok(&self.data[offset..])
    }

    /// Mutable access to the transport payload.
    pub fn l4_payload_mut(&mut self) -> Result<&mut [u8]> {
        let offset = self.l4_payload_offset()?;
        Ok(&mut self.data[offset..])
    }

    /// Extracts the flow 5-tuple, if the frame carries IPv4.
    pub fn flow_key(&self) -> Option<FlowKey> {
        FlowKey::from_packet(self)
    }

    /// Rewrites the IPv4 destination address in place and fixes the checksum.
    pub fn set_dst_ip(&mut self, dst: Ipv4Addr) -> Result<()> {
        let mut ip = self.ipv4()?;
        ip.dst = dst;
        ip.write(&mut self.data[ETHERNET_HEADER_LEN..])
    }

    /// Rewrites the IPv4 source address in place and fixes the checksum.
    pub fn set_src_ip(&mut self, src: Ipv4Addr) -> Result<()> {
        let mut ip = self.ipv4()?;
        ip.src = src;
        ip.write(&mut self.data[ETHERNET_HEADER_LEN..])
    }

    /// Rewrites the transport destination port in place.
    pub fn set_dst_port(&mut self, port: u16) -> Result<()> {
        let ip = self.ipv4()?;
        let l4 = ETHERNET_HEADER_LEN + ip.header_len;
        match ip.protocol {
            IpProtocol::Tcp | IpProtocol::Udp => {
                if self.data.len() < l4 + 4 {
                    return Err(ProtoError::Truncated {
                        layer: "l4",
                        needed: l4 + 4,
                        available: self.data.len(),
                    });
                }
                self.data[l4 + 2..l4 + 4].copy_from_slice(&port.to_be_bytes());
                Ok(())
            }
            other => Err(ProtoError::WrongProtocol {
                expected: "tcp or udp",
                found: other.to_string(),
            }),
        }
    }
}

/// Transport protocol selected on a [`PacketBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BuilderProto {
    Udp,
    Tcp,
}

/// Builder for well-formed Ethernet/IPv4/{TCP,UDP} frames.
///
/// Traffic generators, unit tests and the examples use this to synthesize
/// packets of a given flow, payload and size.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    proto: BuilderProto,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    payload: Vec<u8>,
    total_size: Option<usize>,
    ingress_port: Port,
    timestamp_ns: u64,
}

impl PacketBuilder {
    fn new(proto: BuilderProto) -> Self {
        PacketBuilder {
            proto,
            src_mac: MacAddr::new([0x02, 0, 0, 0, 0, 0x01]),
            dst_mac: MacAddr::new([0x02, 0, 0, 0, 0, 0x02]),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 10000,
            dst_port: 80,
            seq: 0,
            payload: Vec::new(),
            total_size: None,
            ingress_port: 0,
            timestamp_ns: 0,
        }
    }

    /// Starts building a UDP packet.
    pub fn udp() -> Self {
        Self::new(BuilderProto::Udp)
    }

    /// Starts building a TCP packet.
    pub fn tcp() -> Self {
        Self::new(BuilderProto::Tcp)
    }

    /// Sets the source MAC address.
    pub fn src_mac(mut self, mac: MacAddr) -> Self {
        self.src_mac = mac;
        self
    }

    /// Sets the destination MAC address.
    pub fn dst_mac(mut self, mac: MacAddr) -> Self {
        self.dst_mac = mac;
        self
    }

    /// Sets the source IPv4 address.
    pub fn src_ip(mut self, ip: impl Into<Ipv4Addr>) -> Self {
        self.src_ip = ip.into();
        self
    }

    /// Sets the destination IPv4 address.
    pub fn dst_ip(mut self, ip: impl Into<Ipv4Addr>) -> Self {
        self.dst_ip = ip.into();
        self
    }

    /// Sets the source transport port.
    pub fn src_port(mut self, port: u16) -> Self {
        self.src_port = port;
        self
    }

    /// Sets the destination transport port.
    pub fn dst_port(mut self, port: u16) -> Self {
        self.dst_port = port;
        self
    }

    /// Sets the TCP sequence number (ignored for UDP).
    pub fn seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the transport payload.
    pub fn payload(mut self, payload: &[u8]) -> Self {
        self.payload = payload.to_vec();
        self
    }

    /// Pads (with zero bytes of payload) so the final frame is exactly
    /// `size` bytes, if `size` is larger than the natural frame length.
    pub fn total_size(mut self, size: usize) -> Self {
        self.total_size = Some(size);
        self
    }

    /// Sets the ingress NIC port recorded in the packet metadata.
    pub fn ingress_port(mut self, port: Port) -> Self {
        self.ingress_port = port;
        self
    }

    /// Sets the receive timestamp recorded in the packet metadata.
    pub fn timestamp_ns(mut self, ts: u64) -> Self {
        self.timestamp_ns = ts;
        self
    }

    /// Builds the frame.
    pub fn build(self) -> Packet {
        let l4_header_len = match self.proto {
            BuilderProto::Udp => UDP_HEADER_LEN,
            BuilderProto::Tcp => TCP_HEADER_LEN,
        };
        let natural = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + l4_header_len + self.payload.len();
        let mut payload = self.payload;
        if let Some(size) = self.total_size {
            if size > natural {
                payload.resize(payload.len() + (size - natural), 0);
            }
        }

        let ip_proto = match self.proto {
            BuilderProto::Udp => IpProtocol::Udp,
            BuilderProto::Tcp => IpProtocol::Tcp,
        };
        let l4_len = l4_header_len + payload.len();
        let total_len = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + l4_len;
        let mut data = vec![0u8; total_len];

        EthernetHeader::new(self.dst_mac, self.src_mac, EtherType::Ipv4)
            .write(&mut data)
            .expect("buffer sized for ethernet header");
        Ipv4Header::new(self.src_ip, self.dst_ip, ip_proto, l4_len)
            .write(&mut data[ETHERNET_HEADER_LEN..])
            .expect("buffer sized for ipv4 header");

        let l4_off = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
        match self.proto {
            BuilderProto::Udp => {
                UdpHeader::new(self.src_port, self.dst_port, payload.len())
                    .write(&mut data[l4_off..])
                    .expect("buffer sized for udp header");
            }
            BuilderProto::Tcp => {
                TcpHeader {
                    src_port: self.src_port,
                    dst_port: self.dst_port,
                    seq: self.seq,
                    ..TcpHeader::new(self.src_port, self.dst_port, self.seq)
                }
                .write(&mut data[l4_off..])
                .expect("buffer sized for tcp header");
            }
        }
        data[l4_off + l4_header_len..].copy_from_slice(&payload);

        Packet {
            data,
            ingress_port: self.ingress_port,
            timestamp_ns: self.timestamp_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_packet_layers_parse() {
        let pkt = PacketBuilder::udp()
            .src_ip([10, 1, 1, 1])
            .dst_ip([10, 1, 1, 2])
            .src_port(1000)
            .dst_port(2000)
            .payload(b"payload-bytes")
            .ingress_port(3)
            .timestamp_ns(99)
            .build();
        assert_eq!(pkt.ingress_port, 3);
        assert_eq!(pkt.timestamp_ns, 99);
        assert_eq!(pkt.ethernet().unwrap().ethertype, EtherType::Ipv4);
        let ip = pkt.ipv4().unwrap();
        assert_eq!(ip.protocol, IpProtocol::Udp);
        assert_eq!(ip.src, Ipv4Addr::new(10, 1, 1, 1));
        let udp = pkt.udp().unwrap();
        assert_eq!(udp.dst_port, 2000);
        assert_eq!(pkt.l4_payload().unwrap(), b"payload-bytes");
        assert!(pkt.tcp().is_err());
    }

    #[test]
    fn tcp_packet_layers_parse() {
        let pkt = PacketBuilder::tcp()
            .src_port(5555)
            .dst_port(80)
            .seq(1234)
            .payload(b"GET / HTTP/1.1\r\n\r\n")
            .build();
        let tcp = pkt.tcp().unwrap();
        assert_eq!(tcp.seq, 1234);
        assert_eq!(tcp.src_port, 5555);
        assert!(pkt.udp().is_err());
        assert!(pkt.l4_payload().unwrap().starts_with(b"GET"));
    }

    #[test]
    fn total_size_pads_frame() {
        let pkt = PacketBuilder::udp().payload(b"x").total_size(512).build();
        assert_eq!(pkt.len(), 512);
        // Smaller-than-natural sizes are ignored.
        let pkt = PacketBuilder::udp()
            .payload(b"abcdef")
            .total_size(10)
            .build();
        assert_eq!(
            pkt.len(),
            ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + 6
        );
    }

    #[test]
    fn ipv4_total_length_matches_frame() {
        let pkt = PacketBuilder::udp().payload(&[0u8; 64]).build();
        let ip = pkt.ipv4().unwrap();
        assert_eq!(ip.total_length as usize, pkt.len() - ETHERNET_HEADER_LEN);
    }

    #[test]
    fn rewrite_dst_ip_keeps_checksum_valid() {
        let mut pkt = PacketBuilder::udp().build();
        pkt.set_dst_ip(Ipv4Addr::new(8, 8, 8, 8)).unwrap();
        assert_eq!(pkt.ipv4().unwrap().dst, Ipv4Addr::new(8, 8, 8, 8));
        assert!(crate::ipv4::Ipv4Header::checksum_valid(
            &pkt.data()[ETHERNET_HEADER_LEN..]
        ));
    }

    #[test]
    fn rewrite_src_ip_and_port() {
        let mut pkt = PacketBuilder::udp().dst_port(1111).build();
        pkt.set_src_ip(Ipv4Addr::new(9, 9, 9, 9)).unwrap();
        pkt.set_dst_port(2222).unwrap();
        assert_eq!(pkt.ipv4().unwrap().src, Ipv4Addr::new(9, 9, 9, 9));
        assert_eq!(pkt.udp().unwrap().dst_port, 2222);
        assert_eq!(pkt.flow_key().unwrap().dst_port, 2222);
    }

    #[test]
    fn non_ip_frame_reports_wrong_protocol() {
        let eth = EthernetHeader::new(MacAddr::ZERO, MacAddr::ZERO, EtherType::Arp);
        let mut data = eth.to_bytes().to_vec();
        data.extend_from_slice(&[0u8; 28]);
        let pkt = Packet::from_bytes(data);
        assert!(pkt.ipv4().is_err());
        assert!(pkt.flow_key().is_none());
    }

    #[test]
    fn payload_mut_allows_in_place_edit() {
        let mut pkt = PacketBuilder::udp().payload(b"abcd").build();
        pkt.l4_payload_mut().unwrap()[0] = b'Z';
        assert_eq!(pkt.l4_payload().unwrap(), b"Zbcd");
    }
}
