//! TCP header parsing and serialization.

use serde::{Deserialize, Serialize};

use crate::error::ProtoError;
use crate::Result;

/// Minimum length of a TCP header (no options) in bytes.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;

    /// Returns `true` if the SYN bit is set.
    pub fn syn(&self) -> bool {
        self.0 & Self::SYN != 0
    }

    /// Returns `true` if the ACK bit is set.
    pub fn ack(&self) -> bool {
        self.0 & Self::ACK != 0
    }

    /// Returns `true` if the FIN bit is set.
    pub fn fin(&self) -> bool {
        self.0 & Self::FIN != 0
    }

    /// Returns `true` if the RST bit is set.
    pub fn rst(&self) -> bool {
        self.0 & Self::RST != 0
    }
}

/// A parsed TCP header (options preserved only as a length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum as carried in the packet (not verified).
    pub checksum: u16,
    /// Header length in bytes including options.
    pub header_len: usize,
}

impl TcpHeader {
    /// Creates a data-segment header (ACK+PSH) with sensible defaults.
    pub fn new(src_port: u16, dst_port: u16, seq: u32) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
            window: 65535,
            checksum: 0,
            header_len: TCP_HEADER_LEN,
        }
    }

    /// Parses a TCP header from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(ProtoError::Truncated {
                layer: "tcp",
                needed: TCP_HEADER_LEN,
                available: buf.len(),
            });
        }
        let data_offset = (buf[12] >> 4) as usize * 4;
        if data_offset < TCP_HEADER_LEN {
            return Err(ProtoError::InvalidField {
                layer: "tcp",
                field: "data offset",
            });
        }
        if buf.len() < data_offset {
            return Err(ProtoError::Truncated {
                layer: "tcp",
                needed: data_offset,
                available: buf.len(),
            });
        }
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            checksum: u16::from_be_bytes([buf[16], buf[17]]),
            header_len: data_offset,
        })
    }

    /// Serializes the header (without options) into [`TCP_HEADER_LEN`] bytes.
    pub fn to_bytes(&self) -> [u8; TCP_HEADER_LEN] {
        let mut out = [0u8; TCP_HEADER_LEN];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = 0x50; // data offset 5 words
        out[13] = self.flags.0;
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        out
    }

    /// Writes the header into the first [`TCP_HEADER_LEN`] bytes of `buf`.
    pub fn write(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(ProtoError::Truncated {
                layer: "tcp",
                needed: TCP_HEADER_LEN,
                available: buf.len(),
            });
        }
        buf[..TCP_HEADER_LEN].copy_from_slice(&self.to_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut hdr = TcpHeader::new(8080, 443, 42);
        hdr.ack = 77;
        hdr.window = 1024;
        let parsed = TcpHeader::parse(&hdr.to_bytes()).unwrap();
        assert_eq!(parsed, hdr);
        assert!(parsed.flags.ack());
        assert!(!parsed.flags.syn());
    }

    #[test]
    fn flags_accessors() {
        let f = TcpFlags(TcpFlags::SYN | TcpFlags::FIN);
        assert!(f.syn());
        assert!(f.fin());
        assert!(!f.ack());
        assert!(!f.rst());
        assert!(TcpFlags(TcpFlags::RST).rst());
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(TcpHeader::parse(&[0u8; 12]).is_err());
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut bytes = TcpHeader::new(1, 2, 3).to_bytes();
        bytes[12] = 0x20; // 2 words = 8 bytes, below minimum
        assert!(TcpHeader::parse(&bytes).is_err());
    }

    #[test]
    fn parses_options_length() {
        // Build a 24-byte header: data offset 6 words.
        let mut bytes = vec![0u8; 24];
        bytes[..20].copy_from_slice(&TcpHeader::new(1, 2, 3).to_bytes());
        bytes[12] = 0x60;
        let parsed = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed.header_len, 24);
    }
}
