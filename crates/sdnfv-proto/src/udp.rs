//! UDP header parsing and serialization.

use serde::{Deserialize, Serialize};

use crate::error::ProtoError;
use crate::Result;

/// Length of a UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of the UDP header plus payload in bytes.
    pub length: u16,
    /// Checksum (zero means "not computed", which is legal for IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Creates a header for a datagram with `payload_len` bytes of payload.
    ///
    /// The checksum is left at zero (valid for UDP over IPv4).
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
            checksum: 0,
        }
    }

    /// Parses a UDP header from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(ProtoError::Truncated {
                layer: "udp",
                needed: UDP_HEADER_LEN,
                available: buf.len(),
            });
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
            checksum: u16::from_be_bytes([buf[6], buf[7]]),
        })
    }

    /// Serializes the header into exactly [`UDP_HEADER_LEN`] bytes.
    pub fn to_bytes(&self) -> [u8; UDP_HEADER_LEN] {
        let mut out = [0u8; UDP_HEADER_LEN];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.length.to_be_bytes());
        out[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        out
    }

    /// Writes the header into the first [`UDP_HEADER_LEN`] bytes of `buf`.
    pub fn write(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(ProtoError::Truncated {
                layer: "udp",
                needed: UDP_HEADER_LEN,
                available: buf.len(),
            });
        }
        buf[..UDP_HEADER_LEN].copy_from_slice(&self.to_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = UdpHeader::new(1111, 2222, 100);
        let parsed = UdpHeader::parse(&hdr.to_bytes()).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(parsed.length, 108);
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(UdpHeader::parse(&[0u8; 4]).is_err());
        let hdr = UdpHeader::new(1, 2, 0);
        let mut buf = [0u8; 4];
        assert!(hdr.write(&mut buf).is_err());
    }

    #[test]
    fn write_into_larger_buffer() {
        let hdr = UdpHeader::new(53, 12345, 16);
        let mut buf = vec![0u8; 32];
        hdr.write(&mut buf).unwrap();
        assert_eq!(UdpHeader::parse(&buf).unwrap(), hdr);
    }
}
