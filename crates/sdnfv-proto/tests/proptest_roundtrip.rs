//! Property-based tests: parse/serialize round-trips and parser robustness.

#![cfg(feature = "proptest")]
// Gated off by default: the real `proptest` crate is unavailable in the
// offline build environment (see shims/README.md and ROADMAP.md).
use proptest::prelude::*;
use sdnfv_proto::ethernet::{EtherType, EthernetHeader};
use sdnfv_proto::flow::{FlowKey, IpProtocol};
use sdnfv_proto::ipv4::Ipv4Header;
use sdnfv_proto::mac::MacAddr;
use sdnfv_proto::memcached;
use sdnfv_proto::packet::{Packet, PacketBuilder};
use sdnfv_proto::tcp::TcpHeader;
use sdnfv_proto::udp::UdpHeader;
use std::net::Ipv4Addr;

proptest! {
    #[test]
    fn ethernet_roundtrip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), et in any::<u16>()) {
        let hdr = EthernetHeader::new(MacAddr::new(dst), MacAddr::new(src), EtherType::from(et));
        let parsed = EthernetHeader::parse(&hdr.to_bytes()).unwrap();
        prop_assert_eq!(parsed, hdr);
    }

    #[test]
    fn ipv4_roundtrip_and_checksum(
        src in any::<u32>(),
        dst in any::<u32>(),
        proto in any::<u8>(),
        payload_len in 0usize..1400,
    ) {
        let hdr = Ipv4Header::new(
            Ipv4Addr::from(src),
            Ipv4Addr::from(dst),
            IpProtocol::from(proto),
            payload_len,
        );
        let bytes = hdr.to_bytes();
        let parsed = Ipv4Header::parse(&bytes).unwrap();
        prop_assert_eq!(parsed.src, hdr.src);
        prop_assert_eq!(parsed.dst, hdr.dst);
        prop_assert_eq!(parsed.protocol.value(), proto);
        prop_assert!(Ipv4Header::checksum_valid(&bytes));
    }

    #[test]
    fn udp_roundtrip(src in any::<u16>(), dst in any::<u16>(), len in 0usize..60_000) {
        let hdr = UdpHeader::new(src, dst, len.min(u16::MAX as usize - 8));
        prop_assert_eq!(UdpHeader::parse(&hdr.to_bytes()).unwrap(), hdr);
    }

    #[test]
    fn tcp_roundtrip(src in any::<u16>(), dst in any::<u16>(), seq in any::<u32>(), ack in any::<u32>()) {
        let mut hdr = TcpHeader::new(src, dst, seq);
        hdr.ack = ack;
        prop_assert_eq!(TcpHeader::parse(&hdr.to_bytes()).unwrap(), hdr);
    }

    #[test]
    fn built_packets_always_parse(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        is_tcp in any::<bool>(),
    ) {
        let builder = if is_tcp { PacketBuilder::tcp() } else { PacketBuilder::udp() };
        let pkt = builder
            .src_ip(Ipv4Addr::from(src))
            .dst_ip(Ipv4Addr::from(dst))
            .src_port(sport)
            .dst_port(dport)
            .payload(&payload)
            .build();
        let key = FlowKey::from_packet(&pkt).expect("built packets carry IPv4");
        prop_assert_eq!(key.src_ip, Ipv4Addr::from(src));
        prop_assert_eq!(key.dst_ip, Ipv4Addr::from(dst));
        prop_assert_eq!(key.src_port, sport);
        prop_assert_eq!(key.dst_port, dport);
        prop_assert_eq!(pkt.l4_payload().unwrap(), &payload[..]);
        // Reversing twice is the identity.
        prop_assert_eq!(key.reversed().reversed(), key);
    }

    #[test]
    fn padded_packets_have_exact_size(size in 60usize..1500) {
        let pkt = PacketBuilder::udp().total_size(size).build();
        prop_assert!(pkt.len() >= 42);
        if size >= 42 {
            prop_assert_eq!(pkt.len(), size.max(42));
        }
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let pkt = Packet::from_bytes(data.clone());
        let _ = pkt.ethernet();
        let _ = pkt.ipv4();
        let _ = pkt.tcp();
        let _ = pkt.udp();
        let _ = pkt.l4_payload();
        let _ = pkt.flow_key();
        let _ = sdnfv_proto::http::HttpRequest::parse(&data);
        let _ = sdnfv_proto::http::HttpResponse::parse(&data);
        let _ = memcached::Request::parse(&data);
    }

    #[test]
    fn memcached_get_roundtrip(id in any::<u16>(), key in "[a-zA-Z0-9:_]{1,64}") {
        let payload = memcached::get_request(id, &key);
        let req = memcached::Request::parse(&payload).unwrap();
        prop_assert_eq!(req.frame.request_id, id);
        prop_assert_eq!(req.command.key(), key.as_str());
    }

    #[test]
    fn stable_hash_is_deterministic(src in any::<u32>(), dst in any::<u32>(), sp in any::<u16>(), dp in any::<u16>()) {
        let key = FlowKey::new(Ipv4Addr::from(src), Ipv4Addr::from(dst), sp, dp, IpProtocol::Tcp);
        prop_assert_eq!(key.stable_hash(), key.stable_hash());
    }
}
