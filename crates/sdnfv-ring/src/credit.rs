//! Credit-based admission control for a bounded pipeline stage.
//!
//! A [`CreditGate`] is a shared counter of "packet slots" a pipeline shard is
//! willing to hold in flight. The ingress side acquires one credit per packet
//! before admitting it; the egress side releases the credit when the packet
//! reaches a terminal state (transmitted, dropped by a verdict, punted).
//! When no credits are available the ingress side *throttles* — it hands the
//! packet back to the caller instead of silently dropping it inside the
//! pipeline, which is the backpressure scheme the sharded
//! [`sdnfv-dataplane`](../sdnfv_dataplane/index.html) runtime builds on.
//!
//! The gate is a single atomic: `try_acquire` is a CAS loop, `release` a
//! fetch-add. Any number of threads may acquire and release concurrently.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared pool of admission credits (see the module docs).
#[derive(Debug)]
pub struct CreditGate {
    capacity: usize,
    available: AtomicUsize,
}

impl CreditGate {
    /// Creates a gate holding `capacity` credits, all available.
    pub fn new(capacity: usize) -> Self {
        CreditGate {
            capacity,
            available: AtomicUsize::new(capacity),
        }
    }

    /// Total credits the gate was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Credits currently available for acquisition.
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Acquire)
    }

    /// Credits currently held (packets in flight behind this gate).
    pub fn in_flight(&self) -> usize {
        self.capacity.saturating_sub(self.available())
    }

    /// Attempts to take `n` credits at once; returns `false` (taking none)
    /// if fewer than `n` are available.
    pub fn try_acquire(&self, n: usize) -> bool {
        let mut current = self.available.load(Ordering::Acquire);
        loop {
            if current < n {
                return false;
            }
            match self.available.compare_exchange_weak(
                current,
                current - n,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Returns `n` credits to the pool.
    ///
    /// Releasing more credits than were acquired is a bookkeeping bug in the
    /// caller; debug builds assert on it.
    pub fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let previous = self.available.fetch_add(n, Ordering::AcqRel);
        debug_assert!(
            previous + n <= self.capacity,
            "credit release overflow: {previous} + {n} > capacity {}",
            self.capacity
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_and_release_round_trip() {
        let gate = CreditGate::new(4);
        assert_eq!(gate.capacity(), 4);
        assert_eq!(gate.available(), 4);
        assert!(gate.try_acquire(3));
        assert_eq!(gate.available(), 1);
        assert_eq!(gate.in_flight(), 3);
        assert!(!gate.try_acquire(2), "only one credit left");
        assert!(gate.try_acquire(1));
        assert!(!gate.try_acquire(1), "exhausted");
        gate.release(4);
        assert_eq!(gate.available(), 4);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_sized_operations_are_no_ops() {
        let gate = CreditGate::new(2);
        assert!(gate.try_acquire(0));
        gate.release(0);
        assert_eq!(gate.available(), 2);
    }

    #[test]
    fn concurrent_acquire_release_conserves_credits() {
        let gate = Arc::new(CreditGate::new(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gate = Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                let mut acquired = 0u64;
                for _ in 0..10_000 {
                    if gate.try_acquire(1) {
                        acquired += 1;
                        gate.release(1);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                acquired
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(gate.available(), 64, "all credits returned");
    }
}
