//! Credit-based admission control for a bounded pipeline stage.
//!
//! A [`CreditGate`] is a shared counter of "packet slots" a pipeline shard is
//! willing to hold in flight. The ingress side acquires one credit per packet
//! before admitting it; the egress side releases the credit when the packet
//! reaches a terminal state (transmitted, dropped by a verdict, punted).
//! When no credits are available the ingress side *throttles* — it hands the
//! packet back to the caller instead of silently dropping it inside the
//! pipeline, which is the backpressure scheme the sharded
//! [`sdnfv-dataplane`](../sdnfv_dataplane/index.html) runtime builds on.
//!
//! The gate is a pair of atomics: `try_acquire` is a CAS loop, `release` a
//! fetch-add. Any number of threads may acquire and release concurrently.
//! The budget is **elastic**: [`CreditGate::resize`] grows or shrinks the
//! capacity while packets are in flight — shrinking lets the available
//! count go temporarily negative, so outstanding packets drain normally and
//! the gate converges to the new budget as their credits come back.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};

/// A shared, resizable pool of admission credits (see the module docs).
#[derive(Debug)]
pub struct CreditGate {
    capacity: AtomicUsize,
    /// Credits currently available. Negative while a shrink waits for
    /// in-flight packets to drain.
    available: AtomicIsize,
}

impl CreditGate {
    /// Creates a gate holding `capacity` credits, all available.
    pub fn new(capacity: usize) -> Self {
        CreditGate {
            capacity: AtomicUsize::new(capacity),
            available: AtomicIsize::new(capacity as isize),
        }
    }

    /// The gate's current credit budget.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    /// Credits currently available for acquisition (0 while a shrink is
    /// draining).
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Acquire).max(0) as usize
    }

    /// Credits currently held (packets in flight behind this gate).
    pub fn in_flight(&self) -> usize {
        let capacity = self.capacity.load(Ordering::Acquire) as isize;
        let available = self.available.load(Ordering::Acquire);
        (capacity - available).max(0) as usize
    }

    /// Attempts to take `n` credits at once; returns `false` (taking none)
    /// if fewer than `n` are available.
    pub fn try_acquire(&self, n: usize) -> bool {
        let wanted = n as isize;
        let mut current = self.available.load(Ordering::Acquire);
        loop {
            if current < wanted {
                return false;
            }
            match self.available.compare_exchange_weak(
                current,
                current - wanted,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Returns `n` credits to the pool.
    ///
    /// Releasing more credits than were acquired is a bookkeeping bug in the
    /// caller; debug builds assert on it.
    pub fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let previous = self.available.fetch_add(n as isize, Ordering::AcqRel);
        debug_assert!(
            previous + n as isize <= self.capacity.load(Ordering::Acquire) as isize,
            "credit release overflow: {previous} + {n} > capacity {}",
            self.capacity.load(Ordering::Acquire)
        );
    }

    /// Changes the credit budget to `new_capacity` without interrupting
    /// traffic.
    ///
    /// Growing hands out the extra credits immediately. Shrinking withdraws
    /// credits that may currently be held by in-flight packets: the
    /// available count goes negative and recovers as those packets reach a
    /// terminal state and release — no packet is dropped and no new packet
    /// is admitted past the new budget.
    ///
    /// Concurrent `resize` calls race each other (last write to the capacity
    /// wins); the data-plane runtime serializes them on one control thread.
    pub fn resize(&self, new_capacity: usize) {
        // Ordering matters for the `release` overflow assert: when growing,
        // publish the larger capacity before handing out credits; when
        // shrinking, withdraw credits before publishing the smaller
        // capacity. Either way the assert's bound is never transiently
        // tighter than the credits actually outstanding.
        let old = self.capacity.load(Ordering::Acquire);
        let delta = new_capacity as isize - old as isize;
        if delta > 0 {
            self.capacity.store(new_capacity, Ordering::Release);
            self.available.fetch_add(delta, Ordering::AcqRel);
        } else if delta < 0 {
            self.available.fetch_add(delta, Ordering::AcqRel);
            self.capacity.store(new_capacity, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_and_release_round_trip() {
        let gate = CreditGate::new(4);
        assert_eq!(gate.capacity(), 4);
        assert_eq!(gate.available(), 4);
        assert!(gate.try_acquire(3));
        assert_eq!(gate.available(), 1);
        assert_eq!(gate.in_flight(), 3);
        assert!(!gate.try_acquire(2), "only one credit left");
        assert!(gate.try_acquire(1));
        assert!(!gate.try_acquire(1), "exhausted");
        gate.release(4);
        assert_eq!(gate.available(), 4);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_sized_operations_are_no_ops() {
        let gate = CreditGate::new(2);
        assert!(gate.try_acquire(0));
        gate.release(0);
        assert_eq!(gate.available(), 2);
    }

    #[test]
    fn grow_hands_out_credits_immediately() {
        let gate = CreditGate::new(2);
        assert!(gate.try_acquire(2));
        assert!(!gate.try_acquire(1));
        gate.resize(5);
        assert_eq!(gate.capacity(), 5);
        assert_eq!(gate.available(), 3);
        assert_eq!(gate.in_flight(), 2);
        assert!(gate.try_acquire(3));
    }

    #[test]
    fn shrink_drains_through_in_flight_packets() {
        let gate = CreditGate::new(8);
        assert!(gate.try_acquire(6)); // 6 in flight, 2 available
        gate.resize(4);
        assert_eq!(gate.capacity(), 4);
        // 6 in flight against a budget of 4: nothing available, nothing
        // admitted until the overshoot drains.
        assert_eq!(gate.available(), 0);
        assert_eq!(gate.in_flight(), 6);
        assert!(!gate.try_acquire(1));
        gate.release(2);
        assert_eq!(gate.available(), 0, "still one over budget");
        assert!(!gate.try_acquire(1));
        gate.release(4);
        assert_eq!(gate.available(), 4);
        assert_eq!(gate.in_flight(), 0);
        assert!(gate.try_acquire(4));
    }

    #[test]
    fn shrink_with_idle_gate_takes_effect_immediately() {
        let gate = CreditGate::new(8);
        gate.resize(3);
        assert_eq!(gate.available(), 3);
        assert!(gate.try_acquire(3));
        assert!(!gate.try_acquire(1));
        gate.release(3);
        assert_eq!(gate.available(), 3);
    }

    #[test]
    fn concurrent_acquire_release_conserves_credits() {
        let gate = Arc::new(CreditGate::new(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gate = Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                let mut acquired = 0u64;
                for _ in 0..10_000 {
                    if gate.try_acquire(1) {
                        acquired += 1;
                        gate.release(1);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                acquired
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(gate.available(), 64, "all credits returned");
    }
}
