//! Credit-based admission control for a bounded pipeline stage.
//!
//! A [`CreditGate`] is a shared counter of "packet slots" a pipeline shard is
//! willing to hold in flight. The ingress side acquires one credit per packet
//! before admitting it; the egress side releases the credit when the packet
//! reaches a terminal state (transmitted, dropped by a verdict, punted).
//! When no credits are available the ingress side *throttles* — it hands the
//! packet back to the caller instead of silently dropping it inside the
//! pipeline, which is the backpressure scheme the sharded
//! [`sdnfv-dataplane`](../sdnfv_dataplane/index.html) runtime builds on.
//!
//! The gate is a pair of atomics: `try_acquire` is a CAS loop, `release` a
//! fetch-add. Any number of threads may acquire and release concurrently.
//! The budget is **elastic**: [`CreditGate::resize`] grows or shrinks the
//! capacity while packets are in flight — shrinking lets the available
//! count go temporarily negative, so outstanding packets drain normally and
//! the gate converges to the new budget as their credits come back.

use crate::sync::{AtomicIsize, AtomicUsize, Ordering};

/// A shared, resizable pool of admission credits (see the module docs).
#[derive(Debug)]
pub struct CreditGate {
    capacity: AtomicUsize,
    /// Credits currently available. Negative while a shrink waits for
    /// in-flight packets to drain.
    available: AtomicIsize,
    /// High-watermark of every capacity this gate has ever had. The
    /// `release` overflow assert checks against this instead of the live
    /// capacity: a concurrent shrink can slip between `release`'s fetch-add
    /// and its capacity load (no ordering prevents that — it is a
    /// time-of-check race, found by the model checker's racing
    /// release-vs-resize check), but nothing ever lowers the watermark, so
    /// the bound it gives can never be transiently tighter than the credits
    /// legitimately outstanding.
    peak_capacity: AtomicUsize,
}

impl CreditGate {
    /// Creates a gate holding `capacity` credits, all available.
    pub fn new(capacity: usize) -> Self {
        CreditGate {
            capacity: AtomicUsize::new(capacity),
            available: AtomicIsize::new(capacity as isize),
            peak_capacity: AtomicUsize::new(capacity),
        }
    }

    /// The gate's current credit budget.
    pub fn capacity(&self) -> usize {
        // ORDER: Relaxed — a monotonic-enough gauge for telemetry; callers
        // that need a capacity consistent with credit movements get it via
        // the happens-before the AcqRel credit RMWs below already establish.
        // (Downgraded from Acquire; the model checker's racing-resize check
        // passes with Relaxed.)
        self.capacity.load(Ordering::Relaxed)
    }

    /// Credits currently available for acquisition (0 while a shrink is
    /// draining).
    pub fn available(&self) -> usize {
        // ORDER: Relaxed — gauge; see `capacity`.
        self.available.load(Ordering::Relaxed).max(0) as usize
    }

    /// Credits currently held (packets in flight behind this gate).
    pub fn in_flight(&self) -> usize {
        // ORDER: Relaxed — gauge; the two loads are not a consistent pair
        // under concurrent resize either way (the max(0) clamp absorbs the
        // transient), so stronger orderings buy nothing.
        let capacity = self.capacity.load(Ordering::Relaxed) as isize;
        // ORDER: Relaxed — same gauge argument as the load above.
        let available = self.available.load(Ordering::Relaxed);
        (capacity - available).max(0) as usize
    }

    /// Attempts to take `n` credits at once; returns `false` (taking none)
    /// if fewer than `n` are available.
    pub fn try_acquire(&self, n: usize) -> bool {
        let wanted = n as isize;
        // ORDER: Relaxed — this value is only a CAS hint; the CAS revalidates
        // it, so a stale read costs one retry, never correctness. (Downgraded
        // from Acquire; model-checked.)
        let mut current = self.available.load(Ordering::Relaxed);
        loop {
            if current < wanted {
                return false;
            }
            // ORDER: success AcqRel — the acquire half folds the releasing
            // threads' and resizer's history into this thread (so a later
            // `release` computes its overflow assert against a capacity at
            // least as new as the credits just consumed); the release half
            // keeps this RMW a link in the location's release sequence for
            // the next acquirer. Failure Relaxed — the returned value is
            // only the next CAS hint (downgraded from Acquire;
            // model-checked).
            match self.available.compare_exchange_weak(
                current,
                current - wanted,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Returns `n` credits to the pool.
    ///
    /// Releasing more credits than were acquired is a bookkeeping bug in the
    /// caller; debug builds assert on it.
    pub fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        // ORDER: AcqRel — the release half publishes this packet's terminal
        // state to the next acquirer of the credit; the acquire half
        // synchronizes with `resize` (whose own AcqRel fetch-add on this
        // location carries the capacity update), which is what makes the
        // assert below sound.
        let previous = self.available.fetch_add(n as isize, Ordering::AcqRel);
        // The bound is the capacity *high-watermark*, not the live capacity:
        // asserting against the live value is racy — the model checker found
        // a counterexample where a full shrink executes between the
        // fetch-add above and the capacity load, making a correct release
        // look like an overflow. No ordering fixes a time-of-check race;
        // the monotonic watermark does.
        // ORDER: Relaxed — sound because the AcqRel fetch-add above
        // happens-after any grow that handed out the credits being returned
        // (grow raises the watermark *before* its fetch-add), so coherence
        // forces even a relaxed load to observe the raised watermark; and
        // nothing ever lowers it. (Model-checked: the racing
        // release-vs-resize check proves the assert never fires.)
        debug_assert!(
            previous + n as isize <= self.peak_capacity.load(Ordering::Relaxed) as isize,
            "credit release overflow: {previous} + {n} > peak capacity {}",
            self.peak_capacity.load(Ordering::Relaxed)
        );
    }

    /// Changes the credit budget to `new_capacity` without interrupting
    /// traffic.
    ///
    /// Growing hands out the extra credits immediately. Shrinking withdraws
    /// credits that may currently be held by in-flight packets: the
    /// available count goes negative and recovers as those packets reach a
    /// terminal state and release — no packet is dropped and no new packet
    /// is admitted past the new budget.
    ///
    /// Concurrent `resize` calls race each other (last write to the capacity
    /// wins); the data-plane runtime serializes them on one control thread.
    pub fn resize(&self, new_capacity: usize) {
        // Ordering matters for the `release` overflow assert: when growing,
        // publish the larger capacity before handing out credits; when
        // shrinking, withdraw credits before publishing the smaller
        // capacity. Either way the assert's bound is never transiently
        // tighter than the credits actually outstanding.
        // ORDER: Relaxed — resize calls are serialized by the caller (see
        // above); the serializing handoff provides the happens-before that
        // makes this load see the previous resize's store, and coherence
        // does the rest. (Downgraded from Acquire; model-checked.)
        let old = self.capacity.load(Ordering::Relaxed);
        let delta = new_capacity as isize - old as isize;
        // ORDER: Relaxed — raised *before* any credits from a grow are
        // handed out (sequenced before the fetch-add below), so a `release`
        // whose RMW happens-after the grow observes the raised watermark by
        // coherence; the RMW's atomicity keeps concurrent resizes from
        // losing a max.
        self.peak_capacity
            .fetch_max(new_capacity, Ordering::Relaxed);
        if delta > 0 {
            // ORDER: Release store sequenced before the AcqRel fetch-add, so
            // any thread whose credit RMW happens-after ours also sees the
            // grown capacity (the `release` assert relies on this order).
            self.capacity.store(new_capacity, Ordering::Release);
            // ORDER: AcqRel — hands out the new credits while keeping this
            // RMW a release-sequence link for concurrent acquirers.
            self.available.fetch_add(delta, Ordering::AcqRel);
        } else if delta < 0 {
            // ORDER: withdraw first (AcqRel keeps the RMW chain intact),
            // publish the smaller capacity after — a concurrent `release`
            // may still read the old, larger capacity, which only loosens
            // its overflow bound.
            self.available.fetch_add(delta, Ordering::AcqRel);
            // ORDER: Release — pairs with the acquire half of the credit
            // RMWs so later credit movements see the shrunken budget.
            self.capacity.store(new_capacity, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_and_release_round_trip() {
        let gate = CreditGate::new(4);
        assert_eq!(gate.capacity(), 4);
        assert_eq!(gate.available(), 4);
        assert!(gate.try_acquire(3));
        assert_eq!(gate.available(), 1);
        assert_eq!(gate.in_flight(), 3);
        assert!(!gate.try_acquire(2), "only one credit left");
        assert!(gate.try_acquire(1));
        assert!(!gate.try_acquire(1), "exhausted");
        gate.release(4);
        assert_eq!(gate.available(), 4);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_sized_operations_are_no_ops() {
        let gate = CreditGate::new(2);
        assert!(gate.try_acquire(0));
        gate.release(0);
        assert_eq!(gate.available(), 2);
    }

    #[test]
    fn grow_hands_out_credits_immediately() {
        let gate = CreditGate::new(2);
        assert!(gate.try_acquire(2));
        assert!(!gate.try_acquire(1));
        gate.resize(5);
        assert_eq!(gate.capacity(), 5);
        assert_eq!(gate.available(), 3);
        assert_eq!(gate.in_flight(), 2);
        assert!(gate.try_acquire(3));
    }

    #[test]
    fn shrink_drains_through_in_flight_packets() {
        let gate = CreditGate::new(8);
        assert!(gate.try_acquire(6)); // 6 in flight, 2 available
        gate.resize(4);
        assert_eq!(gate.capacity(), 4);
        // 6 in flight against a budget of 4: nothing available, nothing
        // admitted until the overshoot drains.
        assert_eq!(gate.available(), 0);
        assert_eq!(gate.in_flight(), 6);
        assert!(!gate.try_acquire(1));
        gate.release(2);
        assert_eq!(gate.available(), 0, "still one over budget");
        assert!(!gate.try_acquire(1));
        gate.release(4);
        assert_eq!(gate.available(), 4);
        assert_eq!(gate.in_flight(), 0);
        assert!(gate.try_acquire(4));
    }

    #[test]
    fn shrink_with_idle_gate_takes_effect_immediately() {
        let gate = CreditGate::new(8);
        gate.resize(3);
        assert_eq!(gate.available(), 3);
        assert!(gate.try_acquire(3));
        assert!(!gate.try_acquire(1));
        gate.release(3);
        assert_eq!(gate.available(), 3);
    }

    #[test]
    fn concurrent_acquire_release_conserves_credits() {
        let gate = Arc::new(CreditGate::new(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gate = Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                let mut acquired = 0u64;
                for _ in 0..10_000 {
                    if gate.try_acquire(1) {
                        acquired += 1;
                        gate.release(1);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                acquired
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(gate.available(), 64, "all credits returned");
    }
}
