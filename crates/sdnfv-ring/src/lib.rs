//! Lock-free communication primitives for the SDNFV data plane.
//!
//! The paper's NF Manager exchanges packets with network functions through
//! asynchronous ring buffers backed by shared huge pages, so that no locks
//! are taken on the packet path (§4.1). This crate provides the equivalents
//! used by the [`sdnfv-dataplane`](../sdnfv_dataplane/index.html) runtime:
//!
//! * [`spsc`] — bounded single-producer/single-consumer rings whose producer
//!   and consumer handles are distinct owned types, enforcing the
//!   one-producer/one-consumer discipline at compile time; bursts move
//!   through [`Producer::push_n`]/[`Consumer::pop_n`] with a single atomic
//!   cursor update per burst,
//! * [`pool`] — a bounded packet pool modelling the shared huge-page region
//!   DPDK DMAs packets into; exhaustion translates to packet drops exactly
//!   like a full mbuf pool,
//! * [`shared`] — reference-counted packet handles used when the manager
//!   dispatches one packet to several read-only NFs in parallel (§4.2),
//! * [`credit`] — credit gates implementing ingress backpressure: a bounded
//!   pipeline stage admits a packet only while it holds a credit, and the
//!   egress side replenishes the credit when the packet leaves, so overload
//!   throttles the sender instead of silently dropping inside the pipeline.
//!
//! All four modules take their atomics from the [`sync`] facade, so the
//! `model` cargo feature can swap in the recording atomics of the [`model`]
//! interleaving checker (`sdnfv-check` drives it): the shipping primitives
//! are themselves the checked code.

#![warn(missing_docs)]

pub mod credit;
#[cfg(feature = "model")]
pub mod model;
pub mod pool;
pub mod shared;
pub mod spsc;
pub mod sync;

pub use credit::CreditGate;
pub use pool::{PacketPool, PoolStats, PooledPacket};
pub use shared::SharedPacket;
pub use spsc::{spsc_ring, Consumer, Producer, PushError};
