//! A loom-lite interleaving checker for the lock-free core.
//!
//! This module is the engine behind `sdnfv-check`: a bounded-exhaustive
//! model checker that runs a closure under every schedule a depth-first
//! search over thread interleavings can produce (up to a preemption
//! bound), with an acquire/release-aware memory model in which `Relaxed`
//! and `Acquire` loads may observe *stale* values that the happens-before
//! graph still permits — the class of behavior a unit test on x86 will
//! essentially never exhibit but a weakly-ordered machine (or a compiler)
//! legally can.
//!
//! # How an execution runs
//!
//! [`explore`] spawns one real OS thread per model thread and gives the
//! group a single run token: exactly one thread executes at a time, and
//! every instrumented operation (an atomic access via the
//! [`sync`](crate::sync) facade types, a [`Slot`](crate::sync::Slot)
//! access, [`spawn`]/[`ModelJoinHandle::join`]) is a rendezvous where the
//! running thread applies its effect to the model state and then asks the
//! explorer which thread runs next. The explorer records every
//! choice point (thread choices and load-value choices) on a path; after
//! the execution finishes it backtracks the deepest unexhausted choice and
//! replays, depth-first, until the whole bounded tree is covered.
//!
//! # The memory model (store-buffer / C11-lite)
//!
//! Per atomic location the checker keeps the full store history
//! (modification order). Each thread keeps a *view*: for every location,
//! the oldest store index it is still allowed to observe. A load picks
//! (via the explorer — this is a real branch of the search) any store at
//! or after the view floor; an `Acquire` load that picks a `Release` store
//! joins the storing thread's clock and view (synchronizes-with), which is
//! what makes newer stores to *other* locations mandatory afterwards.
//! Read-modify-writes always read the latest store (C11 atomicity) and
//! continue release sequences. `SeqCst` is approximated as
//! acquire/release-plus-latest-value; no code in this workspace uses
//! `SeqCst` (the invariant lint would make its introduction conspicuous),
//! so the approximation is currently vacuous.
//!
//! Non-atomic shared cells ([`Slot`](crate::sync::Slot)) are checked with
//! thread vector clocks: two accesses to the same slot, at least one a
//! write, not ordered by happens-before, abort the execution as a data
//! race. Reading a slot no write ever initialized is flagged separately
//! (that is how an off-by-one ring wrap surfaces).
//!
//! # Bounds
//!
//! The search is exhaustive up to [`CheckOpts::preemptions`] involuntary
//! context switches per execution (Chess-style preemption bounding: most
//! concurrency bugs need only one or two) and [`CheckOpts::max_executions`]
//! schedules overall; [`CheckReport::truncated`] says whether the cap was
//! hit, so callers can assert a check was genuinely exhaustive. Checked
//! closures must be bounded by construction (fixed operation counts, no
//! retry-until-success loops): a spin loop explores forever, which the
//! per-execution op budget converts into an explicit violation.
//!
//! # Caveats (by design, documented here once)
//!
//! * `compare_exchange_weak` never fails spuriously under the model (a
//!   spurious failure branch at every CAS makes retry loops unbounded).
//! * CAS failure loads and RMWs observe the modification-order-latest
//!   value only; genuine stale-read branching is exercised through plain
//!   loads.
//! * `Debug` formatting of instrumented atomics reads the mirror value
//!   without a model event.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

// ---------------------------------------------------------------------------
// Options, reports, violations
// ---------------------------------------------------------------------------

/// Bounds for one [`explore`] run.
#[derive(Debug, Clone, Copy)]
pub struct CheckOpts {
    /// Maximum involuntary context switches per execution (Chess-style
    /// preemption bounding). Voluntary switches (a thread blocking or
    /// finishing) are free.
    pub preemptions: usize,
    /// Hard cap on explored executions; hitting it sets
    /// [`CheckReport::truncated`].
    pub max_executions: u64,
    /// Per-execution instrumented-op budget; exceeding it is reported as a
    /// [`ViolationKind::OpBudget`] violation (an unbounded retry loop).
    pub max_ops: u64,
}

impl Default for CheckOpts {
    fn default() -> Self {
        CheckOpts {
            preemptions: 2,
            max_executions: 400_000,
            max_ops: 20_000,
        }
    }
}

/// What a violating execution did wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two unordered accesses to a non-atomic cell, at least one a write.
    DataRace,
    /// A non-atomic cell was read before any write initialized it.
    UninitRead,
    /// The checked closure (or an invariant assert inside it) panicked.
    Panic,
    /// Unfinished threads with nothing runnable (a join cycle).
    Deadlock,
    /// [`CheckOpts::max_ops`] exceeded — an unbounded loop under the model.
    OpBudget,
    /// Replaying a recorded path diverged: the checked closure made a
    /// choice the model did not control (internal error).
    Nondeterminism,
}

/// A counterexample: the violation plus the interleaving that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Category of the failure.
    pub kind: ViolationKind,
    /// Human-readable description.
    pub message: String,
    /// The instrumented-op trace of the violating execution, in order.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:?}: {}", self.kind, self.message)?;
        writeln!(f, "interleaving ({} ops):", self.trace.len())?;
        for op in &self.trace {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

/// Result of an [`explore`] run.
#[derive(Debug)]
pub struct CheckReport {
    /// Executions (distinct schedules) explored.
    pub executions: u64,
    /// True if [`CheckOpts::max_executions`] stopped the search before the
    /// bounded schedule space was exhausted.
    pub truncated: bool,
    /// The first violation found, if any (the search stops at the first).
    pub violation: Option<Violation>,
}

impl CheckReport {
    /// True when the bounded schedule space was fully explored cleanly.
    pub fn exhaustive_pass(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

// ---------------------------------------------------------------------------
// Explorer: DFS over recorded choice points
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Choice {
    chosen: usize,
    total: usize,
    /// Kind of choice point ("sched" / "load"), for divergence debugging.
    tag: &'static str,
}

/// Depth-first enumerator of choice sequences. Forced choices (one option)
/// are not recorded, so the path is exactly the branching structure.
#[derive(Debug, Default)]
struct Explorer {
    path: Vec<Choice>,
    cursor: usize,
    diverged: bool,
    /// (position, recorded total, observed total) of a replay divergence.
    divergence: Option<(usize, usize, usize)>,
}

impl Explorer {
    fn choose(&mut self, total: usize, tag: &'static str) -> usize {
        if total <= 1 {
            return 0;
        }
        if self.cursor < self.path.len() {
            let recorded = self.path[self.cursor];
            if recorded.total != total || recorded.tag != tag {
                // Replay divergence; caller turns this into a violation.
                self.diverged = true;
                self.divergence = Some((self.cursor, recorded.total, total));
                self.cursor += 1;
                return 0;
            }
            self.cursor += 1;
            recorded.chosen
        } else {
            self.path.push(Choice {
                chosen: 0,
                total,
                tag,
            });
            self.cursor += 1;
            0
        }
    }

    /// Backtracks to the next unexplored path; false when exhausted.
    fn advance(&mut self) -> bool {
        while let Some(last) = self.path.last_mut() {
            if last.chosen + 1 < last.total {
                last.chosen += 1;
                self.cursor = 0;
                return true;
            }
            self.path.pop();
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Vector clocks and views
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `self` happens-before-or-equals `other`.
    fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, v)| *v == 0 || other.0.get(i).copied().unwrap_or(0) >= *v)
    }
}

/// Per-thread view: for each atomic location, the oldest store index the
/// thread may still observe (coherence floor).
type View = HashMap<usize, usize>;

fn join_view(into: &mut View, from: &View) {
    for (addr, idx) in from {
        let floor = into.entry(*addr).or_insert(0);
        *floor = (*floor).max(*idx);
    }
}

// ---------------------------------------------------------------------------
// Model state
// ---------------------------------------------------------------------------

/// Release payload a synchronizing load joins: the storing thread's clock
/// and view at the store.
#[derive(Debug, Clone)]
struct ReleasePayload {
    clock: VClock,
    view: View,
}

#[derive(Debug)]
struct StoreEvt {
    value: u64,
    release: Option<ReleasePayload>,
}

#[derive(Debug, Default)]
struct AtomicLoc {
    stores: Vec<StoreEvt>,
}

#[derive(Debug, Default)]
struct NaLoc {
    written: bool,
    writer: Option<(usize, VClock)>,
    readers: Vec<(usize, VClock)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Joining(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    clock: VClock,
    view: View,
}

/// One instrumented op, recorded compactly (formatting a string per op
/// would dominate the search); rendered only when a violation is reported.
#[derive(Debug, Clone, Copy)]
struct TraceEntry {
    tid: usize,
    op: &'static str,
    ord: &'static str,
    addr: usize,
    a: u64,
    b: u64,
}

impl TraceEntry {
    fn render(&self) -> String {
        let TraceEntry {
            tid,
            op,
            ord,
            addr,
            a,
            b,
        } = *self;
        let site = format!("a{:04x}", addr & 0xffff);
        match op {
            "load" => {
                let stale = if b > 0 {
                    format!(" (stale, {b} behind)")
                } else {
                    String::new()
                };
                format!("t{tid} load.{ord} {site} -> {a}{stale}")
            }
            "store" => format!("t{tid} store.{ord} {site} <- {a}"),
            "cas" => {
                let outcome = if b == 1 { "->" } else { "!=" };
                format!("t{tid} cas.{ord} {site} {a} {outcome}")
            }
            "slot.read" | "slot.write" => format!("t{tid} {op} {site}"),
            "spawn" => format!("t{tid} spawn t{a}"),
            "join" => format!("t{tid} join t{a}"),
            _ => format!("t{tid} {op}.{ord} {site} {a} -> {b}"),
        }
    }
}

struct State {
    opts: CheckOpts,
    explorer: Explorer,
    threads: Vec<ThreadState>,
    /// The thread currently holding the run token.
    active: usize,
    /// Threads not yet `Finished`.
    running: usize,
    preemptions: usize,
    aborting: bool,
    ops: u64,
    atomics: HashMap<usize, AtomicLoc>,
    nonatomics: HashMap<usize, NaLoc>,
    trace: Vec<TraceEntry>,
    violation: Option<Violation>,
}

struct Exec {
    state: Mutex<State>,
    cond: Condvar,
    /// Real OS-thread handles, joined by the driver at execution end.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Panic payload used to unwind model threads out of an aborted execution.
struct ModelAbort;

thread_local! {
    static ACTIVE: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct ThreadCtx {
    exec: Arc<Exec>,
    tid: usize,
}

fn current_ctx() -> Option<ThreadCtx> {
    ACTIVE.with(|slot| slot.borrow().clone())
}

fn lock_state(exec: &Exec) -> MutexGuard<'_, State> {
    exec.state
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn ord_tag(ord: Ordering) -> &'static str {
    match ord {
        Ordering::Relaxed => "rlx",
        Ordering::Acquire => "acq",
        Ordering::Release => "rel",
        Ordering::AcqRel => "acq_rel",
        Ordering::SeqCst => "seq_cst",
        _ => "?",
    }
}

impl State {
    fn report_violation(&mut self, kind: ViolationKind, message: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                kind,
                message,
                trace: self.trace.iter().map(TraceEntry::render).collect(),
            });
        }
        self.aborting = true;
    }

    fn trace_op(&mut self, entry: TraceEntry) {
        // Bounded by the op budget; keep everything for the counterexample.
        self.trace.push(entry);
    }

    /// Charges one instrumented op against the budget; true if still fine.
    fn charge_op(&mut self) -> bool {
        self.ops += 1;
        if self.ops > self.opts.max_ops {
            self.report_violation(
                ViolationKind::OpBudget,
                format!(
                    "execution exceeded {} instrumented ops: unbounded loop under the model \
                     (checked closures must issue a fixed number of operations)",
                    self.opts.max_ops
                ),
            );
            return false;
        }
        true
    }

    /// Picks the next thread to hold the run token. `still_runnable` says
    /// whether the calling thread can itself continue.
    fn schedule_next(&mut self, me: usize) {
        if self.aborting {
            return;
        }
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(tid, _)| tid)
            .collect();
        if runnable.is_empty() {
            if self.running > 0 {
                self.report_violation(
                    ViolationKind::Deadlock,
                    format!("{} threads alive but none runnable", self.running),
                );
            }
            return;
        }
        let me_runnable = self.threads[me].status == Status::Runnable;
        let next = if me_runnable {
            if self.preemptions < self.opts.preemptions && runnable.len() > 1 {
                // Option 0 = keep running (the DFS explores the natural
                // schedule first); any other option is a preemption.
                let mut options = vec![me];
                options.extend(runnable.iter().copied().filter(|tid| *tid != me));
                let choice = self.explorer.choose(options.len(), "sched-preempt");
                if choice != 0 {
                    self.preemptions += 1;
                }
                options[choice]
            } else {
                me
            }
        } else {
            let choice = self.explorer.choose(runnable.len(), "sched-block");
            runnable[choice]
        };
        if self.explorer.diverged {
            let detail = self.explorer.divergence;
            self.report_violation(
                ViolationKind::Nondeterminism,
                format!(
                    "schedule replay diverged: the checked closure is not deterministic \
                     under a fixed schedule ({detail:?} = position, recorded total, \
                     observed total)"
                ),
            );
            return;
        }
        self.active = next;
    }
}

/// Blocks until this thread holds the run token (or the execution aborts).
fn rendezvous(exec: &Exec, tid: usize) -> MutexGuard<'_, State> {
    let mut guard = lock_state(exec);
    loop {
        if guard.aborting {
            drop(guard);
            panic::panic_any(ModelAbort);
        }
        if guard.active == tid && guard.threads[tid].status == Status::Runnable {
            return guard;
        }
        guard = exec
            .cond
            .wait(guard)
            .unwrap_or_else(|poison| poison.into_inner());
    }
}

/// Ends an op: hands the token onward and wakes everyone.
fn finish_op(exec: &Exec, mut guard: MutexGuard<'_, State>, me: usize) {
    guard.schedule_next(me);
    let abort = guard.aborting;
    drop(guard);
    exec.cond.notify_all();
    if abort {
        panic::panic_any(ModelAbort);
    }
}

// ---------------------------------------------------------------------------
// Instrumented operations (called from the facade types with a ctx active)
// ---------------------------------------------------------------------------

impl ThreadCtx {
    /// Registers the location on first touch, seeding the history with the
    /// initial value (read from the mirror atomic; no model store has
    /// happened yet, so the mirror still holds the constructor's value,
    /// visible to every thread with no synchronization required).
    fn ensure_atomic(state: &mut State, addr: usize, initial: impl FnOnce() -> u64) {
        state.atomics.entry(addr).or_insert_with(|| AtomicLoc {
            stores: vec![StoreEvt {
                value: initial(),
                release: None,
            }],
        });
    }

    fn atomic_load(&self, addr: usize, initial: impl FnOnce() -> u64, ord: Ordering) -> u64 {
        let tid = self.tid;
        let mut guard = rendezvous(&self.exec, tid);
        if !guard.charge_op() {
            return finish_abort(&self.exec, guard);
        }
        Self::ensure_atomic(&mut guard, addr, initial);
        let len = guard.atomics[&addr].stores.len();
        let floor = guard.threads[tid].view.get(&addr).copied().unwrap_or(0);
        // SeqCst loads are approximated as latest-value acquire loads (no
        // SeqCst exists in this workspace; see the module docs).
        let floor = if ord == Ordering::SeqCst {
            len - 1
        } else {
            floor
        };
        // Choice 0 = the newest store, so the natural schedule reads fresh
        // values and staleness is explored on backtracking.
        let candidates = len - floor;
        let pick = guard.explorer.choose(candidates, "load");
        if guard.explorer.diverged {
            let detail = guard.explorer.divergence;
            guard.report_violation(
                ViolationKind::Nondeterminism,
                format!(
                    "load-value replay diverged ({detail:?} = position, recorded \
                     total, observed total)"
                ),
            );
            return finish_abort(&self.exec, guard);
        }
        let idx = len - 1 - pick;
        let (value, payload) = {
            let store = &guard.atomics[&addr].stores[idx];
            (store.value, store.release.clone())
        };
        guard.threads[tid].view.insert(addr, idx);
        if is_acquire(ord) {
            if let Some(payload) = payload {
                guard.threads[tid].clock.join(&payload.clock);
                join_view(&mut guard.threads[tid].view, &payload.view);
            }
        }
        guard.threads[tid].clock.tick(tid);
        let stale = len - 1 - idx;
        guard.trace_op(TraceEntry {
            tid,
            op: "load",
            ord: ord_tag(ord),
            addr,
            a: value,
            b: stale as u64,
        });
        finish_op(&self.exec, guard, tid);
        value
    }

    fn atomic_store(
        &self,
        addr: usize,
        initial: impl FnOnce() -> u64,
        value: u64,
        ord: Ordering,
        mirror: impl FnOnce(u64),
    ) {
        let tid = self.tid;
        let mut guard = rendezvous(&self.exec, tid);
        if !guard.charge_op() {
            finish_abort::<()>(&self.exec, guard);
            return;
        }
        Self::ensure_atomic(&mut guard, addr, initial);
        guard.threads[tid].clock.tick(tid);
        let idx = guard.atomics[&addr].stores.len();
        guard.threads[tid].view.insert(addr, idx);
        let release = if is_release(ord) {
            Some(ReleasePayload {
                clock: guard.threads[tid].clock.clone(),
                view: guard.threads[tid].view.clone(),
            })
        } else {
            None
        };
        guard
            .atomics
            .get_mut(&addr)
            .expect("registered above")
            .stores
            .push(StoreEvt { value, release });
        mirror(value);
        guard.trace_op(TraceEntry {
            tid,
            op: "store",
            ord: ord_tag(ord),
            addr,
            a: value,
            b: 0,
        });
        finish_op(&self.exec, guard, tid);
    }

    /// Read-modify-write: reads the modification-order-latest value (C11
    /// atomicity), applies `op`, appends the new store, and continues the
    /// release sequence of the store it read.
    fn atomic_rmw(
        &self,
        addr: usize,
        initial: impl FnOnce() -> u64,
        name: &'static str,
        ord: Ordering,
        op: impl FnOnce(u64) -> u64,
        mirror: impl FnOnce(u64),
    ) -> u64 {
        let tid = self.tid;
        let mut guard = rendezvous(&self.exec, tid);
        if !guard.charge_op() {
            return finish_abort(&self.exec, guard);
        }
        Self::ensure_atomic(&mut guard, addr, initial);
        let latest = guard.atomics[&addr].stores.len() - 1;
        let (prev, read_payload) = {
            let store = &guard.atomics[&addr].stores[latest];
            (store.value, store.release.clone())
        };
        guard.threads[tid].view.insert(addr, latest);
        if is_acquire(ord) {
            if let Some(payload) = &read_payload {
                guard.threads[tid].clock.join(&payload.clock);
                join_view(&mut guard.threads[tid].view, &payload.view);
            }
        }
        guard.threads[tid].clock.tick(tid);
        let next = op(prev);
        let idx = latest + 1;
        guard.threads[tid].view.insert(addr, idx);
        // Release-sequence continuation: an acquire load of this store
        // synchronizes with the head of the sequence even if this RMW is
        // itself relaxed, so propagate (and, if releasing, extend) the
        // payload of the store we read.
        let release = if is_release(ord) {
            let mut payload = ReleasePayload {
                clock: guard.threads[tid].clock.clone(),
                view: guard.threads[tid].view.clone(),
            };
            if let Some(read) = &read_payload {
                payload.clock.join(&read.clock);
                join_view(&mut payload.view, &read.view);
            }
            Some(payload)
        } else {
            read_payload
        };
        guard
            .atomics
            .get_mut(&addr)
            .expect("registered above")
            .stores
            .push(StoreEvt {
                value: next,
                release,
            });
        mirror(next);
        guard.trace_op(TraceEntry {
            tid,
            op: name,
            ord: ord_tag(ord),
            addr,
            a: prev,
            b: next,
        });
        finish_op(&self.exec, guard, tid);
        prev
    }

    /// Compare-exchange. Success is an RMW; failure is a load of the
    /// modification-order-latest value (see the module caveats).
    #[allow(clippy::too_many_arguments)]
    fn atomic_cas(
        &self,
        addr: usize,
        initial: impl FnOnce() -> u64,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        mirror: impl FnOnce(u64),
    ) -> Result<u64, u64> {
        let tid = self.tid;
        let mut guard = rendezvous(&self.exec, tid);
        if !guard.charge_op() {
            return Err(finish_abort(&self.exec, guard));
        }
        Self::ensure_atomic(&mut guard, addr, initial);
        let latest = guard.atomics[&addr].stores.len() - 1;
        let (prev, read_payload) = {
            let store = &guard.atomics[&addr].stores[latest];
            (store.value, store.release.clone())
        };
        let (ok, ord) = if prev == expected {
            (true, success)
        } else {
            (false, failure)
        };
        guard.threads[tid].view.insert(addr, latest);
        if is_acquire(ord) {
            if let Some(payload) = &read_payload {
                guard.threads[tid].clock.join(&payload.clock);
                join_view(&mut guard.threads[tid].view, &payload.view);
            }
        }
        guard.threads[tid].clock.tick(tid);
        if ok {
            let idx = latest + 1;
            guard.threads[tid].view.insert(addr, idx);
            let release = if is_release(ord) {
                let mut payload = ReleasePayload {
                    clock: guard.threads[tid].clock.clone(),
                    view: guard.threads[tid].view.clone(),
                };
                if let Some(read) = &read_payload {
                    payload.clock.join(&read.clock);
                    join_view(&mut payload.view, &read.view);
                }
                Some(payload)
            } else {
                read_payload
            };
            guard
                .atomics
                .get_mut(&addr)
                .expect("registered above")
                .stores
                .push(StoreEvt {
                    value: new,
                    release,
                });
            mirror(new);
        }
        guard.trace_op(TraceEntry {
            tid,
            op: "cas",
            ord: ord_tag(ord),
            addr,
            a: prev,
            b: ok as u64,
        });
        finish_op(&self.exec, guard, tid);
        if ok {
            Ok(prev)
        } else {
            Err(prev)
        }
    }

    fn na_access(&self, addr: usize, is_write: bool) {
        let tid = self.tid;
        let mut guard = rendezvous(&self.exec, tid);
        if !guard.charge_op() {
            finish_abort::<()>(&self.exec, guard);
            return;
        }
        let my_clock = guard.threads[tid].clock.clone();
        let loc = guard.nonatomics.entry(addr).or_default();
        let mut race: Option<String> = None;
        if let Some((wtid, wclock)) = &loc.writer {
            if *wtid != tid && !wclock.le(&my_clock) {
                race = Some(format!(
                    "t{tid} {} slot a{:04x} races t{wtid}'s write",
                    if is_write { "write to" } else { "read of" },
                    addr & 0xffff
                ));
            }
        }
        if is_write {
            for (rtid, rclock) in &loc.readers {
                if *rtid != tid && !rclock.le(&my_clock) {
                    race = Some(format!(
                        "t{tid} write to slot a{:04x} races t{rtid}'s read",
                        addr & 0xffff
                    ));
                }
            }
        } else if !loc.written {
            guard.report_violation(
                ViolationKind::UninitRead,
                format!("t{tid} read slot a{:04x} before any write", addr & 0xffff),
            );
            finish_abort::<()>(&self.exec, guard);
            return;
        }
        if let Some(message) = race {
            guard.report_violation(ViolationKind::DataRace, message);
            finish_abort::<()>(&self.exec, guard);
            return;
        }
        guard.threads[tid].clock.tick(tid);
        let clock = guard.threads[tid].clock.clone();
        let loc = guard.nonatomics.entry(addr).or_default();
        if is_write {
            loc.written = true;
            loc.writer = Some((tid, clock));
            loc.readers.clear();
        } else {
            loc.readers.push((tid, clock));
        }
        guard.trace_op(TraceEntry {
            tid,
            op: if is_write { "slot.write" } else { "slot.read" },
            ord: "",
            addr,
            a: 0,
            b: 0,
        });
        finish_op(&self.exec, guard, tid);
    }
}

/// Unlocks and unwinds out of an aborted execution. The return type is
/// whatever the caller needs to "return" (never actually produced).
fn finish_abort<T>(exec: &Exec, guard: MutexGuard<'_, State>) -> T {
    drop(guard);
    exec.cond.notify_all();
    panic::panic_any(ModelAbort);
}

/// Reports a tracked non-atomic write at `addr` (no-op outside a model
/// execution). Called by [`Slot`](crate::sync::Slot).
pub fn trace_nonatomic_write(addr: usize) {
    if let Some(ctx) = current_ctx() {
        ctx.na_access(addr, true);
    }
}

/// Reports a tracked non-atomic read at `addr` (no-op outside a model
/// execution). Called by [`Slot`](crate::sync::Slot).
pub fn trace_nonatomic_read(addr: usize) {
    if let Some(ctx) = current_ctx() {
        ctx.na_access(addr, false);
    }
}

// ---------------------------------------------------------------------------
// spawn / join
// ---------------------------------------------------------------------------

/// Handle to a thread spawned with [`spawn`] inside a model execution.
pub struct ModelJoinHandle<T> {
    target: usize,
    exec: Option<Arc<Exec>>,
    result: Arc<Mutex<Option<T>>>,
    /// Real handle, present only in the non-model fallback.
    real: Option<std::thread::JoinHandle<()>>,
}

impl<T> ModelJoinHandle<T> {
    /// Waits for the thread to finish and returns its value. Inside a model
    /// execution this is a blocking scheduling point that establishes
    /// happens-before with everything the joined thread did.
    pub fn join(self) -> T {
        if let Some(real) = self.real {
            real.join().expect("model fallback thread panicked");
            return self
                .result
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .take()
                .expect("joined thread stored no result");
        }
        let exec = self.exec.expect("model join handle without execution");
        let ctx = current_ctx().expect("ModelJoinHandle::join outside a model thread");
        assert!(
            Arc::ptr_eq(&ctx.exec, &exec),
            "join handle crossed model executions"
        );
        let tid = ctx.tid;
        let target = self.target;
        let mut guard = rendezvous(&exec, tid);
        if !guard.charge_op() {
            return finish_abort(&exec, guard);
        }
        if guard.threads[target].status != Status::Finished {
            guard.threads[tid].status = Status::Joining(target);
            guard.schedule_next(tid);
            let abort = guard.aborting;
            drop(guard);
            exec.cond.notify_all();
            if abort {
                panic::panic_any(ModelAbort);
            }
            guard = rendezvous(&exec, tid);
        }
        // Happens-before edge from everything the target did.
        let (target_clock, target_view) = {
            let t = &guard.threads[target];
            (t.clock.clone(), t.view.clone())
        };
        guard.threads[tid].clock.join(&target_clock);
        join_view(&mut guard.threads[tid].view, &target_view);
        guard.threads[tid].clock.tick(tid);
        guard.trace_op(TraceEntry {
            tid,
            op: "join",
            ord: "",
            addr: 0,
            a: target as u64,
            b: 0,
        });
        finish_op(&exec, guard, tid);
        self.result
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .take()
            .expect("joined model thread stored no result")
    }
}

/// Spawns a model thread. Inside a model execution the new thread becomes
/// part of the explored schedule (with a happens-before edge from the
/// spawn); outside one this falls back to a plain `std::thread::spawn` so
/// check code also runs un-modeled.
pub fn spawn<T, F>(f: F) -> ModelJoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let Some(ctx) = current_ctx() else {
        let slot = Arc::clone(&result);
        let real = std::thread::spawn(move || {
            let value = f();
            *slot.lock().unwrap_or_else(|poison| poison.into_inner()) = Some(value);
        });
        return ModelJoinHandle {
            target: usize::MAX,
            exec: None,
            result,
            real: Some(real),
        };
    };
    let exec = Arc::clone(&ctx.exec);
    let tid = ctx.tid;
    let child = {
        let mut guard = rendezvous(&exec, tid);
        if !guard.charge_op() {
            return finish_abort(&exec, guard);
        }
        guard.threads[tid].clock.tick(tid);
        // The child inherits the spawner's clock and view: everything the
        // spawner did happens-before everything the child does.
        let clock = guard.threads[tid].clock.clone();
        let view = guard.threads[tid].view.clone();
        let child = guard.threads.len();
        let mut child_clock = clock;
        child_clock.tick(child);
        guard.threads.push(ThreadState {
            status: Status::Runnable,
            clock: child_clock,
            view,
        });
        guard.running += 1;
        guard.trace_op(TraceEntry {
            tid,
            op: "spawn",
            ord: "",
            addr: 0,
            a: child as u64,
            b: 0,
        });
        finish_op(&exec, guard, tid);
        child
    };
    let slot = Arc::clone(&result);
    let thread_exec = Arc::clone(&exec);
    let handle = std::thread::spawn(move || {
        run_model_thread(thread_exec, child, f, slot);
    });
    exec.handles
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
        .push(handle);
    ModelJoinHandle {
        target: child,
        exec: Some(exec),
        result,
        real: None,
    }
}

fn run_model_thread<T, F>(exec: Arc<Exec>, tid: usize, f: F, result: Arc<Mutex<Option<T>>>)
where
    F: FnOnce() -> T,
{
    ACTIVE.with(|slot| {
        *slot.borrow_mut() = Some(ThreadCtx {
            exec: Arc::clone(&exec),
            tid,
        })
    });
    // A model thread's first instruction rendezvouses inside its first op;
    // before that it may run un-instrumented code freely (it touches no
    // tracked memory by definition).
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    ACTIVE.with(|slot| *slot.borrow_mut() = None);
    let panic_message = match outcome {
        Ok(value) => {
            *result.lock().unwrap_or_else(|poison| poison.into_inner()) = Some(value);
            None
        }
        Err(payload) => {
            if payload.downcast_ref::<ModelAbort>().is_some() {
                None
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Some((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                Some("checked closure panicked with a non-string payload".to_string())
            }
        }
    };
    let mut guard = lock_state(&exec);
    if panic_message.is_none() {
        // Retirement is itself a scheduled event: the moment a finished
        // thread leaves the runnable set must be chosen by the explorer,
        // not by OS timing, or replaying a recorded choice path diverges
        // (the runnable set at later scheduling points would differ run
        // to run). Wait for the run token before retiring; an aborting
        // execution skips the wait because the scheduler is torn down.
        while !(guard.aborting
            || (guard.active == tid && guard.threads[tid].status == Status::Runnable))
        {
            guard = exec
                .cond
                .wait(guard)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
    if let Some(message) = panic_message {
        guard.report_violation(ViolationKind::Panic, message);
    }
    guard.threads[tid].status = Status::Finished;
    guard.running -= 1;
    // Wake joiners; they become schedulable candidates.
    for t in 0..guard.threads.len() {
        if guard.threads[t].status == Status::Joining(tid) {
            guard.threads[t].status = Status::Runnable;
        }
    }
    if guard.running > 0 {
        guard.schedule_next(tid);
    }
    drop(guard);
    exec.cond.notify_all();
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs `f` under every schedule within the bounds and returns what was
/// found. The search stops at the first violation; the report carries the
/// violating interleaving.
pub fn explore<F>(opts: CheckOpts, f: F) -> CheckReport
where
    F: Fn() + Send + Sync + 'static,
{
    // Checked closures routinely panic on purpose (ModelAbort unwinds tear
    // down aborted executions; mutation tests assert inside the model), so
    // silence the default hook's per-panic backtrace chatter for panics on
    // model threads — the message is captured and re-reported as a
    // `Violation` anyway. Chained once, process-wide.
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let on_model_thread = ACTIVE
                .try_with(|slot| slot.try_borrow().map(|s| s.is_some()).unwrap_or(false))
                .unwrap_or(false);
            if !on_model_thread && info.payload().downcast_ref::<ModelAbort>().is_none() {
                previous(info);
            }
        }));
    });
    let f = Arc::new(f);
    let mut explorer = Explorer::default();
    let mut executions = 0u64;
    loop {
        executions += 1;
        let exec = Arc::new(Exec {
            state: Mutex::new(State {
                opts,
                explorer,
                threads: vec![ThreadState {
                    status: Status::Runnable,
                    clock: {
                        let mut c = VClock::default();
                        c.tick(0);
                        c
                    },
                    view: View::default(),
                }],
                active: 0,
                running: 1,
                preemptions: 0,
                aborting: false,
                ops: 0,
                atomics: HashMap::new(),
                nonatomics: HashMap::new(),
                trace: Vec::new(),
                violation: None,
            }),
            cond: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        });
        let root_exec = Arc::clone(&exec);
        let closure = Arc::clone(&f);
        let root = std::thread::spawn(move || {
            run_model_thread(root_exec, 0, move || closure(), Arc::new(Mutex::new(None)));
        });
        {
            let mut guard = lock_state(&exec);
            while guard.running > 0 {
                guard = exec
                    .cond
                    .wait(guard)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        }
        let _ = root.join();
        loop {
            let drained: Vec<_> = exec
                .handles
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .drain(..)
                .collect();
            if drained.is_empty() {
                break;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }
        let exec = Arc::try_unwrap(exec)
            .unwrap_or_else(|_| panic!("model execution leaked a handle to its scheduler"));
        let state = exec
            .state
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner());
        explorer = state.explorer;
        if let Some(violation) = state.violation {
            return CheckReport {
                executions,
                truncated: false,
                violation: Some(violation),
            };
        }
        if executions >= opts.max_executions {
            return CheckReport {
                executions,
                truncated: true,
                violation: None,
            };
        }
        if !explorer.advance() {
            return CheckReport {
                executions,
                truncated: false,
                violation: None,
            };
        }
    }
}

/// Like [`explore`], but panics with the formatted counterexample on a
/// violation and asserts the search was not truncated — the form the
/// clean-primitive checks use.
pub fn check<F>(name: &str, opts: CheckOpts, f: F) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(opts, f);
    if let Some(violation) = &report.violation {
        panic!(
            "model check '{name}' found a violation after {} executions:\n{violation}",
            report.executions
        );
    }
    assert!(
        !report.truncated,
        "model check '{name}' truncated at {} executions; raise max_executions or \
         shrink the checked program",
        report.executions
    );
    report.executions
}

// ---------------------------------------------------------------------------
// Instrumented atomic types
// ---------------------------------------------------------------------------

macro_rules! instrumented_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty, $to:expr, $from:expr) => {
        $(#[$doc])*
        pub struct $name {
            /// Mirror of the modification-order-latest value. Outside a
            /// model execution this *is* the atomic; inside one it backs
            /// `get_mut`/`Debug` and seeds the model history on first touch.
            inner: $std,
        }

        impl $name {
            /// A new atomic holding `value`.
            pub const fn new(value: $prim) -> Self {
                Self { inner: <$std>::new(value) }
            }

            fn addr(&self) -> usize {
                self as *const _ as usize
            }

            /// Atomic load (modeled: may observe any happens-before-valid
            /// stale value).
            pub fn load(&self, ord: Ordering) -> $prim {
                match current_ctx() {
                    None => self.inner.load(ord),
                    Some(ctx) => $from(ctx.atomic_load(
                        self.addr(),
                        || $to(self.inner.load(Ordering::Relaxed)),
                        ord,
                    )),
                }
            }

            /// Atomic store.
            pub fn store(&self, value: $prim, ord: Ordering) {
                match current_ctx() {
                    None => self.inner.store(value, ord),
                    Some(ctx) => ctx.atomic_store(
                        self.addr(),
                        || $to(self.inner.load(Ordering::Relaxed)),
                        $to(value),
                        ord,
                        |v| self.inner.store($from(v), Ordering::Relaxed),
                    ),
                }
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, value: $prim, ord: Ordering) -> $prim {
                match current_ctx() {
                    None => self.inner.swap(value, ord),
                    Some(ctx) => $from(ctx.atomic_rmw(
                        self.addr(),
                        || $to(self.inner.load(Ordering::Relaxed)),
                        "swap",
                        ord,
                        |_| $to(value),
                        |v| self.inner.store($from(v), Ordering::Relaxed),
                    )),
                }
            }

            /// Atomic fetch-add (wrapping); returns the previous value.
            pub fn fetch_add(&self, operand: $prim, ord: Ordering) -> $prim {
                match current_ctx() {
                    None => self.inner.fetch_add(operand, ord),
                    Some(ctx) => $from(ctx.atomic_rmw(
                        self.addr(),
                        || $to(self.inner.load(Ordering::Relaxed)),
                        "fetch_add",
                        ord,
                        |v| $to($from(v).wrapping_add(operand)),
                        |v| self.inner.store($from(v), Ordering::Relaxed),
                    )),
                }
            }

            /// Atomic fetch-sub (wrapping); returns the previous value.
            pub fn fetch_sub(&self, operand: $prim, ord: Ordering) -> $prim {
                match current_ctx() {
                    None => self.inner.fetch_sub(operand, ord),
                    Some(ctx) => $from(ctx.atomic_rmw(
                        self.addr(),
                        || $to(self.inner.load(Ordering::Relaxed)),
                        "fetch_sub",
                        ord,
                        |v| $to($from(v).wrapping_sub(operand)),
                        |v| self.inner.store($from(v), Ordering::Relaxed),
                    )),
                }
            }

            /// Atomic fetch-max; returns the previous value.
            pub fn fetch_max(&self, operand: $prim, ord: Ordering) -> $prim {
                match current_ctx() {
                    None => self.inner.fetch_max(operand, ord),
                    Some(ctx) => $from(ctx.atomic_rmw(
                        self.addr(),
                        || $to(self.inner.load(Ordering::Relaxed)),
                        "fetch_max",
                        ord,
                        |v| $to($from(v).max(operand)),
                        |v| self.inner.store($from(v), Ordering::Relaxed),
                    )),
                }
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                expected: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match current_ctx() {
                    None => self.inner.compare_exchange(expected, new, success, failure),
                    Some(ctx) => ctx
                        .atomic_cas(
                            self.addr(),
                            || $to(self.inner.load(Ordering::Relaxed)),
                            $to(expected),
                            $to(new),
                            success,
                            failure,
                            |v| self.inner.store($from(v), Ordering::Relaxed),
                        )
                        .map($from)
                        .map_err($from),
                }
            }

            /// Atomic weak compare-exchange. Under the model this never
            /// fails spuriously (see the module caveats).
            pub fn compare_exchange_weak(
                &self,
                expected: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match current_ctx() {
                    None => self
                        .inner
                        .compare_exchange_weak(expected, new, success, failure),
                    Some(_) => self.compare_exchange(expected, new, success, failure),
                }
            }

            /// Exclusive access to the value (`&mut` proves no concurrency;
            /// the mirror always holds the modification-order-latest value).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

fn usize_to_u64(v: usize) -> u64 {
    v as u64
}
fn u64_to_usize(v: u64) -> usize {
    v as usize
}
fn isize_to_u64(v: isize) -> u64 {
    v as i64 as u64
}
fn u64_to_isize(v: u64) -> isize {
    v as i64 as isize
}
fn u64_to_u64(v: u64) -> u64 {
    v
}
fn u32_to_u64(v: u32) -> u64 {
    v as u64
}
fn u64_to_u32(v: u64) -> u32 {
    v as u32
}

instrumented_atomic!(
    /// Model-instrumented drop-in for `std::sync::atomic::AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize,
    usize_to_u64,
    u64_to_usize
);
instrumented_atomic!(
    /// Model-instrumented drop-in for `std::sync::atomic::AtomicIsize`.
    AtomicIsize,
    std::sync::atomic::AtomicIsize,
    isize,
    isize_to_u64,
    u64_to_isize
);
instrumented_atomic!(
    /// Model-instrumented drop-in for `std::sync::atomic::AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64,
    u64_to_u64,
    u64_to_u64
);
instrumented_atomic!(
    /// Model-instrumented drop-in for `std::sync::atomic::AtomicU32`.
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32,
    u32_to_u64,
    u64_to_u32
);
