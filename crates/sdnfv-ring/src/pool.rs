//! Bounded packet pool modelling the shared huge-page packet buffers.
//!
//! In the paper's platform, DPDK DMAs arriving frames into huge pages shared
//! between the host and all NF VMs, and a fixed-size descriptor pool bounds
//! how many packets can be in flight inside one host. [`PacketPool`] plays
//! that role here: allocation hands out a [`PooledPacket`] handle, dropping
//! the handle returns the slot, and allocation failures are counted so the
//! data plane can report drops due to pool exhaustion.

use crate::sync::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use sdnfv_proto::Packet;

/// Statistics exported by a [`PacketPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Packets currently allocated from the pool.
    pub in_use: usize,
    /// Total successful allocations.
    pub allocated: u64,
    /// Allocations that failed because the pool was exhausted.
    pub exhausted: u64,
}

struct PoolInner {
    capacity: usize,
    in_use: AtomicUsize,
    allocated: AtomicU64,
    exhausted: AtomicU64,
}

/// A bounded pool of packet buffers shared by one NF host.
#[derive(Clone)]
pub struct PacketPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for PacketPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ORDER: Relaxed — debug formatting reads a gauge, nothing more.
        f.debug_struct("PacketPool")
            .field("capacity", &self.inner.capacity)
            .field("in_use", &self.inner.in_use.load(Ordering::Relaxed))
            .finish()
    }
}

impl PacketPool {
    /// Creates a pool with room for `capacity` in-flight packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "packet pool capacity must be non-zero");
        PacketPool {
            inner: Arc::new(PoolInner {
                capacity,
                in_use: AtomicUsize::new(0),
                allocated: AtomicU64::new(0),
                exhausted: AtomicU64::new(0),
            }),
        }
    }

    /// Wraps `packet` in a pooled handle, or returns `None` (counting the
    /// failure) if the pool is exhausted. A `None` corresponds to the NIC
    /// dropping the frame because no mbuf was available.
    pub fn alloc(&self, packet: Packet) -> Option<PooledPacket> {
        // Reserve a slot optimistically; back out if we overshot capacity.
        // ORDER: Relaxed — `in_use` is a pure occupancy counter: the RMW's
        // atomicity alone bounds it (no slot data is guarded by it; the
        // packet travels inside the handle). Downgraded from AcqRel; the
        // model checker's pool check proves the bound holds and no handle's
        // packet is ever racy.
        let prev = self.inner.in_use.fetch_add(1, Ordering::Relaxed);
        if prev >= self.inner.capacity {
            // ORDER: Relaxed — undoing our own reservation; see above.
            self.inner.in_use.fetch_sub(1, Ordering::Relaxed);
            // ORDER: Relaxed — pure telemetry counter, no reader pairs with it.
            self.inner.exhausted.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // ORDER: Relaxed — pure telemetry counter, no reader pairs with it.
        self.inner.allocated.fetch_add(1, Ordering::Relaxed);
        Some(PooledPacket {
            packet,
            pool: Arc::clone(&self.inner),
        })
    }

    /// Pool capacity in packets.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Packets currently allocated.
    pub fn in_use(&self) -> usize {
        // ORDER: Relaxed — gauge; exactness is only meaningful to a caller
        // that has otherwise synchronized with the allocating threads.
        self.inner.in_use.load(Ordering::Relaxed)
    }

    /// Returns a snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            // ORDER: Relaxed (all three) — independent telemetry counters;
            // the snapshot is not required to be a consistent cut.
            in_use: self.inner.in_use.load(Ordering::Relaxed),
            allocated: self.inner.allocated.load(Ordering::Relaxed),
            exhausted: self.inner.exhausted.load(Ordering::Relaxed),
        }
    }
}

/// A packet allocated from a [`PacketPool`]; releasing the handle returns
/// its slot to the pool.
pub struct PooledPacket {
    packet: Packet,
    pool: Arc<PoolInner>,
}

impl std::fmt::Debug for PooledPacket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledPacket")
            .field("len", &self.packet.len())
            .finish()
    }
}

impl PooledPacket {
    /// Read access to the packet.
    pub fn packet(&self) -> &Packet {
        &self.packet
    }

    /// Mutable access to the packet (requires exclusive ownership of the
    /// handle, so this is always race-free).
    pub fn packet_mut(&mut self) -> &mut Packet {
        &mut self.packet
    }

    /// Consumes the handle and returns the packet, releasing the pool slot.
    pub fn into_packet(self) -> Packet {
        // `self` is dropped at the end of this function which releases the
        // slot; cloning the frame out first keeps the accounting in Drop.
        self.packet.clone()
    }
}

impl std::ops::Deref for PooledPacket {
    type Target = Packet;

    fn deref(&self) -> &Packet {
        &self.packet
    }
}

impl std::ops::DerefMut for PooledPacket {
    fn deref_mut(&mut self) -> &mut Packet {
        &mut self.packet
    }
}

impl Drop for PooledPacket {
    fn drop(&mut self) {
        // ORDER: Relaxed — occupancy counter; the packet leaves with the
        // handle, so nothing downstream reads data "published" by this
        // decrement (see `alloc`). Downgraded from AcqRel; model-checked.
        self.pool.in_use.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;

    fn pkt() -> Packet {
        PacketBuilder::udp().payload(b"test").build()
    }

    #[test]
    fn allocation_and_release() {
        let pool = PacketPool::new(2);
        let a = pool.alloc(pkt()).unwrap();
        let b = pool.alloc(pkt()).unwrap();
        assert_eq!(pool.in_use(), 2);
        assert!(pool.alloc(pkt()).is_none());
        assert_eq!(pool.stats().exhausted, 1);
        drop(a);
        assert_eq!(pool.in_use(), 1);
        let c = pool.alloc(pkt()).unwrap();
        assert_eq!(pool.in_use(), 2);
        drop(b);
        drop(c);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.stats().allocated, 3);
    }

    #[test]
    fn deref_gives_packet_access() {
        let pool = PacketPool::new(1);
        let mut p = pool.alloc(pkt()).unwrap();
        assert_eq!(p.l4_payload().unwrap(), b"test");
        p.packet_mut().ingress_port = 7;
        assert_eq!(p.packet().ingress_port, 7);
        let raw = p.into_packet();
        assert_eq!(raw.ingress_port, 7);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = PacketPool::new(0);
    }

    #[test]
    fn clone_shares_accounting() {
        let pool = PacketPool::new(4);
        let pool2 = pool.clone();
        let _a = pool.alloc(pkt()).unwrap();
        assert_eq!(pool2.in_use(), 1);
        assert_eq!(pool2.capacity(), 4);
    }
}
