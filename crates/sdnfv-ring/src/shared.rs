//! Reference-counted packet handles for parallel NF processing.
//!
//! When the NF Manager dispatches one packet to several read-only NFs at the
//! same time (paper §4.2), each NF receives a [`SharedPacket`] handle over
//! the same underlying buffer. The handle carries the explicit reference
//! counter the paper adds to the DPDK packet descriptor: the RX thread
//! initializes it to the parallelization factor and each NF decrements it on
//! completion; whoever performs the final decrement learns that the packet is
//! ready for the TX thread's conflict-resolution step.

use crate::sync::{AtomicU32, Ordering};
use parking_lot::RwLock;
use std::sync::Arc;

use sdnfv_proto::Packet;

struct SharedInner {
    packet: RwLock<Packet>,
    remaining: AtomicU32,
    readers: u32,
}

/// A packet shared (read-mostly) between several concurrently running NFs.
#[derive(Clone)]
pub struct SharedPacket {
    inner: Arc<SharedInner>,
}

impl std::fmt::Debug for SharedPacket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPacket")
            .field("remaining", &self.remaining())
            .field("readers", &self.inner.readers)
            .finish()
    }
}

impl SharedPacket {
    /// Wraps `packet` for dispatch to `readers` parallel NFs.
    ///
    /// # Panics
    ///
    /// Panics if `readers` is zero.
    pub fn new(packet: Packet, readers: u32) -> Self {
        assert!(readers > 0, "a shared packet needs at least one reader");
        SharedPacket {
            inner: Arc::new(SharedInner {
                packet: RwLock::new(packet),
                remaining: AtomicU32::new(readers),
                readers,
            }),
        }
    }

    /// Runs `f` with read access to the packet. Multiple NFs may hold read
    /// access simultaneously — this is the parallel fast path.
    pub fn with_read<R>(&self, f: impl FnOnce(&Packet) -> R) -> R {
        f(&self.inner.packet.read())
    }

    /// Acquires a read guard on the packet. Used by the batch dispatch path,
    /// which locks a whole burst of descriptors before handing the NF one
    /// [`PacketBatch`](../../sdnfv_nf/batch/struct.PacketBatch.html) over all
    /// of them.
    pub fn read_guard(&self) -> std::sync::RwLockReadGuard<'_, Packet> {
        self.inner.packet.read()
    }

    /// Acquires a write guard on the packet (batch twin of
    /// [`SharedPacket::with_write`]). The data plane only write-locks
    /// descriptors owned by exactly one NF, so the lock is uncontended.
    pub fn write_guard(&self) -> std::sync::RwLockWriteGuard<'_, Packet> {
        self.inner.packet.write()
    }

    /// Runs `f` with exclusive write access to the packet.
    ///
    /// The data plane only grants this to NFs that declared themselves
    /// non-read-only, which are never scheduled in parallel with others, so
    /// in practice the lock is uncontended.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Packet) -> R) -> R {
        f(&mut self.inner.packet.write())
    }

    /// Records that one parallel NF finished with the packet. Returns `true`
    /// for the final completion, i.e. when the caller should hand the packet
    /// to the TX thread for conflict resolution.
    pub fn complete_one(&self) -> bool {
        // ORDER: AcqRel — classic refcount-release protocol: the release
        // half publishes this NF's packet writes before the decrement, the
        // acquire half makes the *final* decrementer (who returns `true` and
        // hands the packet to TX conflict resolution) happen-after every
        // earlier decrementer's work. The RwLock also orders packet data,
        // but the descriptor handoff itself must not rely on it (the TX
        // thread reads the verdict without locking). Model-checked.
        let prev = self.inner.remaining.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "complete_one called more times than readers");
        prev == 1
    }

    /// Number of parallel NFs that have not yet completed.
    pub fn remaining(&self) -> u32 {
        // ORDER: Acquire — pairs with the release half of `complete_one`,
        // so a dispatcher that observes 0 also observes all NFs' completed
        // work before re-arming or reclaiming the descriptor.
        self.inner.remaining.load(Ordering::Acquire)
    }

    /// Re-arms the completion counter for another dispatch of the same
    /// packet (the TX thread does this when forwarding a packet to the next
    /// NF in a sequential chain, so the buffer is never copied).
    ///
    /// # Panics
    ///
    /// Panics if called while previous readers are still outstanding or if
    /// `readers` is zero.
    pub fn re_arm(&self, readers: u32) {
        assert!(readers > 0, "a shared packet needs at least one reader");
        // ORDER: AcqRel — acquire so re-arming happens-after the previous
        // round's final `complete_one` (whose work the next readers may
        // read), release so the new readers' first decrement happens-after
        // the TX thread's forwarding decision.
        let previous = self.inner.remaining.swap(readers, Ordering::AcqRel);
        assert_eq!(
            previous, 0,
            "re_arm called while {previous} readers are still outstanding"
        );
    }

    /// The parallelization factor the packet was dispatched with.
    pub fn readers(&self) -> u32 {
        self.inner.readers
    }

    /// Returns `true` if both handles reference the same underlying packet
    /// buffer (used by batch dispatch to avoid locking one buffer twice).
    pub fn same_buffer(&self, other: &SharedPacket) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Extracts the packet once all handles but this one are gone, or returns
    /// `self` if other NFs still reference it.
    pub fn try_into_packet(self) -> Result<Packet, SharedPacket> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.packet.into_inner()),
            Err(inner) => Err(SharedPacket { inner }),
        }
    }

    /// Clones the underlying frame (used when a copy must outlive the pool).
    pub fn clone_packet(&self) -> Packet {
        self.inner.packet.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnfv_proto::packet::PacketBuilder;
    use std::thread;

    fn pkt() -> Packet {
        PacketBuilder::udp().payload(b"shared").build()
    }

    #[test]
    fn completion_counting() {
        let sp = SharedPacket::new(pkt(), 3);
        assert_eq!(sp.remaining(), 3);
        assert_eq!(sp.readers(), 3);
        assert!(!sp.complete_one());
        assert!(!sp.complete_one());
        assert!(sp.complete_one());
        assert_eq!(sp.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "more times than readers")]
    fn over_completion_panics() {
        let sp = SharedPacket::new(pkt(), 1);
        let _ = sp.complete_one();
        let _ = sp.complete_one();
    }

    #[test]
    #[should_panic(expected = "at least one reader")]
    fn zero_readers_panics() {
        let _ = SharedPacket::new(pkt(), 0);
    }

    #[test]
    fn parallel_reads_see_same_data() {
        let sp = SharedPacket::new(pkt(), 4);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let sp = sp.clone();
            handles.push(thread::spawn(move || {
                let payload = sp.with_read(|p| p.l4_payload().unwrap().to_vec());
                sp.complete_one();
                payload
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), b"shared");
        }
        assert_eq!(sp.remaining(), 0);
    }

    #[test]
    fn write_access_mutates_for_all() {
        let sp = SharedPacket::new(pkt(), 1);
        sp.with_write(|p| p.l4_payload_mut().unwrap()[0] = b'X');
        assert_eq!(sp.with_read(|p| p.l4_payload().unwrap()[0]), b'X');
    }

    #[test]
    fn into_packet_when_sole_owner() {
        let sp = SharedPacket::new(pkt(), 2);
        let clone = sp.clone();
        let sp = sp.try_into_packet().unwrap_err();
        drop(clone);
        let packet = sp.try_into_packet().unwrap();
        assert_eq!(packet.l4_payload().unwrap(), b"shared");
    }

    #[test]
    fn re_arm_allows_sequential_reuse() {
        let sp = SharedPacket::new(pkt(), 1);
        assert!(sp.complete_one());
        sp.re_arm(2);
        assert_eq!(sp.remaining(), 2);
        assert!(!sp.complete_one());
        assert!(sp.complete_one());
    }

    #[test]
    #[should_panic(expected = "still outstanding")]
    fn re_arm_with_outstanding_readers_panics() {
        let sp = SharedPacket::new(pkt(), 2);
        sp.re_arm(1);
    }

    #[test]
    fn clone_packet_copies_frame() {
        let sp = SharedPacket::new(pkt(), 1);
        let copy = sp.clone_packet();
        assert_eq!(copy.l4_payload().unwrap(), b"shared");
    }
}
