//! Bounded single-producer / single-consumer rings.
//!
//! The ring is a native lock-free Lamport queue: the producer owns the
//! `tail` cursor, the consumer owns the `head` cursor, and each side keeps a
//! cached copy of the other's cursor so the common case touches no shared
//! cache line it does not own. The [`Producer`] and [`Consumer`] handles are
//! separate owned (non-cloneable) types so that the single-producer /
//! single-consumer discipline the paper relies on for lock-freedom is
//! enforced by ownership rather than by convention.
//!
//! Batching is first-class: [`Producer::push_n`] and [`Consumer::pop_n`]
//! move a whole burst of elements with a **single atomic cursor update**,
//! amortizing the release-store (and the consumer's acquire-load) over the
//! burst — the DPDK `rte_ring_enqueue_burst` idiom the paper's NF Manager
//! is built on (§4.1).
//!
//! **Determinism.** When producer and consumer are driven from one thread
//! (the deterministic-simulation harness interleaves all actors on a
//! single scheduler thread), every operation is a pure function of the
//! call sequence: there is no internal concurrency, timing dependence or
//! randomized state, so a replayed call sequence yields identical results
//! — the property `sdnfv-dst` builds its byte-identical-replay guarantee
//! on.

use std::cell::Cell;
use std::sync::Arc;

use crate::sync::{AtomicUsize, Ordering, Slot};

/// Error returned by [`Producer::push`] when the ring is full; the rejected
/// element is handed back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct PushError<T>(pub T);

/// Pads a cursor to its own cache line so producer and consumer cursors do
/// not false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared<T> {
    buffer: Box<[Slot<T>]>,
    /// Index mask; the physical buffer length is a power of two.
    mask: usize,
    /// Logical capacity as requested by the caller (≤ physical length).
    capacity: usize,
    /// Consumer cursor: total elements ever dequeued.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor: total elements ever enqueued.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the producer/consumer protocol guarantees a slot is accessed by
// exactly one side at a time (the cursors partition the buffer), so the ring
// is Sync whenever the element can be sent between threads.
unsafe impl<T: Send> Sync for Shared<T> {}
// SAFETY: same argument as Sync — the ring's contents are only `T`s (the
// slots) and cursors, all movable to another thread when `T: Send`.
unsafe impl<T: Send> Send for Shared<T> {}

impl<T> Shared<T> {
    #[inline]
    fn slot(&self, pos: usize) -> &Slot<T> {
        &self.buffer[pos & self.mask]
    }

    #[inline]
    fn len(&self) -> usize {
        // ORDER: Acquire on both cursors keeps this gauge as fresh as the
        // callers' other synchronization. Called from the producer, `tail`
        // is exact and a stale `head` only over-reports occupancy; from the
        // consumer, `head` is exact and a stale `tail` only under-reports —
        // both errors are on the conservative side for their callers
        // (backpressure and load-balancing decisions).
        let tail = self.tail.0.load(Ordering::Acquire);
        // ORDER: Acquire — same one-sided-staleness argument as above.
        let head = self.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both handles are gone; drop any elements still queued.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut pos = head;
        while pos != tail {
            // SAFETY: `&mut self` proves exclusive access, and the cursors
            // delimit exactly the slots holding initialized, un-consumed
            // values.
            unsafe { self.slot(pos).drop_in_place() };
            pos = pos.wrapping_add(1);
        }
    }
}

/// Creates a bounded SPSC ring with space for `capacity` elements.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn spsc_ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be non-zero");
    let physical = capacity.next_power_of_two();
    let buffer: Box<[Slot<T>]> = (0..physical).map(|_| Slot::new()).collect();
    let shared = Arc::new(Shared {
        buffer,
        mask: physical - 1,
        capacity,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            cached_head: Cell::new(0),
            rejected: Cell::new(0),
        },
        Consumer {
            shared,
            cached_tail: Cell::new(0),
        },
    )
}

/// The producing side of an SPSC ring.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Last observed consumer cursor; refreshed only when the ring looks
    /// full, so steady-state pushes read no consumer-owned cache line.
    cached_head: Cell<usize>,
    /// Pushes rejected because the ring was full (i.e. drops at this ring).
    rejected: Cell<u64>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl<T> Producer<T> {
    /// Returns how many slots are free, refreshing the cached consumer
    /// cursor if the cached view says fewer than `wanted` are available.
    #[inline]
    fn free_slots(&self, tail: usize, wanted: usize) -> usize {
        let cap = self.shared.capacity;
        let mut free = cap - tail.wrapping_sub(self.cached_head.get());
        if free < wanted {
            // ORDER: Acquire pairs with the consumer's Release store of
            // `head`: observing head == h proves the consumer has finished
            // reading every slot below h, so the producer may overwrite
            // them. (This is the edge that makes slot reuse race-free; the
            // model checker verifies it.)
            let head = self.shared.head.0.load(Ordering::Acquire);
            self.cached_head.set(head);
            free = cap - tail.wrapping_sub(head);
        }
        free
    }

    /// Enqueues `value`, or returns it in a [`PushError`] if the ring is full.
    pub fn push(&self, value: T) -> Result<(), PushError<T>> {
        // ORDER: Relaxed — the producer is the only thread that ever stores
        // `tail`, so its own last store is the only value this can observe.
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        if self.free_slots(tail, 1) == 0 {
            self.rejected.set(self.rejected.get() + 1);
            return Err(PushError(value));
        }
        // SAFETY: `free_slots` proved slot `tail` is unoccupied and the
        // cursor protocol gives the producer exclusive access to it until
        // the release store below publishes it.
        unsafe { self.shared.slot(tail).write(value) };
        // ORDER: Release publishes the slot write above; pairs with the
        // consumer's Acquire load of `tail` in `visible`.
        self.shared
            .tail
            .0
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueues a burst: moves as many elements as fit from the **front** of
    /// `items` (preserving order) and publishes them with a single release
    /// store of the producer cursor. Returns how many were enqueued; the
    /// unpushed remainder stays in `items`.
    ///
    /// Every element that did not fit counts toward
    /// [`rejected`](Producer::rejected) — per call, so a caller that retries
    /// the remainder counts it again (exactly as retried scalar
    /// [`push`](Producer::push) calls do).
    pub fn push_n(&self, items: &mut Vec<T>) -> usize {
        if items.is_empty() {
            return 0;
        }
        // ORDER: Relaxed — producer-owned cursor, see `push`.
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        let take = self.free_slots(tail, items.len()).min(items.len());
        let unpushed = (items.len() - take) as u64;
        if unpushed > 0 {
            self.rejected.set(self.rejected.get() + unpushed);
        }
        if take == 0 {
            return 0;
        }
        for (offset, value) in items.drain(..take).enumerate() {
            // SAFETY: `free_slots` proved all `take` slots starting at
            // `tail` are unoccupied and producer-owned until published.
            unsafe { self.shared.slot(tail.wrapping_add(offset)).write(value) };
        }
        // One atomic update publishes the whole burst.
        // ORDER: Release publishes every slot write of the burst at once;
        // pairs with the consumer's Acquire load of `tail` in `visible`.
        self.shared
            .tail
            .0
            .store(tail.wrapping_add(take), Ordering::Release);
        take
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Returns `true` if the ring holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the ring is full.
    pub fn is_full(&self) -> bool {
        self.len() >= self.shared.capacity
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Slots currently free for pushing. Exact from the producer side (the
    /// consumer only ever makes more room), so a single-threaded scheduler
    /// can use it to decide deterministically how much fits.
    pub fn free_space(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Number of pushes rejected because the ring was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }
}

/// The consuming side of an SPSC ring.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Last observed producer cursor; refreshed only when the ring looks
    /// empty, so a draining consumer reads no producer-owned cache line.
    cached_tail: Cell<usize>,
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl<T> Consumer<T> {
    /// Returns how many elements are visible, refreshing the cached producer
    /// cursor if the cached view says fewer than `wanted`.
    #[inline]
    fn visible(&self, head: usize, wanted: usize) -> usize {
        let mut available = self.cached_tail.get().wrapping_sub(head);
        if available < wanted {
            // ORDER: Acquire pairs with the producer's Release store of
            // `tail`: observing tail == t makes every slot write below t
            // visible, so the consumer may read those slots. (The model
            // checker's seeded-bug suite proves weakening either side of
            // this pair to Relaxed is caught as a data race.)
            let tail = self.shared.tail.0.load(Ordering::Acquire);
            self.cached_tail.set(tail);
            available = tail.wrapping_sub(head);
        }
        available
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&self) -> Option<T> {
        // ORDER: Relaxed — the consumer is the only thread that ever stores
        // `head`, so its own last store is the only value this can observe.
        let head = self.shared.head.0.load(Ordering::Relaxed);
        if self.visible(head, 1) == 0 {
            return None;
        }
        // SAFETY: `visible` proved slot `head` holds a published value the
        // consumer now has exclusive access to (the producer will not touch
        // it again until the release store below returns the slot).
        let value = unsafe { self.shared.slot(head).read() };
        // ORDER: Release hands the consumed slot back to the producer;
        // pairs with the producer's Acquire load of `head` in `free_slots`.
        self.shared
            .head
            .0
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Dequeues a burst: appends up to `max` elements to `out` and retires
    /// them with a single release store of the consumer cursor. Returns how
    /// many were dequeued.
    pub fn pop_n(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        // ORDER: Relaxed — consumer-owned cursor, see `pop`.
        let head = self.shared.head.0.load(Ordering::Relaxed);
        let take = self.visible(head, max).min(max);
        if take == 0 {
            return 0;
        }
        out.reserve(take);
        for offset in 0..take {
            // SAFETY: `visible` proved all `take` slots starting at `head`
            // hold published values the consumer has exclusive access to.
            out.push(unsafe { self.shared.slot(head.wrapping_add(offset)).read() });
        }
        // One atomic update retires the whole burst.
        // ORDER: Release returns every consumed slot of the burst at once;
        // pairs with the producer's Acquire load of `head` in `free_slots`.
        self.shared
            .head
            .0
            .store(head.wrapping_add(take), Ordering::Release);
        take
    }

    /// Dequeues up to `max` elements into a vector (batch receive, as used by
    /// poll-mode RX/TX threads). Convenience wrapper over [`Consumer::pop_n`].
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        self.pop_n(&mut out, max);
        out
    }

    /// Number of elements currently queued. This is the "queue occupancy"
    /// signal the NF Manager's load balancer reads (paper §4.2).
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Returns `true` if the ring holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Total elements ever dequeued.
    pub fn dequeued(&self) -> u64 {
        // ORDER: Acquire so a caller that learned of traffic through other
        // synchronization (e.g. the DST oracle after quiescence) sees a
        // cursor at least as fresh; a stale value only under-reports.
        self.shared.head.0.load(Ordering::Acquire) as u64
    }

    /// Total elements ever enqueued.
    pub fn enqueued(&self) -> u64 {
        // ORDER: Acquire — same freshness argument as `dequeued`.
        self.shared.tail.0.load(Ordering::Acquire) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn push_pop_in_order() {
        let (tx, rx) = spsc_ring(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.push(3).unwrap();
        assert_eq!(rx.len(), 3);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let (tx, rx) = spsc_ring(2);
        tx.push(10).unwrap();
        tx.push(11).unwrap();
        assert!(tx.is_full());
        assert_eq!(tx.push(12), Err(PushError(12)));
        assert_eq!(tx.rejected(), 1);
        assert_eq!(rx.pop(), Some(10));
        tx.push(13).unwrap();
        assert_eq!(rx.pop_batch(10), vec![11, 13]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = spsc_ring::<u8>(0);
    }

    #[test]
    fn free_space_is_exact_for_the_producer() {
        let (tx, rx) = spsc_ring(4);
        assert_eq!(tx.free_space(), 4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.free_space(), 2);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(tx.free_space(), 3);
        tx.push(3).unwrap();
        tx.push(4).unwrap();
        tx.push(5).unwrap();
        assert_eq!(tx.free_space(), 0);
        assert!(tx.is_full());
    }

    /// Single-threaded driving (the DST harness's mode) is deterministic:
    /// the same call sequence yields the same results, twice.
    #[test]
    fn single_threaded_replay_is_identical() {
        let run = || {
            let (tx, rx) = spsc_ring(8);
            let mut log = Vec::new();
            for round in 0..50u32 {
                let mut batch: Vec<u32> = (0..(round % 5)).map(|i| round * 10 + i).collect();
                log.push(tx.push_n(&mut batch) as u32);
                log.push(tx.free_space() as u32);
                log.extend(rx.pop_batch((round % 3) as usize + 1));
                log.push(rx.len() as u32);
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn counters_track_traffic() {
        let (tx, rx) = spsc_ring(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        assert_eq!(rx.enqueued(), 5);
        let _ = rx.pop_batch(3);
        assert_eq!(rx.dequeued(), 3);
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn non_power_of_two_capacity_is_respected() {
        let (tx, rx) = spsc_ring(3);
        assert_eq!(tx.capacity(), 3);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.push(3).unwrap();
        assert!(tx.is_full());
        assert_eq!(tx.push(4), Err(PushError(4)));
        assert_eq!(rx.pop_batch(8), vec![1, 2, 3]);
    }

    #[test]
    fn push_n_moves_a_prefix_and_preserves_order() {
        let (tx, rx) = spsc_ring(4);
        let mut burst = vec![1, 2, 3, 4, 5, 6];
        assert_eq!(tx.push_n(&mut burst), 4);
        assert_eq!(burst, vec![5, 6], "unpushed remainder stays put");
        assert_eq!(tx.rejected(), 2, "partial push counts the remainder");
        assert!(tx.is_full());
        assert_eq!(tx.push_n(&mut burst), 0);
        assert_eq!(tx.rejected(), 4, "full-ring push counts the whole burst");
        assert_eq!(rx.pop_batch(10), vec![1, 2, 3, 4]);
        assert_eq!(tx.push_n(&mut burst), 2);
        assert!(burst.is_empty());
        assert_eq!(tx.rejected(), 4, "successful burst adds nothing");
        assert_eq!(rx.pop_batch(10), vec![5, 6]);
    }

    #[test]
    fn pop_n_appends_and_respects_max() {
        let (tx, rx) = spsc_ring(8);
        for i in 0..6 {
            tx.push(i).unwrap();
        }
        let mut out = vec![99];
        assert_eq!(rx.pop_n(&mut out, 4), 4);
        assert_eq!(out, vec![99, 0, 1, 2, 3]);
        assert_eq!(rx.pop_n(&mut out, 4), 2);
        assert_eq!(out, vec![99, 0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.pop_n(&mut out, 4), 0);
    }

    #[test]
    fn batch_ops_wrap_around_the_buffer() {
        let (tx, rx) = spsc_ring(4);
        // Advance the cursors so bursts straddle the wrap point repeatedly.
        for round in 0..100u64 {
            let mut burst = vec![round * 3, round * 3 + 1, round * 3 + 2];
            assert_eq!(tx.push_n(&mut burst), 3);
            let mut out = Vec::new();
            assert_eq!(rx.pop_n(&mut out, 3), 3);
            assert_eq!(out, vec![round * 3, round * 3 + 1, round * 3 + 2]);
        }
    }

    #[test]
    fn queued_elements_are_dropped_with_the_ring() {
        let payload = Arc::new(());
        let (tx, rx) = spsc_ring(8);
        for _ in 0..5 {
            tx.push(Arc::clone(&payload)).unwrap();
        }
        let _ = rx.pop();
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1, "queued clones were dropped");
    }

    #[test]
    fn cross_thread_delivery_preserves_all_elements() {
        let (tx, rx) = spsc_ring(64);
        const N: u64 = 100_000;
        let producer = thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(PushError(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let consumer = thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, next, "elements must arrive in order");
                    next += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            next
        });
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), N);
    }

    #[test]
    fn cross_thread_batched_delivery_preserves_all_elements() {
        let (tx, rx) = spsc_ring(64);
        const N: u64 = 100_000;
        let producer = thread::spawn(move || {
            let mut pending: Vec<u64> = Vec::new();
            let mut next = 0u64;
            while next < N || !pending.is_empty() {
                while pending.len() < 32 && next < N {
                    pending.push(next);
                    next += 1;
                }
                if tx.push_n(&mut pending) == 0 {
                    std::hint::spin_loop();
                }
            }
        });
        let consumer = thread::spawn(move || {
            let mut next = 0u64;
            let mut out = Vec::new();
            while next < N {
                out.clear();
                if rx.pop_n(&mut out, 32) == 0 {
                    std::hint::spin_loop();
                    continue;
                }
                for v in &out {
                    assert_eq!(*v, next, "elements must arrive in order");
                    next += 1;
                }
            }
            next
        });
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), N);
    }
}
