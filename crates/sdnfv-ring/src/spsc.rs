//! Bounded single-producer / single-consumer rings.
//!
//! The ring is backed by a lock-free array queue; the [`Producer`] and
//! [`Consumer`] handles are separate owned (non-cloneable) types so that the
//! single-producer / single-consumer discipline the paper relies on for
//! lock-freedom is enforced by ownership rather than by convention.

use crossbeam::queue::ArrayQueue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Error returned by [`Producer::push`] when the ring is full; the rejected
/// element is handed back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct PushError<T>(pub T);

struct Shared<T> {
    queue: ArrayQueue<T>,
    /// Total elements ever enqueued (for occupancy statistics).
    enqueued: AtomicU64,
    /// Total elements ever dequeued.
    dequeued: AtomicU64,
    /// Pushes rejected because the ring was full (i.e. drops at this ring).
    rejected: AtomicU64,
}

/// Creates a bounded SPSC ring with space for `capacity` elements.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn spsc_ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be non-zero");
    let shared = Arc::new(Shared {
        queue: ArrayQueue::new(capacity),
        enqueued: AtomicU64::new(0),
        dequeued: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

/// The producing side of an SPSC ring.
#[derive(Debug)]
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming side of an SPSC ring.
#[derive(Debug)]
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("len", &self.queue.len())
            .field("capacity", &self.queue.capacity())
            .finish()
    }
}

impl<T> Producer<T> {
    /// Enqueues `value`, or returns it in a [`PushError`] if the ring is full.
    pub fn push(&self, value: T) -> Result<(), PushError<T>> {
        match self.shared.queue.push(value) {
            Ok(()) => {
                self.shared.enqueued.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(value) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(PushError(value))
            }
        }
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Returns `true` if the ring holds no elements.
    pub fn is_empty(&self) -> bool {
        self.shared.queue.is_empty()
    }

    /// Returns `true` if the ring is full.
    pub fn is_full(&self) -> bool {
        self.shared.queue.is_full()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Number of pushes rejected because the ring was full.
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }
}

impl<T> Consumer<T> {
    /// Dequeues the oldest element, if any.
    pub fn pop(&self) -> Option<T> {
        let value = self.shared.queue.pop();
        if value.is_some() {
            self.shared.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Dequeues up to `max` elements into a vector (batch receive, as used by
    /// poll-mode RX/TX threads).
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(max.min(self.len()));
        for _ in 0..max {
            match self.pop() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }

    /// Number of elements currently queued. This is the "queue occupancy"
    /// signal the NF Manager's load balancer reads (paper §4.2).
    pub fn len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Returns `true` if the ring holds no elements.
    pub fn is_empty(&self) -> bool {
        self.shared.queue.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Total elements ever dequeued.
    pub fn dequeued(&self) -> u64 {
        self.shared.dequeued.load(Ordering::Relaxed)
    }

    /// Total elements ever enqueued.
    pub fn enqueued(&self) -> u64 {
        self.shared.enqueued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn push_pop_in_order() {
        let (tx, rx) = spsc_ring(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.push(3).unwrap();
        assert_eq!(rx.len(), 3);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let (tx, rx) = spsc_ring(2);
        tx.push(10).unwrap();
        tx.push(11).unwrap();
        assert!(tx.is_full());
        assert_eq!(tx.push(12), Err(PushError(12)));
        assert_eq!(tx.rejected(), 1);
        assert_eq!(rx.pop(), Some(10));
        tx.push(13).unwrap();
        assert_eq!(rx.pop_batch(10), vec![11, 13]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = spsc_ring::<u8>(0);
    }

    #[test]
    fn counters_track_traffic() {
        let (tx, rx) = spsc_ring(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        assert_eq!(rx.enqueued(), 5);
        let _ = rx.pop_batch(3);
        assert_eq!(rx.dequeued(), 3);
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn cross_thread_delivery_preserves_all_elements() {
        let (tx, rx) = spsc_ring(64);
        const N: u64 = 100_000;
        let producer = thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(PushError(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let consumer = thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, next, "elements must arrive in order");
                    next += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            next
        });
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), N);
    }
}
