//! Synchronization facade: the one import site for atomics in this crate.
//!
//! Every module in `sdnfv-ring` (and `sdnfv-telemetry`'s histogram) takes
//! its atomic types from here instead of `std::sync::atomic`, so one cargo
//! feature swaps the real atomics for the recording atomics of the
//! [`model`](crate::model) interleaving checker — the shipping code *is*
//! the checked code, there is no parallel "model copy" to drift:
//!
//! * default build: the types below are plain re-exports of
//!   `std::sync::atomic` and [`Slot`] is a thin `UnsafeCell<MaybeUninit<T>>`
//!   — zero cost, byte-identical to importing std directly;
//! * `--features model`: the atomic types are the instrumented ones from
//!   [`crate::model`], and [`Slot`] reports its reads/writes to the model's
//!   data-race detector. Outside an active model execution the instrumented
//!   types delegate straight to the real atomic they wrap (same orderings),
//!   so enabling the feature workspace-wide (as building `sdnfv-check`
//!   does, via cargo feature unification) does not change the behavior of
//!   ordinary threaded tests or binaries.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicIsize, AtomicU32, AtomicU64, AtomicUsize};

#[cfg(feature = "model")]
pub use crate::model::{AtomicIsize, AtomicU32, AtomicU64, AtomicUsize};

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

/// A possibly-uninitialized shared memory slot (one ring-buffer cell).
///
/// The SPSC ring's correctness argument is that the cursor protocol hands
/// each slot to exactly one side at a time; `Slot` is where that argument
/// is *checked*: under the model cfg every access is reported to the
/// interleaving checker, which flags any pair of accesses not ordered by
/// the happens-before graph (and any read of a never-written slot).
#[derive(Debug)]
pub struct Slot<T> {
    cell: UnsafeCell<MaybeUninit<T>>,
}

impl<T> Slot<T> {
    /// A new, uninitialized slot.
    pub fn new() -> Self {
        Slot {
            cell: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Writes `value` into the slot, without dropping a previous occupant.
    ///
    /// # Safety
    ///
    /// The caller must guarantee exclusive access to the slot for the
    /// duration of the call (in the ring: the producer owns slots in
    /// `[tail, head + capacity)`), and that any previously written value
    /// has already been moved out or dropped.
    pub unsafe fn write(&self, value: T) {
        #[cfg(feature = "model")]
        crate::model::trace_nonatomic_write(self as *const _ as usize);
        // SAFETY: exclusive access is the caller's contract (checked under
        // the model cfg by the race detector).
        unsafe { (*self.cell.get()).write(value) };
    }

    /// Moves the value out of the slot, leaving it logically uninitialized.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the slot holds an initialized value it has
    /// exclusive access to (in the ring: the consumer owns slots in
    /// `[head, tail)`), and must not read the slot again before the next
    /// `write`.
    pub unsafe fn read(&self) -> T {
        #[cfg(feature = "model")]
        crate::model::trace_nonatomic_read(self as *const _ as usize);
        // SAFETY: initialization and exclusivity are the caller's contract
        // (checked under the model cfg by the race detector).
        unsafe { (*self.cell.get()).assume_init_read() }
    }

    /// Drops the value in place.
    ///
    /// # Safety
    ///
    /// The caller must hold `&mut`-grade exclusive access (only called from
    /// the ring's `Drop`, where `&mut self` proves no other handle exists)
    /// and the slot must hold an initialized value. Not reported to the
    /// model: `&mut` exclusivity is already guaranteed by the borrow
    /// checker, so no interleaving can race it.
    pub unsafe fn drop_in_place(&self) {
        // SAFETY: initialization and `&mut`-grade exclusivity are the
        // caller's contract.
        unsafe { std::ptr::drop_in_place((*self.cell.get()).as_mut_ptr()) };
    }
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Self::new()
    }
}
