//! Property tests for the SPSC ring and packet pool invariants.

#![cfg(feature = "proptest")]
// Gated off by default: the real `proptest` crate is unavailable in the
// offline build environment (see shims/README.md and ROADMAP.md).
use proptest::prelude::*;
use sdnfv_proto::packet::PacketBuilder;
use sdnfv_ring::{spsc_ring, PacketPool, PushError, SharedPacket};

proptest! {
    /// The ring never loses, duplicates, or reorders elements for any
    /// interleaving of pushes and pops generated from an operation script.
    #[test]
    fn ring_preserves_fifo_order(ops in proptest::collection::vec(any::<bool>(), 1..200), cap in 1usize..32) {
        let (tx, rx) = spsc_ring(cap);
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        for push in ops {
            if push {
                match tx.push(next_in) {
                    Ok(()) => next_in += 1,
                    Err(PushError(v)) => {
                        prop_assert_eq!(v, next_in);
                        prop_assert!(tx.is_full());
                    }
                }
            } else {
                match rx.pop() {
                    Some(v) => {
                        prop_assert_eq!(v, next_out);
                        next_out += 1;
                    }
                    None => prop_assert!(rx.is_empty()),
                }
            }
            prop_assert_eq!(rx.len() as u32, next_in - next_out);
            prop_assert!(rx.len() <= cap);
        }
        // Drain and check nothing was lost.
        while let Some(v) = rx.pop() {
            prop_assert_eq!(v, next_out);
            next_out += 1;
        }
        prop_assert_eq!(next_out, next_in);
    }

    /// The pool never hands out more packets than its capacity and always
    /// recovers slots when handles are dropped.
    #[test]
    fn pool_never_exceeds_capacity(cap in 1usize..16, allocs in 1usize..64, drop_every in 1usize..8) {
        let pool = PacketPool::new(cap);
        let mut held = Vec::new();
        let mut succeeded = 0u64;
        for i in 0..allocs {
            let pkt = PacketBuilder::udp().payload(&[i as u8]).build();
            if let Some(handle) = pool.alloc(pkt) {
                held.push(handle);
                succeeded += 1;
            }
            prop_assert!(pool.in_use() <= cap);
            if i % drop_every == 0 && !held.is_empty() {
                held.remove(0);
            }
        }
        prop_assert_eq!(pool.stats().allocated, succeeded);
        drop(held);
        prop_assert_eq!(pool.in_use(), 0);
    }

    /// Exactly one of N parallel completions observes "last", regardless of N.
    #[test]
    fn shared_packet_single_last_completion(readers in 1u32..16) {
        let sp = SharedPacket::new(PacketBuilder::udp().build(), readers);
        let mut lasts = 0;
        for _ in 0..readers {
            if sp.complete_one() {
                lasts += 1;
            }
        }
        prop_assert_eq!(lasts, 1);
        prop_assert_eq!(sp.remaining(), 0);
    }
}
