//! Figure 8: ant/elephant flow detection and rerouting.
//!
//! Two flows share a slow (congested) link. The Ant Detector NF observes
//! packet sizes and rates over two-second windows; when flow 1 drops its
//! rate it is reclassified as an "ant" and a `ChangeDefault` message moves
//! its default path onto the fast link, cutting its latency — and relieving
//! the slow link, which also helps flow 2. When flow 1 ramps back up it is
//! reclassified as an elephant and returns to the slow link.

use sdnfv_dataplane::{NfManager, PacketOutcome};
use sdnfv_flowtable::{Action, FlowMatch, FlowRule, RulePort, ServiceId};
use sdnfv_proto::packet::{Packet, PacketBuilder};

use sdnfv_nf::nfs::AntDetectorNf;

use crate::series::TimeSeries;

/// Configuration of the Figure 8 scenario.
#[derive(Debug, Clone)]
pub struct AntExperiment {
    /// Total experiment duration in seconds (180 s in the paper).
    pub duration_secs: f64,
    /// Simulation step in seconds.
    pub step_secs: f64,
    /// Time at which flow 1 reduces its rate (start of the ant phase).
    pub ant_phase_start_secs: f64,
    /// Time at which flow 1 ramps back up (end of the ant phase).
    pub ant_phase_end_secs: f64,
    /// Packets per second of flow 1 in its high-rate phases.
    pub flow1_high_pps: f64,
    /// Packets per second of flow 1 during the ant phase.
    pub flow1_low_pps: f64,
    /// Packets per second of flow 2 (constant).
    pub flow2_pps: f64,
    /// Capacity of the slow link in bytes per second.
    pub slow_link_capacity: f64,
    /// Base latency of the slow link in microseconds.
    pub slow_base_latency_us: f64,
    /// Base latency of the fast link in microseconds.
    pub fast_base_latency_us: f64,
}

impl Default for AntExperiment {
    fn default() -> Self {
        AntExperiment {
            duration_secs: 180.0,
            step_secs: 0.5,
            ant_phase_start_secs: 50.0,
            ant_phase_end_secs: 105.0,
            flow1_high_pps: 400.0,
            flow1_low_pps: 20.0,
            flow2_pps: 200.0,
            slow_link_capacity: 300_000.0,
            slow_base_latency_us: 150.0,
            fast_base_latency_us: 90.0,
        }
    }
}

/// The Figure 8 output: per-flow latency over time plus bookkeeping about
/// when the detector acted.
#[derive(Debug, Clone)]
pub struct AntResult {
    /// Latency of flow 1 (the flow that becomes an ant) over time, in µs.
    pub flow1_latency: TimeSeries,
    /// Latency of flow 2 over time, in µs.
    pub flow2_latency: TimeSeries,
    /// Times (seconds) at which the detector changed a flow's default path.
    pub reroute_times: Vec<f64>,
}

/// The slow and fast egress ports used by the scenario's flow rules.
const SLOW_PORT: u16 = 1;
const FAST_PORT: u16 = 2;

impl AntExperiment {
    fn flow1_packet(&self, size: usize) -> Packet {
        PacketBuilder::udp()
            .src_ip([10, 0, 0, 1])
            .dst_ip([10, 0, 9, 9])
            .src_port(5001)
            .dst_port(7000)
            .total_size(size)
            .ingress_port(0)
            .build()
    }

    fn flow2_packet(&self) -> Packet {
        PacketBuilder::udp()
            .src_ip([10, 0, 0, 2])
            .dst_ip([10, 0, 9, 9])
            .src_port(5002)
            .dst_port(7000)
            .total_size(1024)
            .ingress_port(0)
            .build()
    }

    /// Runs the scenario.
    pub fn run(&self) -> AntResult {
        let detector_svc = ServiceId::new(1);
        let mut manager = NfManager::default();
        // Ingress -> detector; detector defaults to the slow port but may
        // steer to the fast port.
        manager.install_rule(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(detector_svc)],
        ));
        manager.install_rule(FlowRule::new(
            FlowMatch::at_step(detector_svc),
            vec![Action::ToPort(SLOW_PORT), Action::ToPort(FAST_PORT)],
        ));
        // Detector thresholds: in a 2 s window, the high-rate or large-packet
        // flow exceeds the byte budget, the quiet small-packet flow does not.
        let window_ns = 2_000_000_000;
        let ant_budget = (self.flow1_low_pps * 2.0 * 64.0 * 4.0) as u64;
        manager.add_nf(
            detector_svc,
            Box::new(AntDetectorNf::new(
                detector_svc,
                Action::ToPort(FAST_PORT),
                Action::ToPort(SLOW_PORT),
                window_ns,
                ant_budget.max(1),
                256,
            )),
        );

        let mut flow1_latency = TimeSeries::new("Flow1");
        let mut flow2_latency = TimeSeries::new("Flow2");
        let mut reroute_times = Vec::new();

        let steps = (self.duration_secs / self.step_secs).round() as usize;
        for step in 0..steps {
            let t = step as f64 * self.step_secs;
            let now_ns = (t * 1e9) as u64;
            let flow1_pps = if t >= self.ant_phase_start_secs && t < self.ant_phase_end_secs {
                self.flow1_low_pps
            } else {
                self.flow1_high_pps
            };
            // Generate this step's packets and record which port each flow
            // used (packets of one flow all follow the same default in a
            // step, so counting bytes per port is enough).
            let mut slow_bytes = 0.0;
            let mut fast_bytes = 0.0;
            let mut flow_port = [SLOW_PORT; 2];
            let flow1_count = (flow1_pps * self.step_secs).round() as usize;
            let flow2_count = (self.flow2_pps * self.step_secs).round() as usize;
            for i in 0..flow1_count.max(1) {
                let pkt = self.flow1_packet(64);
                if let PacketOutcome::Transmitted { port, packet } =
                    manager.process_packet(pkt, now_ns + i as u64)
                {
                    flow_port[0] = port;
                    match port {
                        FAST_PORT => fast_bytes += packet.len() as f64,
                        _ => slow_bytes += packet.len() as f64,
                    }
                }
            }
            for i in 0..flow2_count.max(1) {
                let pkt = self.flow2_packet();
                if let PacketOutcome::Transmitted { port, packet } =
                    manager.process_packet(pkt, now_ns + i as u64)
                {
                    flow_port[1] = port;
                    match port {
                        FAST_PORT => fast_bytes += packet.len() as f64,
                        _ => slow_bytes += packet.len() as f64,
                    }
                }
            }
            // Track reroutes (messages emitted by the detector).
            for message in manager.take_messages() {
                if matches!(message.message, sdnfv_nf::NfMessage::ChangeDefault { .. }) {
                    reroute_times.push(t);
                }
            }
            // Latency model: base latency plus congestion on the link used.
            let slow_rate = slow_bytes / self.step_secs;
            let slow_util = (slow_rate / self.slow_link_capacity).min(0.95);
            let slow_latency = self.slow_base_latency_us / (1.0 - slow_util);
            let fast_latency = self.fast_base_latency_us;
            let latency_of = |port: u16| {
                if port == FAST_PORT {
                    fast_latency
                } else {
                    slow_latency
                }
            };
            let _ = fast_bytes;
            flow1_latency.push(t, latency_of(flow_port[0]));
            flow2_latency.push(t, latency_of(flow_port[1]));
        }

        AntResult {
            flow1_latency,
            flow2_latency,
            reroute_times,
        }
    }
}

/// Runs the paper's Figure 8 configuration.
pub fn figure8() -> AntResult {
    AntExperiment::default().run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ant_phase_lowers_flow1_latency() {
        let result = figure8();
        let before = result.flow1_latency.mean_between(20.0, 48.0).unwrap();
        let during = result.flow1_latency.mean_between(60.0, 100.0).unwrap();
        let after = result.flow1_latency.mean_between(130.0, 175.0).unwrap();
        assert!(
            during < before * 0.6,
            "ant phase latency {during:.0}µs should be well below the elephant phase {before:.0}µs"
        );
        assert!(
            after > during * 1.3,
            "latency should rise again after the ant phase ({after:.0}µs vs {during:.0}µs)"
        );
    }

    #[test]
    fn flow2_benefits_from_reduced_contention() {
        let result = figure8();
        let before = result.flow2_latency.mean_between(20.0, 48.0).unwrap();
        let during = result.flow2_latency.mean_between(60.0, 100.0).unwrap();
        assert!(
            during <= before,
            "flow 2 should not get worse when flow 1 moves away ({during:.0} vs {before:.0})"
        );
    }

    #[test]
    fn detector_reroutes_at_phase_changes() {
        let result = figure8();
        assert!(
            !result.reroute_times.is_empty(),
            "the detector should have issued at least one ChangeDefault"
        );
        // At least one reroute happens shortly after the ant phase begins.
        assert!(result
            .reroute_times
            .iter()
            .any(|t| (50.0..70.0).contains(t)));
    }

    #[test]
    fn series_cover_the_whole_experiment() {
        let result = figure8();
        assert_eq!(result.flow1_latency.len(), result.flow2_latency.len());
        assert!(result.flow1_latency.len() >= 300);
        let last = result.flow1_latency.points.last().unwrap().0;
        assert!(last > 170.0);
    }
}
