//! Figure 9: multi-flow DDoS detection, scrubber VM launch and mitigation.
//!
//! A DDoS Detector NF aggregates traffic volume across all flows. Normal
//! traffic runs at a constant rate while attack traffic from a distinct
//! prefix ramps up. When the aggregate crosses the threshold the detector
//! raises an alarm (`Message`), the SDNFV Application asks the orchestrator
//! to boot a Scrubber VM (≈7.75 s), and once the scrubber starts it sends
//! `RequestMe` so that all traffic is steered through it; the scrubber then
//! drops the attack prefix, so outgoing traffic returns to the normal level
//! even while incoming traffic keeps rising.

use sdnfv_control::{AppAction, NfvOrchestrator, SdnfvApplication};
use sdnfv_dataplane::{NfManager, PacketOutcome};
use sdnfv_flowtable::{Action, FlowMatch, FlowRule, IpPrefix, RulePort, ServiceId};
use sdnfv_nf::nfs::ddos::DDOS_ALARM_KEY;
use sdnfv_nf::nfs::{DdosDetectorNf, ScrubberNf};
use sdnfv_nf::NfRegistry;
use sdnfv_proto::packet::PacketBuilder;
use std::net::Ipv4Addr;

use crate::series::TimeSeries;

/// Scale factor between simulated bytes and the gigabit rates reported in
/// the figure (the simulation generates 1/SCALE of the real traffic volume
/// and multiplies rates back up when reporting).
const SCALE: f64 = 1000.0;

/// Configuration of the Figure 9 scenario.
#[derive(Debug, Clone)]
pub struct DdosExperiment {
    /// Total duration in seconds (200 s in the paper).
    pub duration_secs: f64,
    /// Simulation step in seconds.
    pub step_secs: f64,
    /// Constant rate of legitimate traffic in Gbps (0.5 in the paper).
    pub normal_gbps: f64,
    /// Time at which the attack starts (30 s in the paper).
    pub attack_start_secs: f64,
    /// Rate at which the attack ramps, in Gbps per second.
    pub attack_ramp_gbps_per_sec: f64,
    /// Maximum attack rate in Gbps.
    pub attack_max_gbps: f64,
    /// Detection threshold in Gbps (3.2 in the paper).
    pub threshold_gbps: f64,
    /// Scrubber VM boot time in nanoseconds (7.75 s in the paper).
    pub vm_boot_ns: u64,
}

impl Default for DdosExperiment {
    fn default() -> Self {
        DdosExperiment {
            duration_secs: 200.0,
            step_secs: 0.5,
            normal_gbps: 0.5,
            attack_start_secs: 30.0,
            attack_ramp_gbps_per_sec: 0.045,
            attack_max_gbps: 4.5,
            threshold_gbps: 3.2,
            vm_boot_ns: sdnfv_control::orchestrator::PAPER_VM_BOOT_NS,
        }
    }
}

/// Output of the Figure 9 scenario.
#[derive(Debug, Clone)]
pub struct DdosResult {
    /// Incoming traffic over time (Gbps).
    pub incoming: TimeSeries,
    /// Outgoing (post-scrubbing) traffic over time (Gbps).
    pub outgoing: TimeSeries,
    /// Time at which the detector raised the alarm, if it did.
    pub detection_secs: Option<f64>,
    /// Time at which the scrubber VM became active, if it did.
    pub scrubber_active_secs: Option<f64>,
}

impl DdosExperiment {
    /// Runs the scenario.
    pub fn run(&self) -> DdosResult {
        let detector_svc = ServiceId::new(1);
        let scrubber_svc = ServiceId::new(2);
        let attack_prefix = IpPrefix::new(Ipv4Addr::new(66, 0, 0, 0), 16);

        let mut manager = NfManager::default();
        manager.install_rule(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(detector_svc)],
        ));
        // The detector's default is straight out, but the scrubber is an
        // allowed next hop so a RequestMe can claim the default edge.
        manager.install_rule(FlowRule::new(
            FlowMatch::at_step(detector_svc),
            vec![Action::ToPort(1), Action::ToService(scrubber_svc)],
        ));
        manager.install_rule(FlowRule::new(
            FlowMatch::at_step(scrubber_svc),
            vec![Action::ToPort(1)],
        ));
        // Detection threshold expressed in simulated (scaled-down) bytes/sec.
        let threshold_scaled = self.threshold_gbps * 1e9 / 8.0 / SCALE;
        manager.add_nf(
            detector_svc,
            Box::new(DdosDetectorNf::new(
                1_000_000_000,
                threshold_scaled as u64,
                16,
            )),
        );

        // Control plane: alarm -> launch the scrubber.
        let mut app = SdnfvApplication::new();
        app.register_launch_trigger(DDOS_ALARM_KEY, "scrubber");
        let mut registry = NfRegistry::new();
        registry.register("scrubber", move || ScrubberNf::for_prefix(attack_prefix));
        let mut orchestrator = NfvOrchestrator::new(registry, self.vm_boot_ns);
        let mut pending_launch: Option<(u64, Box<dyn sdnfv_nf::NetworkFunction>)> = None;

        let mut incoming = TimeSeries::new("Incoming");
        let mut outgoing = TimeSeries::new("Outgoing");
        let mut detection_secs = None;
        let mut scrubber_active_secs = None;

        let packet_size = 1000usize;
        let steps = (self.duration_secs / self.step_secs).round() as usize;
        for step in 0..steps {
            let t = step as f64 * self.step_secs;
            let now_ns = (t * 1e9) as u64;

            // Activate the scrubber when its boot completes.
            if let Some((ready_at, _)) = &pending_launch {
                if now_ns >= *ready_at {
                    let (_, nf) = pending_launch.take().expect("checked above");
                    manager.add_nf(scrubber_svc, nf);
                    scrubber_active_secs = Some(t);
                }
            }

            let attack_gbps = if t >= self.attack_start_secs {
                ((t - self.attack_start_secs) * self.attack_ramp_gbps_per_sec)
                    .min(self.attack_max_gbps)
            } else {
                0.0
            };
            let normal_bytes = self.normal_gbps * 1e9 / 8.0 * self.step_secs / SCALE;
            let attack_bytes = attack_gbps * 1e9 / 8.0 * self.step_secs / SCALE;
            let normal_count = (normal_bytes / packet_size as f64).round() as usize;
            let attack_count = (attack_bytes / packet_size as f64).round() as usize;

            let mut out_bytes = 0.0;
            let mut in_bytes = 0.0;
            let send = |manager: &mut NfManager, src: [u8; 4], count: usize, port_base: u16| {
                let mut transmitted = 0.0;
                let mut offered = 0.0;
                for i in 0..count {
                    let pkt = PacketBuilder::udp()
                        .src_ip(src)
                        .dst_ip([10, 200, 0, 1])
                        .src_port(port_base + (i % 500) as u16)
                        .dst_port(80)
                        .total_size(packet_size)
                        .ingress_port(0)
                        .build();
                    offered += pkt.len() as f64;
                    if let PacketOutcome::Transmitted { packet, .. } =
                        manager.process_packet(pkt, now_ns + i as u64)
                    {
                        transmitted += packet.len() as f64;
                    }
                }
                (offered, transmitted)
            };
            let (o1, t1) = send(&mut manager, [10, 0, 0, 5], normal_count, 1000);
            let (o2, t2) = send(&mut manager, [66, 0, 1, 5], attack_count, 2000);
            in_bytes += o1 + o2;
            out_bytes += t1 + t2;

            // Pump cross-layer messages up to the application.
            for message in manager.take_messages() {
                for action in app.handle_manager_message(0, message.from, &message.message) {
                    if let AppAction::LaunchNf { service_name, .. } = action {
                        if detection_secs.is_none() {
                            detection_secs = Some(t);
                        }
                        if pending_launch.is_none() && scrubber_active_secs.is_none() {
                            if let Some(ticket) = orchestrator.launch(0, &service_name, now_ns) {
                                pending_launch = Some((ticket.ready_at_ns, ticket.nf));
                            }
                        }
                    }
                }
            }

            let to_gbps = |bytes: f64| bytes / self.step_secs * 8.0 * SCALE / 1e9;
            incoming.push(t, to_gbps(in_bytes));
            outgoing.push(t, to_gbps(out_bytes));
        }

        DdosResult {
            incoming,
            outgoing,
            detection_secs,
            scrubber_active_secs,
        }
    }
}

/// Runs the paper's Figure 9 configuration.
pub fn figure9() -> DdosResult {
    DdosExperiment::default().run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_is_detected_and_scrubber_boots_later() {
        let result = figure9();
        let detected = result.detection_secs.expect("the attack must be detected");
        let active = result
            .scrubber_active_secs
            .expect("the scrubber must eventually start");
        // Detection happens once the aggregate crosses 3.2 Gbps, which with a
        // 0.045 Gbps/s ramp from t=30 s is around t=90 s.
        assert!(
            detected > 30.0 && detected < 150.0,
            "detected at {detected}"
        );
        // The scrubber becomes active roughly one VM boot time later.
        let gap = active - detected;
        assert!(
            (7.0..=10.0).contains(&gap),
            "scrubber activation lag {gap:.1}s should be about the 7.75 s VM boot time"
        );
    }

    #[test]
    fn outgoing_returns_to_normal_after_scrubbing() {
        let result = figure9();
        let active = result.scrubber_active_secs.unwrap();
        // Before the attack, incoming == outgoing == normal rate.
        let early_out = result.outgoing.mean_between(5.0, 25.0).unwrap();
        assert!((early_out - 0.5).abs() < 0.15, "early outgoing {early_out}");
        // While the attack grows but before scrubbing, outgoing tracks incoming.
        let before_scrub = result
            .outgoing
            .mean_between(active - 6.0, active - 1.0)
            .unwrap();
        assert!(before_scrub > 1.0);
        // Well after the scrubber starts, outgoing is back near the normal
        // rate even though incoming keeps rising.
        let after_out = result
            .outgoing
            .mean_between(active + 10.0, active + 40.0)
            .unwrap();
        let after_in = result
            .incoming
            .mean_between(active + 10.0, active + 40.0)
            .unwrap();
        assert!(after_out < 1.0, "outgoing after scrubbing {after_out}");
        assert!(
            after_in > 2.0,
            "incoming should still be large, got {after_in}"
        );
    }

    #[test]
    fn incoming_ramp_matches_configuration() {
        let result = figure9();
        let at_100 = result.incoming.value_near(100.0).unwrap();
        // 0.5 normal + 70 s of 0.045 Gbps/s ramp ≈ 3.65 Gbps.
        assert!(
            (at_100 - 3.65).abs() < 0.5,
            "incoming at t=100 was {at_100}"
        );
        // And it is capped at normal + max attack.
        assert!(result.incoming.max_y().unwrap() <= 0.5 + 4.5 + 0.3);
    }
}
