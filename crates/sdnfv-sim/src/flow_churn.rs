//! Figure 10: sustainable output flow rate versus the rate of new flows,
//! comparing the SDN-controller-mediated design with SDNFV.
//!
//! In the SDN baseline the video detector and policy engine live in the
//! controller, so the first two packets of every new flow (the TCP ACK and
//! the HTTP reply) make the round trip to the single-threaded controller
//! before a rule can be installed. In SDNFV only the first packet's header
//! is reported to the controller asynchronously while the NFs on the host
//! make the decision locally; the sustainable rate is then bounded by the
//! local data-plane work per flow, which is orders of magnitude cheaper.

use sdnfv_control::SdnController;

use crate::series::TimeSeries;

/// Parameters for the Figure 10 experiment.
#[derive(Debug, Clone)]
pub struct FlowChurnExperiment {
    /// Per-request processing time of the SDN controller in nanoseconds.
    pub controller_ns_per_request: u64,
    /// Number of packets of every new flow the SDN baseline must send to the
    /// controller (2 in the paper: connection ACK + HTTP reply).
    pub packets_to_controller_per_flow: u32,
    /// Local NF processing cost per new flow on the SDNFV host, in
    /// nanoseconds (video detector + policy engine on the first packets).
    pub sdnfv_ns_per_flow: u64,
    /// Duration of each simulated measurement interval in seconds.
    pub interval_secs: f64,
}

impl Default for FlowChurnExperiment {
    fn default() -> Self {
        FlowChurnExperiment {
            // The paper's Figure 10 knee is at roughly 1000 new flows/s for
            // the SDN case, i.e. ~1 ms of controller work per flow.
            controller_ns_per_request: 500_000,
            packets_to_controller_per_flow: 2,
            // SDNFV saturates at roughly 9x the SDN knee.
            sdnfv_ns_per_flow: 110_000,
            interval_secs: 1.0,
        }
    }
}

/// The two curves of Figure 10.
#[derive(Debug, Clone)]
pub struct FlowChurnResult {
    /// Output flow rate achieved by the SDN-controller-mediated design.
    pub sdn: TimeSeries,
    /// Output flow rate achieved by SDNFV.
    pub sdnfv: TimeSeries,
}

impl FlowChurnExperiment {
    /// Output flows/second the SDN baseline sustains at a given offered new
    /// flow rate, derived by replaying the offered flows against the serial
    /// controller model for one measurement interval.
    pub fn sdn_output_rate(&self, new_flows_per_sec: f64) -> f64 {
        let mut controller = SdnController::new(
            self.controller_ns_per_request * u64::from(self.packets_to_controller_per_flow),
            usize::MAX >> 1,
        );
        let interval_ns = (self.interval_secs * 1e9) as u64;
        let offered = (new_flows_per_sec * self.interval_secs) as u64;
        if offered == 0 {
            return 0.0;
        }
        let gap = interval_ns / offered;
        let mut completed = 0u64;
        for i in 0..offered {
            let arrival = i * gap;
            let reply = controller.packet_in(arrival, 0, 0, &dummy_key(i), |_, _, _| Vec::new());
            if let Some(reply) = reply {
                if reply.ready_at_ns <= interval_ns {
                    completed += 1;
                }
            }
        }
        completed as f64 / self.interval_secs
    }

    /// Output flows/second SDNFV sustains at a given offered new flow rate:
    /// bounded only by the local per-flow NF work.
    pub fn sdnfv_output_rate(&self, new_flows_per_sec: f64) -> f64 {
        let capacity = 1e9 / self.sdnfv_ns_per_flow as f64;
        new_flows_per_sec.min(capacity)
    }

    /// Runs the sweep over offered new-flow rates.
    pub fn run(&self, rates: &[f64]) -> FlowChurnResult {
        let mut sdn = TimeSeries::new("SDN");
        let mut sdnfv = TimeSeries::new("SDNFV");
        for rate in rates {
            sdn.push(*rate, self.sdn_output_rate(*rate));
            sdnfv.push(*rate, self.sdnfv_output_rate(*rate));
        }
        FlowChurnResult { sdn, sdnfv }
    }
}

fn dummy_key(i: u64) -> sdnfv_proto::flow::FlowKey {
    sdnfv_proto::flow::FlowKey::new(
        std::net::Ipv4Addr::from((10u32 << 24) | (i as u32 & 0xffff)),
        std::net::Ipv4Addr::new(10, 255, 0, 1),
        (i % 60000) as u16 + 1024,
        80,
        sdnfv_proto::flow::IpProtocol::Tcp,
    )
}

/// The sweep the paper plots: 0–12 000 new flows per second.
pub fn figure10() -> FlowChurnResult {
    let rates: Vec<f64> = (0..=12).map(|r| r as f64 * 1000.0).collect();
    FlowChurnExperiment::default().run(&rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdn_saturates_around_the_controller_knee() {
        let experiment = FlowChurnExperiment::default();
        let knee = 1e9 / (experiment.controller_ns_per_request as f64 * 2.0);
        let below = experiment.sdn_output_rate(knee * 0.5);
        let above = experiment.sdn_output_rate(knee * 4.0);
        // Below the knee everything is admitted; above it the output plateaus.
        assert!((below - knee * 0.5).abs() / (knee * 0.5) < 0.05);
        assert!(above <= knee * 1.05);
    }

    #[test]
    fn sdnfv_scales_roughly_nine_times_further() {
        let result = figure10();
        let sdn_max = result.sdn.max_y().unwrap();
        let sdnfv_max = result.sdnfv.max_y().unwrap();
        let ratio = sdnfv_max / sdn_max;
        assert!(
            (6.0..=12.0).contains(&ratio),
            "expected SDNFV to sustain ~9x the SDN rate, got {ratio:.1}x"
        );
    }

    #[test]
    fn sdnfv_is_linear_until_its_own_capacity() {
        let experiment = FlowChurnExperiment::default();
        assert_eq!(experiment.sdnfv_output_rate(100.0), 100.0);
        assert_eq!(experiment.sdnfv_output_rate(5000.0), 5000.0);
        let capacity = 1e9 / experiment.sdnfv_ns_per_flow as f64;
        assert_eq!(experiment.sdnfv_output_rate(capacity * 3.0), capacity);
    }

    #[test]
    fn zero_offered_rate_is_zero_everywhere() {
        let experiment = FlowChurnExperiment::default();
        assert_eq!(experiment.sdn_output_rate(0.0), 0.0);
        assert_eq!(experiment.sdnfv_output_rate(0.0), 0.0);
    }

    #[test]
    fn curves_have_matching_x_axes() {
        let result = figure10();
        assert_eq!(result.sdn.len(), result.sdnfv.len());
        for (a, b) in result.sdn.points.iter().zip(&result.sdnfv.points) {
            assert_eq!(a.0, b.0);
            // SDNFV is never worse than the SDN baseline.
            assert!(b.1 + 1e-9 >= a.1);
        }
    }
}
