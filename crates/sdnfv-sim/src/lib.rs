//! Scenario simulators for the SDNFV evaluation (paper §5).
//!
//! The microbenchmarks (Table 2, Figures 6 and 7) run on the real threaded
//! data plane in [`sdnfv-dataplane`](sdnfv_dataplane); everything that spans
//! minutes of experiment time or needs an explicit controller / VM-boot
//! model runs here instead, against the same flow tables, network functions
//! and control-plane components, but under virtual time:
//!
//! * [`ovs`] — Figure 1: software-switch throughput collapse as the share of
//!   packets punted to the SDN controller grows;
//! * [`ant`] — Figure 8: ant/elephant detection rerouting a flow onto the
//!   fast link and the latency effect over time;
//! * [`ddos`] — Figure 9: cross-flow DDoS detection, scrubber VM launch
//!   (with the paper's 7.75 s boot time) and traffic scrubbed thereafter;
//! * [`flow_churn`] — Figure 10: sustainable output flow rate as the new
//!   flow arrival rate grows, SDN-mediated vs SDNFV;
//! * [`video`] — Figure 11: reaction of the video pipeline to a mid-stream
//!   policy change, SDNFV vs SDN;
//! * [`memcached`] — Figure 12: request RTT versus offered load for the
//!   SDNFV memcached proxy against a TwemProxy-style kernel proxy.
//!
//! Every scenario returns plain data (time series / sweep points) that the
//! `figures` binary in `sdnfv-bench` prints, and asserts nothing itself —
//! the tests in each module check the qualitative shapes the paper reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ant;
pub mod ddos;
pub mod flow_churn;
pub mod memcached;
pub mod ovs;
pub mod series;
pub mod video;

pub use series::TimeSeries;
