//! Figure 12: memcached request RTT versus request rate, comparing the
//! SDNFV application-aware proxy NF against a TwemProxy-style kernel proxy.
//!
//! Both proxies are modelled as single-server queues characterised by a
//! per-request service time plus a fixed network round-trip; the SDNFV
//! proxy's service time can be *calibrated* from the real
//! [`MemcachedProxyNf`](sdnfv_nf::nfs::MemcachedProxyNf) implementation by
//! timing it on generated request packets, tying the model to the code the
//! library actually ships. TwemProxy's service time reflects the costs the
//! paper attributes to it: interrupt-driven kernel networking, copies
//! between kernel and user space, and proxying both directions of the
//! connection.

use std::net::Ipv4Addr;
use std::time::Instant;

use sdnfv_nf::nfs::{Backend, MemcachedProxyNf};
use sdnfv_nf::{NetworkFunction, NfContext};
use sdnfv_proto::memcached::get_request;
use sdnfv_proto::packet::PacketBuilder;

use crate::series::TimeSeries;

/// A proxy model: fixed base RTT plus an M/M/1-style queueing delay around a
/// per-request service time.
#[derive(Debug, Clone)]
pub struct ProxyModel {
    /// Curve label.
    pub label: String,
    /// Per-request service time in nanoseconds.
    pub service_ns: f64,
    /// Base round-trip time (client → proxy → server → client) in
    /// microseconds, excluding queueing.
    pub base_rtt_us: f64,
}

impl ProxyModel {
    /// The TwemProxy baseline: tens of microseconds of kernel/user copies and
    /// socket handling per request, saturating around 90 k requests/s as in
    /// the paper.
    pub fn twemproxy() -> Self {
        ProxyModel {
            label: "TwemProxy".to_string(),
            service_ns: 11_000.0,
            base_rtt_us: 250.0,
        }
    }

    /// The SDNFV NF proxy with the default (paper-calibrated) service time:
    /// ~108 ns per request, i.e. ~9.2 M requests/s on one core.
    pub fn sdnfv_default() -> Self {
        ProxyModel {
            label: "SDNFV".to_string(),
            service_ns: 108.0,
            base_rtt_us: 150.0,
        }
    }

    /// An SDNFV proxy model whose service time is measured from the real
    /// `MemcachedProxyNf` implementation running over `samples` generated
    /// requests.
    pub fn sdnfv_calibrated(samples: usize) -> Self {
        let service_ns = measure_proxy_ns_per_request(samples.max(1));
        ProxyModel {
            label: "SDNFV".to_string(),
            service_ns,
            base_rtt_us: 150.0,
        }
    }

    /// The highest request rate (requests per second) the proxy sustains.
    pub fn capacity_rps(&self) -> f64 {
        1e9 / self.service_ns
    }

    /// Average RTT in microseconds at an offered rate of `rate_rps`
    /// requests per second. Beyond saturation the queue grows without bound;
    /// the model reports a steeply climbing RTT so the knee is visible in
    /// the figure, mirroring the overload behaviour the paper observes for
    /// TwemProxy.
    pub fn rtt_us(&self, rate_rps: f64) -> f64 {
        let rho = rate_rps / self.capacity_rps();
        if rho < 0.999 {
            self.base_rtt_us + self.service_ns / 1000.0 / (1.0 - rho)
        } else {
            // Overloaded: RTT grows with the amount of excess load.
            self.base_rtt_us + self.service_ns / 1000.0 * 1000.0 * rho
        }
    }
}

/// Measures the real NF's per-request processing cost in nanoseconds.
pub fn measure_proxy_ns_per_request(samples: usize) -> f64 {
    let mut proxy = MemcachedProxyNf::new(
        vec![
            Backend::new(Ipv4Addr::new(10, 10, 0, 1), 11211),
            Backend::new(Ipv4Addr::new(10, 10, 0, 2), 11211),
            Backend::new(Ipv4Addr::new(10, 10, 0, 3), 11211),
        ],
        1,
    );
    let mut ctx = NfContext::new(0);
    let packets: Vec<_> = (0..64)
        .map(|i| {
            PacketBuilder::udp()
                .src_ip([10, 0, 0, 9])
                .dst_ip([10, 10, 0, 100])
                .src_port(30000 + i as u16)
                .dst_port(11211)
                .payload(&get_request(i as u16, &format!("key:{i}")))
                .build()
        })
        .collect();
    let start = Instant::now();
    for i in 0..samples {
        let mut pkt = packets[i % packets.len()].clone();
        let _ = proxy.process_mut(&mut pkt, &mut ctx);
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    (elapsed / samples as f64).max(1.0)
}

/// Output of the Figure 12 sweep.
#[derive(Debug, Clone)]
pub struct MemcachedResult {
    /// RTT curve of the TwemProxy baseline.
    pub twemproxy: TimeSeries,
    /// RTT curve of the SDNFV proxy.
    pub sdnfv: TimeSeries,
    /// Sustainable request rate of each proxy (requests/s).
    pub twemproxy_capacity_rps: f64,
    /// Sustainable request rate of the SDNFV proxy (requests/s).
    pub sdnfv_capacity_rps: f64,
}

/// Runs the Figure 12 sweep over request rates given the two proxy models.
pub fn run(twemproxy: &ProxyModel, sdnfv: &ProxyModel, rates_krps: &[f64]) -> MemcachedResult {
    let mut twem_series = TimeSeries::new(&twemproxy.label);
    let mut sdnfv_series = TimeSeries::new(&sdnfv.label);
    for rate_krps in rates_krps {
        let rate = rate_krps * 1000.0;
        twem_series.push(*rate_krps, twemproxy.rtt_us(rate));
        sdnfv_series.push(*rate_krps, sdnfv.rtt_us(rate));
    }
    MemcachedResult {
        twemproxy: twem_series,
        sdnfv: sdnfv_series,
        twemproxy_capacity_rps: twemproxy.capacity_rps(),
        sdnfv_capacity_rps: sdnfv.capacity_rps(),
    }
}

/// The paper's Figure 12: request rates from 10 k to 10 M requests/s
/// (log-spaced), default proxy models.
pub fn figure12() -> MemcachedResult {
    let mut rates = Vec::new();
    let mut rate = 10.0;
    while rate <= 10_000.0 {
        rates.push(rate);
        rates.push(rate * 2.0);
        rates.push(rate * 5.0);
        rate *= 10.0;
    }
    run(
        &ProxyModel::twemproxy(),
        &ProxyModel::sdnfv_default(),
        &rates,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdnfv_sustains_about_two_orders_of_magnitude_more() {
        let result = figure12();
        let ratio = result.sdnfv_capacity_rps / result.twemproxy_capacity_rps;
        assert!(
            (50.0..=200.0).contains(&ratio),
            "expected ~100x capacity ratio, got {ratio:.0}x"
        );
        // The paper's headline numbers: TwemProxy overloads around 90 k
        // req/s, SDNFV sustains around 9.2 M req/s.
        assert!((80_000.0..120_000.0).contains(&result.twemproxy_capacity_rps));
        assert!((8_000_000.0..11_000_000.0).contains(&result.sdnfv_capacity_rps));
    }

    #[test]
    fn twemproxy_rtt_blows_up_at_its_knee_while_sdnfv_stays_flat() {
        let result = figure12();
        // At 200 k req/s TwemProxy is far past saturation…
        let twem_at_200k = result.twemproxy.value_near(200.0).unwrap();
        let twem_at_10k = result.twemproxy.value_near(10.0).unwrap();
        assert!(twem_at_200k > twem_at_10k * 10.0);
        // …while the SDNFV proxy's RTT has barely moved.
        let sdnfv_at_200k = result.sdnfv.value_near(200.0).unwrap();
        let sdnfv_at_10k = result.sdnfv.value_near(10.0).unwrap();
        assert!(sdnfv_at_200k < sdnfv_at_10k * 1.5);
    }

    #[test]
    fn calibration_produces_a_sub_microsecond_service_time() {
        let model = ProxyModel::sdnfv_calibrated(5_000);
        assert!(
            model.service_ns < 20_000.0,
            "real NF proxy should process a request in well under 20µs, measured {} ns",
            model.service_ns
        );
        assert!(model.capacity_rps() > 50_000.0);
    }

    #[test]
    fn rtt_is_monotone_in_load_until_saturation() {
        let model = ProxyModel::twemproxy();
        let mut last = 0.0;
        for rate in [1_000.0, 10_000.0, 50_000.0, 80_000.0] {
            let rtt = model.rtt_us(rate);
            assert!(rtt >= last);
            last = rtt;
        }
    }
}
