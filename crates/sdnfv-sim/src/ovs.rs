//! Figure 1: software-switch throughput versus the share of packets that
//! must consult the SDN controller.
//!
//! The paper measures Open vSwitch forwarding packets back out of the NIC,
//! with a configurable percentage of traffic punted to a (single-threaded
//! POX) controller. Throughput collapses as soon as the controller fraction
//! is non-trivial because every punted packet serializes behind the
//! controller's per-request processing time. This module reproduces that
//! saturation model: the achievable rate is the largest offered rate at
//! which neither the switch's own forwarding capacity nor the controller's
//! serial capacity is exceeded.

use crate::series::TimeSeries;

/// Parameters of the Figure 1 experiment.
#[derive(Debug, Clone)]
pub struct OvsExperiment {
    /// Per-packet forwarding cost of the software switch fast path, in
    /// nanoseconds (OVS kernel path, ~0.6 µs/packet on the paper's servers).
    pub switch_ns_per_packet: f64,
    /// Per-packet handling cost at the controller (packet-in, decision,
    /// packet-out) in nanoseconds. POX handles on the order of a few
    /// thousand packets per second, i.e. hundreds of microseconds each.
    pub controller_ns_per_packet: f64,
    /// Line rate of the NIC in gigabits per second.
    pub line_rate_gbps: f64,
}

impl Default for OvsExperiment {
    fn default() -> Self {
        OvsExperiment {
            switch_ns_per_packet: 600.0,
            controller_ns_per_packet: 300_000.0,
            line_rate_gbps: 10.0,
        }
    }
}

impl OvsExperiment {
    /// Maximum sustainable throughput in Gbps for a given packet size when
    /// `controller_fraction` (0.0–1.0) of packets must go to the controller.
    pub fn max_throughput_gbps(&self, packet_size_bytes: usize, controller_fraction: f64) -> f64 {
        let fraction = controller_fraction.clamp(0.0, 1.0);
        // Packets per second each component can sustain.
        let switch_pps = 1e9 / self.switch_ns_per_packet;
        let controller_pps_total = if fraction > 0.0 {
            (1e9 / self.controller_ns_per_packet) / fraction
        } else {
            f64::INFINITY
        };
        let pps = switch_pps.min(controller_pps_total);
        let gbps = pps * (packet_size_bytes as f64) * 8.0 / 1e9;
        gbps.min(self.line_rate_gbps)
    }

    /// Runs the Figure 1 sweep: controller fraction 0–25 % for each packet
    /// size, returning one curve per size.
    pub fn run(&self, packet_sizes: &[usize], fractions_percent: &[f64]) -> Vec<TimeSeries> {
        packet_sizes
            .iter()
            .map(|size| {
                let mut series = TimeSeries::new(format!("{size}B packets"));
                for pct in fractions_percent {
                    series.push(*pct, self.max_throughput_gbps(*size, pct / 100.0));
                }
                series
            })
            .collect()
    }
}

/// The sweep the paper plots: 0–25 % in 1 % steps for 256 B and 1000 B
/// packets.
pub fn figure1() -> Vec<TimeSeries> {
    let fractions: Vec<f64> = (0..=25).map(|p| p as f64).collect();
    OvsExperiment::default().run(&[1000, 256], &fractions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_controller_traffic_hits_line_rate_for_large_packets() {
        let model = OvsExperiment::default();
        let t = model.max_throughput_gbps(1000, 0.0);
        assert!((t - 10.0).abs() < 1e-9, "expected line rate, got {t}");
        // Small packets are limited by the switch's per-packet cost instead.
        let t64 = model.max_throughput_gbps(64, 0.0);
        assert!(t64 < 10.0);
        assert!(t64 > 0.1);
    }

    #[test]
    fn throughput_collapses_as_controller_fraction_grows() {
        let model = OvsExperiment::default();
        let t1 = model.max_throughput_gbps(1000, 0.01);
        let t5 = model.max_throughput_gbps(1000, 0.05);
        let t25 = model.max_throughput_gbps(1000, 0.25);
        assert!(t1 > t5 && t5 > t25, "{t1} > {t5} > {t25} expected");
        // By 25 % the controller dominates and throughput is far below line
        // rate — the qualitative collapse of Figure 1.
        assert!(t25 < 1.0);
    }

    #[test]
    fn larger_packets_always_sustain_more_gbps() {
        let model = OvsExperiment::default();
        for pct in [1.0, 5.0, 10.0, 25.0] {
            let small = model.max_throughput_gbps(256, pct / 100.0);
            let large = model.max_throughput_gbps(1000, pct / 100.0);
            assert!(large >= small);
        }
    }

    #[test]
    fn figure1_produces_two_monotone_curves() {
        let curves = figure1();
        assert_eq!(curves.len(), 2);
        for curve in &curves {
            assert_eq!(curve.len(), 26);
            // Monotonically non-increasing in the controller fraction.
            for pair in curve.points.windows(2) {
                assert!(pair[1].1 <= pair[0].1 + 1e-9);
            }
        }
    }

    #[test]
    fn fraction_is_clamped() {
        let model = OvsExperiment::default();
        assert_eq!(
            model.max_throughput_gbps(1000, -1.0),
            model.max_throughput_gbps(1000, 0.0)
        );
        assert_eq!(
            model.max_throughput_gbps(1000, 2.0),
            model.max_throughput_gbps(1000, 1.0)
        );
    }
}
