//! Small helpers for the time series and sweep curves the scenarios emit.

use serde::{Deserialize, Serialize};

/// A named series of `(x, y)` points — a curve in one of the paper's
/// figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TimeSeries {
    /// Curve label (e.g. `"Incoming"`, `"SDNFV"`).
    pub label: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        TimeSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y value at the point closest to `x`, if any points exist.
    pub fn value_near(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.0 - x)
                    .abs()
                    .partial_cmp(&(b.0 - x).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(_, y)| *y)
    }

    /// Mean of the y values between `x_from` (inclusive) and `x_to`
    /// (exclusive); `None` if no points fall in the window.
    pub fn mean_between(&self, x_from: f64, x_to: f64) -> Option<f64> {
        let values: Vec<f64> = self
            .points
            .iter()
            .filter(|(x, _)| *x >= x_from && *x < x_to)
            .map(|(_, y)| *y)
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Largest y value.
    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|(_, y)| *y).fold(None, |acc, y| {
            Some(match acc {
                None => y,
                Some(a) => a.max(y),
            })
        })
    }

    /// Renders the series as simple tab-separated text (used by the figure
    /// harness).
    pub fn to_tsv(&self) -> String {
        let mut out = format!("# {}\n", self.label);
        for (x, y) in &self.points {
            out.push_str(&format!("{x:.4}\t{y:.4}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let mut s = TimeSeries::new("test");
        assert!(s.is_empty());
        assert_eq!(s.value_near(1.0), None);
        assert_eq!(s.mean_between(0.0, 10.0), None);
        assert_eq!(s.max_y(), None);
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        s.push(2.0, 5.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.value_near(1.2), Some(3.0));
        assert_eq!(s.mean_between(0.5, 2.5), Some(4.0));
        assert_eq!(s.max_y(), Some(5.0));
        let tsv = s.to_tsv();
        assert!(tsv.starts_with("# test"));
        assert!(tsv.contains("1.0000\t3.0000"));
    }

    // Gated: requires the real serde_json crate, unavailable offline (see
    // shims/README.md and ROADMAP.md "Open items").
    #[cfg(feature = "json-tests")]
    #[test]
    fn serde_roundtrip() {
        let mut s = TimeSeries::new("curve");
        s.push(1.0, 2.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
