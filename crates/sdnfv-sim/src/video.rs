//! Figure 11: reacting to a mid-stream policy change, SDNFV versus SDN.
//!
//! A population of video flows (mean lifetime 40 s) streams through the
//! host. From t = 60 s to t = 240 s the operator's policy requires all video
//! traffic to be transcoded down to half its rate.
//!
//! * In **SDNFV**, the Policy Engine NF sits on the data path: when the
//!   policy flips it issues `RequestMe` to pull the already-established
//!   flows back through itself and then redirects each to the transcoder, so
//!   the output rate drops to the target almost immediately (and recovers
//!   immediately when the window ends).
//! * In the **SDN** baseline the policy logic lives in the controller, which
//!   only sees the first packets of *new* flows; existing flows keep their
//!   old rules until they terminate, so the output rate only converges to
//!   the target as flows naturally churn (≈40 s time constant).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdnfv_dataplane::{NfManager, PacketOutcome};
use sdnfv_flowtable::{Action, FlowMatch, FlowRule, RulePort, ServiceId};
use sdnfv_nf::nfs::{PolicyEngineNf, PolicyHandle, TranscoderNf, VideoDetectorNf};
use sdnfv_nf::Verdict;
use sdnfv_proto::http::response_with_content_type;
use sdnfv_proto::packet::{Packet, PacketBuilder};

use crate::series::TimeSeries;

/// Configuration of the Figure 11 scenario.
#[derive(Debug, Clone)]
pub struct VideoExperiment {
    /// Total duration in seconds (350 s in the paper's plot).
    pub duration_secs: f64,
    /// Simulation step in seconds.
    pub step_secs: f64,
    /// Start of the throttling window (60 s).
    pub throttle_start_secs: f64,
    /// End of the throttling window (240 s).
    pub throttle_end_secs: f64,
    /// Number of concurrent video flows (400 in the paper; scaled down here
    /// with `packets_per_flow_per_sec` adjusted so the totals match).
    pub concurrent_flows: usize,
    /// Mean flow lifetime in seconds (40 s in the paper).
    pub mean_lifetime_secs: f64,
    /// Packets per second each flow contributes to the simulation.
    pub packets_per_flow_per_sec: f64,
    /// Random seed for flow lifetimes.
    pub seed: u64,
}

impl Default for VideoExperiment {
    fn default() -> Self {
        VideoExperiment {
            duration_secs: 350.0,
            step_secs: 1.0,
            throttle_start_secs: 60.0,
            throttle_end_secs: 240.0,
            concurrent_flows: 60,
            mean_lifetime_secs: 40.0,
            packets_per_flow_per_sec: 3.0,
            seed: 11,
        }
    }
}

/// Output of the Figure 11 scenario.
#[derive(Debug, Clone)]
pub struct VideoResult {
    /// Output packet rate of the SDNFV deployment over time.
    pub sdnfv: TimeSeries,
    /// Output packet rate of the SDN baseline over time.
    pub sdn: TimeSeries,
    /// Offered packet rate over time (the no-throttling reference).
    pub offered: TimeSeries,
}

struct SimFlow {
    src_port: u16,
    expires_at: f64,
    sent_header: bool,
    /// SDN baseline: the rule decided when the flow was created.
    sdn_transcoded: bool,
}

const VD: ServiceId = ServiceId::new(1);
const PE: ServiceId = ServiceId::new(2);
const TC: ServiceId = ServiceId::new(3);
const EGRESS: u16 = 1;

impl VideoExperiment {
    fn build_manager(&self, policy: &PolicyHandle) -> NfManager {
        let mut manager = NfManager::default();
        manager.install_rule(FlowRule::new(
            FlowMatch::at_step(RulePort::Nic(0)),
            vec![Action::ToService(VD)],
        ));
        manager.install_rule(FlowRule::new(
            FlowMatch::at_step(VD),
            vec![Action::ToService(PE), Action::ToPort(EGRESS)],
        ));
        manager.install_rule(FlowRule::new(
            FlowMatch::at_step(PE),
            vec![Action::ToPort(EGRESS), Action::ToService(TC)],
        ));
        manager.install_rule(FlowRule::new(
            FlowMatch::at_step(TC),
            vec![Action::ToPort(EGRESS)],
        ));
        manager.add_nf(VD, Box::new(VideoDetectorNf::new(Verdict::ToPort(EGRESS))));
        manager.add_nf(
            PE,
            Box::new(PolicyEngineNf::new(
                PE,
                VD,
                TC,
                Action::ToPort(EGRESS),
                policy.clone(),
            )),
        );
        manager.add_nf(TC, Box::new(TranscoderNf::halving()));
        manager
    }

    fn header_packet(&self, src_port: u16) -> Packet {
        PacketBuilder::tcp()
            .src_ip([10, 7, 0, 1])
            .dst_ip([10, 7, 1, 1])
            .src_port(src_port)
            .dst_port(40000)
            .payload(&response_with_content_type(200, "video/mp4"))
            .ingress_port(0)
            .build()
    }

    fn data_packet(&self, src_port: u16) -> Packet {
        PacketBuilder::tcp()
            .src_ip([10, 7, 0, 1])
            .dst_ip([10, 7, 1, 1])
            .src_port(src_port)
            .dst_port(40000)
            .total_size(1000)
            .ingress_port(0)
            .build()
    }

    /// Runs the scenario.
    pub fn run(&self) -> VideoResult {
        let policy = PolicyHandle::new();
        let mut manager = self.build_manager(&policy);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut next_port: u16 = 10_000;
        let lifetime = |rng: &mut StdRng| -> f64 {
            // Exponential lifetimes with the configured mean.
            let u: f64 = rng.gen_range(0.0001..1.0);
            -self.mean_lifetime_secs * u.ln()
        };
        let mut flows: Vec<SimFlow> = (0..self.concurrent_flows)
            .map(|_| {
                let f = SimFlow {
                    src_port: next_port,
                    expires_at: lifetime(&mut rng),
                    sent_header: false,
                    sdn_transcoded: false,
                };
                next_port += 1;
                f
            })
            .collect();

        let mut sdnfv = TimeSeries::new("SDNFV");
        let mut sdn = TimeSeries::new("SDN");
        let mut offered = TimeSeries::new("Offered");

        let steps = (self.duration_secs / self.step_secs).round() as usize;
        for step in 0..steps {
            let t = step as f64 * self.step_secs;
            let now_ns = (t * 1e9) as u64;
            let throttling = t >= self.throttle_start_secs && t < self.throttle_end_secs;
            policy.set_throttle(throttling);

            // Replace expired flows with fresh ones; the SDN baseline decides
            // the new flow's treatment using the policy active right now.
            for flow in flows.iter_mut() {
                if t >= flow.expires_at {
                    flow.src_port = next_port;
                    next_port = next_port.wrapping_add(1).max(10_000);
                    flow.expires_at = t + lifetime(&mut rng);
                    flow.sent_header = false;
                    flow.sdn_transcoded = throttling;
                }
            }

            let packets_per_flow =
                (self.packets_per_flow_per_sec * self.step_secs).round() as usize;
            let mut out_sdnfv = 0usize;
            let mut out_sdn = 0.0f64;
            let mut offered_packets = 0usize;
            for flow in flows.iter_mut() {
                for i in 0..packets_per_flow {
                    offered_packets += 1;
                    let pkt = if !flow.sent_header && i == 0 {
                        flow.sent_header = true;
                        self.header_packet(flow.src_port)
                    } else {
                        self.data_packet(flow.src_port)
                    };
                    if let PacketOutcome::Transmitted { .. } =
                        manager.process_packet(pkt, now_ns + i as u64)
                    {
                        out_sdnfv += 1;
                    }
                }
                // SDN baseline: transcoded flows emit half their packets.
                let factor = if flow.sdn_transcoded { 0.5 } else { 1.0 };
                out_sdn += packets_per_flow as f64 * factor;
            }

            sdnfv.push(t, out_sdnfv as f64 / self.step_secs);
            sdn.push(t, out_sdn / self.step_secs);
            offered.push(t, offered_packets as f64 / self.step_secs);
        }

        VideoResult {
            sdnfv,
            sdn,
            offered,
        }
    }
}

/// Runs the paper's Figure 11 configuration.
pub fn figure11() -> VideoResult {
    VideoExperiment::default().run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdnfv_tracks_the_policy_window_immediately() {
        let result = figure11();
        let before = result.sdnfv.mean_between(30.0, 58.0).unwrap();
        let shortly_after = result.sdnfv.mean_between(62.0, 80.0).unwrap();
        let deep_in_window = result.sdnfv.mean_between(150.0, 230.0).unwrap();
        let after_window = result.sdnfv.mean_between(260.0, 340.0).unwrap();
        // Output halves promptly once throttling starts…
        assert!(
            shortly_after < before * 0.7,
            "SDNFV should throttle quickly: {shortly_after:.0} vs {before:.0}"
        );
        assert!(deep_in_window < before * 0.65);
        // …and recovers after the window ends.
        assert!(after_window > before * 0.85);
    }

    #[test]
    fn sdn_lags_behind_the_policy_change() {
        let result = figure11();
        let before = result.sdn.mean_between(30.0, 58.0).unwrap();
        let sdn_shortly_after = result.sdn.mean_between(62.0, 80.0).unwrap();
        let sdnfv_shortly_after = result.sdnfv.mean_between(62.0, 80.0).unwrap();
        let sdn_late_in_window = result.sdn.mean_between(180.0, 235.0).unwrap();
        // Just after the change the SDN baseline still emits close to the
        // unthrottled rate (only new flows are affected) …
        assert!(
            sdn_shortly_after > sdnfv_shortly_after * 1.15,
            "SDN ({sdn_shortly_after:.0}) should lag behind SDNFV ({sdnfv_shortly_after:.0})"
        );
        // … but eventually converges toward the throttled level.
        assert!(sdn_late_in_window < before * 0.75);
    }

    #[test]
    fn offered_rate_is_stable() {
        let result = figure11();
        let early = result.offered.mean_between(10.0, 50.0).unwrap();
        let late = result.offered.mean_between(250.0, 340.0).unwrap();
        assert!((early - late).abs() / early < 0.05);
    }
}
