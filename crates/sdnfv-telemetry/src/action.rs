//! The typed decisions an elastic controller hands back to the data plane.

use sdnfv_flowtable::ServiceId;

/// A resource decision derived from merged telemetry (paper §3.5): the
/// local NF Manager's fast control loop emits these and the runtime applies
/// them through per-shard control rings — no stop-the-world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlAction {
    /// Launch one more replica of `service` on `shard` (via the NFV
    /// orchestrator, which models the VM boot delay).
    ScaleUp {
        /// Target shard.
        shard: usize,
        /// Service whose replica count grows.
        service: ServiceId,
    },
    /// Retire one replica of `service` on `shard`. The runtime drains the
    /// replica's queue before the NF thread exits, so no packet is lost.
    ScaleDown {
        /// Target shard.
        shard: usize,
        /// Service whose replica count shrinks.
        service: ServiceId,
    },
    /// Resize `shard`'s ingress credit budget to `credits` (clamped by the
    /// runtime to its internal ring capacities).
    ResizeCredits {
        /// Target shard.
        shard: usize,
        /// The new credit budget.
        credits: usize,
    },
    /// Rebalance flow steering: shard `s` receives a share of *new* hash
    /// buckets proportional to `weights[s]`. Flows whose bucket moves are
    /// re-homed; flows in unmoved buckets keep their shard.
    SetSteeringWeights {
        /// One weight per shard (zero removes a shard from new-bucket
        /// assignment; all-zero is rejected by the runtime).
        weights: Vec<u32>,
    },
    /// Spawn one more pipeline shard (worker thread, NF replica set, rings,
    /// credit gate and flow-table partition), then re-home a fair share of
    /// steering buckets onto it through the state-safe drain handshake.
    SpawnShard,
    /// Retire pipeline shard `shard` (always the highest index): re-home
    /// every bucket it owns onto the remaining shards — carrying shard-local
    /// exact-flow rules along — then tear its pipeline down.
    RetireShard {
        /// The shard to drain away.
        shard: usize,
    },
    /// Set the host-wide flow-trace sampling rate: one of every `every`
    /// flows (by stable flow hash) emits per-stage trace spans; 0 turns
    /// hash sampling off (flows pinned by a `Trace` rule action are always
    /// traced regardless).
    SetTraceSampling {
        /// Sample one of every `every` flows (0 = off).
        every: u64,
    },
}

impl ControlAction {
    /// The shard the action targets, or `None` for host-wide actions.
    pub fn shard(&self) -> Option<usize> {
        match self {
            ControlAction::ScaleUp { shard, .. }
            | ControlAction::ScaleDown { shard, .. }
            | ControlAction::ResizeCredits { shard, .. }
            | ControlAction::RetireShard { shard } => Some(*shard),
            ControlAction::SetSteeringWeights { .. }
            | ControlAction::SpawnShard
            | ControlAction::SetTraceSampling { .. } => None,
        }
    }
}

impl std::fmt::Display for ControlAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlAction::ScaleUp { shard, service } => {
                write!(f, "scale-up {service} on shard {shard}")
            }
            ControlAction::ScaleDown { shard, service } => {
                write!(f, "scale-down {service} on shard {shard}")
            }
            ControlAction::ResizeCredits { shard, credits } => {
                write!(f, "resize credits on shard {shard} to {credits}")
            }
            ControlAction::SetSteeringWeights { weights } => {
                write!(f, "set steering weights {weights:?}")
            }
            ControlAction::SpawnShard => write!(f, "spawn a new shard"),
            ControlAction::RetireShard { shard } => write!(f, "retire shard {shard}"),
            ControlAction::SetTraceSampling { every } => {
                write!(f, "set trace sampling to 1/{every}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_targeting() {
        let svc = ServiceId::new(4);
        assert_eq!(
            ControlAction::ScaleUp {
                shard: 2,
                service: svc
            }
            .shard(),
            Some(2)
        );
        assert_eq!(
            ControlAction::ScaleDown {
                shard: 0,
                service: svc
            }
            .shard(),
            Some(0)
        );
        assert_eq!(
            ControlAction::ResizeCredits {
                shard: 1,
                credits: 64
            }
            .shard(),
            Some(1)
        );
        assert_eq!(
            ControlAction::SetSteeringWeights {
                weights: vec![1, 2]
            }
            .shard(),
            None
        );
    }

    #[test]
    fn display_is_readable() {
        let text = format!(
            "{}",
            ControlAction::ScaleUp {
                shard: 1,
                service: ServiceId::new(7)
            }
        );
        assert!(text.contains("scale-up"));
        assert!(text.contains("svc-7"));
        assert!(text.contains("shard 1"));
    }
}
