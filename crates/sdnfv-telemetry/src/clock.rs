//! The host clock: real wall time or a simulation-driven virtual time.
//!
//! Every timestamp the data plane and control loop consume — telemetry
//! `at_ns`, shard-lifecycle events, slot-compaction grace periods, elastic
//! cooldowns — is a nanosecond offset from the host's epoch. In the
//! threaded runtime that offset comes from a monotonic [`Instant`]; under
//! the deterministic-simulation harness (`sdnfv-dst`) it comes from a
//! shared virtual counter the scheduler advances explicitly, so a seeded
//! schedule replays with byte-identical timestamps. [`HostClock`] is the
//! one switch between the two: the shipping code reads time only through
//! it and never calls `Instant::now()` on a decision path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock: either anchored to real time at an epoch,
/// or a shared virtual counter advanced by a simulation scheduler.
///
/// Clones of a virtual clock share the same counter, so every actor in a
/// simulation observes the same instant; clones of a real clock share the
/// same epoch.
#[derive(Debug, Clone)]
pub enum HostClock {
    /// Wall-clock time, measured as nanoseconds elapsed since the epoch
    /// captured at construction.
    Real(Instant),
    /// Virtual time: the current nanosecond offset, advanced only by
    /// [`HostClock::advance_ns`] / [`HostClock::set_ns`]. Shared across
    /// clones.
    Virtual(Arc<AtomicU64>),
}

impl HostClock {
    /// A real clock whose epoch is "now".
    pub fn real() -> Self {
        HostClock::Real(Instant::now())
    }

    /// A virtual clock starting at `start_ns`. Clones share the counter.
    pub fn simulated(start_ns: u64) -> Self {
        HostClock::Virtual(Arc::new(AtomicU64::new(start_ns)))
    }

    /// Nanoseconds since the epoch (real) or the current virtual instant.
    pub fn now_ns(&self) -> u64 {
        match self {
            HostClock::Real(epoch) => epoch.elapsed().as_nanos() as u64,
            HostClock::Virtual(ns) => ns.load(Ordering::Acquire),
        }
    }

    /// Advance a virtual clock by `delta_ns` and return the new instant.
    /// On a real clock this is a no-op (time advances on its own) and the
    /// current time is returned.
    pub fn advance_ns(&self, delta_ns: u64) -> u64 {
        match self {
            HostClock::Real(_) => self.now_ns(),
            HostClock::Virtual(ns) => ns.fetch_add(delta_ns, Ordering::AcqRel) + delta_ns,
        }
    }

    /// Jump a virtual clock to `at_ns` (must not move time backwards; the
    /// clock saturates at its current value). No-op on a real clock.
    pub fn set_ns(&self, at_ns: u64) {
        if let HostClock::Virtual(ns) = self {
            ns.fetch_max(at_ns, Ordering::AcqRel);
        }
    }

    /// `true` when this is a virtual (simulation-driven) clock.
    pub fn is_virtual(&self) -> bool {
        matches!(self, HostClock::Virtual(_))
    }
}

impl Default for HostClock {
    fn default() -> Self {
        HostClock::real()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_advances_on_its_own() {
        let clock = HostClock::real();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        assert!(!clock.is_virtual());
        // advance/set are no-ops on real clocks
        clock.set_ns(u64::MAX);
        assert!(clock.now_ns() < u64::MAX / 2);
    }

    #[test]
    fn virtual_clock_moves_only_when_told() {
        let clock = HostClock::simulated(100);
        assert!(clock.is_virtual());
        assert_eq!(clock.now_ns(), 100);
        assert_eq!(clock.now_ns(), 100, "virtual time is frozen");
        assert_eq!(clock.advance_ns(50), 150);
        assert_eq!(clock.now_ns(), 150);
        clock.set_ns(1_000);
        assert_eq!(clock.now_ns(), 1_000);
        clock.set_ns(10); // backwards jump saturates
        assert_eq!(clock.now_ns(), 1_000);
    }

    #[test]
    fn clones_share_virtual_time() {
        let clock = HostClock::simulated(0);
        let observer = clock.clone();
        clock.advance_ns(42);
        assert_eq!(observer.now_ns(), 42);
    }
}
