//! Exponentially weighted moving averages for service-time telemetry.

/// An exponentially weighted moving average.
///
/// The first sample seeds the average directly; every later sample moves it
/// by `alpha` toward the sample. NF threads keep one per instance to track
/// per-packet service time without storing a history.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` (clamped to `(0, 1]`).
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            value: None,
        }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Folds one sample into the average and returns the updated value.
    pub fn update(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            None => sample,
            Some(current) => current + self.alpha * (sample - current),
        };
        self.value = Some(next);
        next
    }

    /// The current average, or `None` before the first sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The current average, or `0.0` before the first sample.
    pub fn value_or_zero(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

impl Default for Ewma {
    /// The smoothing the data plane uses for service times: `alpha = 0.2`.
    fn default() -> Self {
        Ewma::new(0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_the_average() {
        let mut ewma = Ewma::new(0.5);
        assert_eq!(ewma.value(), None);
        assert_eq!(ewma.value_or_zero(), 0.0);
        assert_eq!(ewma.update(10.0), 10.0);
        assert_eq!(ewma.value(), Some(10.0));
    }

    #[test]
    fn later_samples_move_by_alpha() {
        let mut ewma = Ewma::new(0.5);
        ewma.update(10.0);
        assert_eq!(ewma.update(20.0), 15.0);
        assert_eq!(ewma.update(15.0), 15.0);
    }

    #[test]
    fn alpha_is_clamped() {
        assert_eq!(Ewma::new(7.0).alpha(), 1.0);
        assert!(Ewma::new(-1.0).alpha() > 0.0);
        let mut pass_through = Ewma::new(1.0);
        pass_through.update(3.0);
        assert_eq!(pass_through.update(9.0), 9.0);
    }

    #[test]
    fn default_alpha_smooths() {
        let mut ewma = Ewma::default();
        ewma.update(100.0);
        let next = ewma.update(0.0);
        assert!(next > 0.0 && next < 100.0);
    }
}
