//! Lock-free, mergeable log-linear latency histograms (HDR-style).
//!
//! The data plane records nanosecond latencies on its hot paths, so the
//! recorder must be cheap and wait-free: [`LatencyHistogram`] is a flat
//! array of relaxed atomic counters indexed by a log-linear bucketing of
//! the value — a handful of integer ops and one `fetch_add` per record,
//! no locks, safe for any number of concurrent recorders (the shard
//! worker and its NF replica threads share one histogram per stage).
//!
//! Buckets are exact below [`SUB_COUNT`] and sub-divide every power of
//! two into [`SUB_COUNT`] linear sub-buckets above it, bounding the
//! relative quantization error at `1/SUB_COUNT` (6.25%) across the full
//! `u64` range. [`HistogramSnapshot`] is the frozen, mergeable view:
//! merging per-shard snapshots is an element-wise add, so the merge of
//! the shards equals the histogram of the union of their samples —
//! exactly, not approximately (the property the hub's percentile
//! aggregation and the test suite rely on).

// Atomics come via the sdnfv-ring `sync` facade so the `sdnfv-check`
// interleaving checker can drive this histogram with its recording
// atomics (cargo feature unification turns the facade on workspace-wide
// when any crate enables `sdnfv-ring/model`; outside a model execution
// the instrumented types pass straight through to std).
use sdnfv_ring::sync::{AtomicU64, Ordering};

/// Log₂ of the linear sub-buckets per power-of-two group.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two group (and the exact range floor).
pub const SUB_COUNT: usize = 1 << SUB_BITS;
/// Power-of-two groups above the exact range.
const GROUPS: usize = 64 - SUB_BITS as usize;
/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = (GROUPS + 1) * SUB_COUNT;

/// Bucket index for a value: identity below [`SUB_COUNT`], then the
/// `SUB_BITS` bits after the most significant bit select the sub-bucket
/// within the value's power-of-two group.
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((value >> (msb - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
    group * SUB_COUNT + sub
}

/// Inclusive lower bound of a bucket (the smallest value that maps to it).
fn bucket_floor(index: usize) -> u64 {
    let group = index / SUB_COUNT;
    let sub = (index % SUB_COUNT) as u64;
    if group == 0 {
        sub
    } else {
        (SUB_COUNT as u64 + sub) << (group - 1)
    }
}

/// Inclusive upper bound of a bucket (the largest value that maps to it).
fn bucket_ceil(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_floor(index + 1) - 1
    }
}

/// A wait-free log-linear histogram of `u64` values (nanoseconds, by
/// convention). Recording is a relaxed `fetch_add` on one bucket plus a
/// `fetch_max` on the running maximum; any number of threads may record
/// concurrently.
pub struct LatencyHistogram {
    counts: Box<[AtomicU64]>,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        LatencyHistogram {
            counts: counts.into_boxed_slice(),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value (one bucket update).
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        // ORDER: Relaxed — each bucket is an independent monotonic counter;
        // RMW atomicity alone guarantees no lost increments, and nothing is
        // published through a bucket. Cross-bucket consistency is explicitly
        // not promised (see `snapshot`). Model-checked: concurrent
        // record/record + record/snapshot interleavings lose no counts.
        self.counts[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        // ORDER: Relaxed — fetch_max races only with other maxima; the final
        // value is the true max of all recorded values regardless of order.
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Freezes the current contents into a mergeable snapshot. Counts are
    /// read relaxed: concurrent recorders may land an observation just
    /// before or after the freeze, never corrupt it.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ORDER: Relaxed throughout — the snapshot is deliberately not a
        // consistent cut: a concurrent recorder's observation lands wholly
        // before or wholly after the freeze per bucket. Callers that need
        // an exact total (the DST oracle, the hub's end-of-window flush)
        // snapshot only after quiescing recorders, which supplies the
        // happens-before externally.
        let mut last = 0usize;
        for (index, bucket) in self.counts.iter().enumerate() {
            // ORDER: Relaxed — see the snapshot-wide argument above.
            if bucket.load(Ordering::Relaxed) != 0 {
                last = index + 1;
            }
        }
        HistogramSnapshot {
            // ORDER: Relaxed — see the snapshot-wide argument above.
            counts: self.counts[..last]
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            // ORDER: Relaxed — see the snapshot-wide argument above.
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count())
            .field("max", &snap.max)
            .finish()
    }
}

/// A frozen histogram: trimmed bucket counts plus the exact maximum.
/// Merging is element-wise addition, so `merge(a, b)` is bucket-identical
/// to a histogram that observed both sample sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, trimmed after the last non-zero bucket.
    pub counts: Vec<u64>,
    /// The largest recorded value (exact, not quantized).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Folds another snapshot into this one (element-wise add; the max is
    /// the max of the two).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.max = self.max.max(other.max);
    }

    /// An upper bound on the value at quantile `q` in `[0, 1]`: the ceiling
    /// of the bucket holding the q-th observation, clamped to the exact
    /// recorded maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_ceil(index).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th-percentile upper bound.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// An order-sensitive FNV-1a digest of the bucket counts and max —
    /// the deterministic-simulation harness folds it into the replay
    /// trace so same-seed runs must produce bucket-identical histograms.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.counts.len() as u64);
        for &count in &self.counts {
            eat(count);
        }
        eat(self.max);
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_below_sub_count() {
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every probed value maps to a bucket whose [floor, ceil] range
        // contains it, and floors are strictly increasing.
        let probes: Vec<u64> = (0..200)
            .map(|i| (i * i * 37 + i) as u64)
            .chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345])
            .collect();
        for &v in &probes {
            let index = bucket_index(v);
            assert!(index < BUCKETS, "index {index} for {v}");
            assert!(bucket_floor(index) <= v, "floor of {v}");
            assert!(v <= bucket_ceil(index), "ceil of {v}");
        }
        for index in 1..BUCKETS {
            assert!(bucket_floor(index) > bucket_floor(index - 1));
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // The bucket ceiling over-reports by at most 1/SUB_COUNT.
        for &v in &[100u64, 1_000, 10_000, 1_000_000, 123_456_789] {
            let ceil = bucket_ceil(bucket_index(v));
            assert!(ceil as f64 <= v as f64 * (1.0 + 1.0 / SUB_COUNT as f64) + 1.0);
        }
    }

    #[test]
    fn percentiles_bound_the_true_quantile() {
        let hist = LatencyHistogram::new();
        let values: Vec<u64> = (1..=1000u64).map(|i| i * 100).collect();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.max, 100_000);
        // True p50 is 50_000; the reported bound must cover it without
        // exceeding the quantization error.
        let p50 = snap.p50();
        assert!(p50 >= 50_000, "p50 {p50}");
        assert!(p50 as f64 <= 50_000.0 * 1.07, "p50 {p50}");
        let p99 = snap.p99();
        assert!(p99 >= 99_000, "p99 {p99}");
        assert!(p99 as f64 <= 99_000.0 * 1.07, "p99 {p99}");
        // p100 is clamped to the exact max.
        assert_eq!(snap.percentile(1.0), 100_000);
        assert_eq!(snap.p999().min(snap.max), snap.p999());
    }

    #[test]
    fn merge_of_shards_equals_histogram_of_union() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let union = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * i % 77_777;
            a.record(v);
            union.record(v);
        }
        for i in 0..300u64 {
            let v = i * 13 + 1_000_000;
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
        assert_eq!(merged.digest(), union.snapshot().digest());
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let snap = LatencyHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.percentile(1.0), 0);
        let mut merged = HistogramSnapshot::default();
        merged.merge(&snap);
        assert!(merged.is_empty());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_n(4242, 7);
        for _ in 0..7 {
            b.record(4242);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn concurrent_recorders_lose_nothing() {
        use std::sync::Arc;
        let hist = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        hist.record(t * 1_000 + i % 97);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hist.snapshot().count(), 40_000);
    }
}
