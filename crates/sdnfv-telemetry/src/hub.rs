//! The consumer side of the telemetry bus: merging per-shard snapshot
//! streams into one current view.

use crate::snapshot::{LatencyReport, ShardLifecycleEvent, TelemetrySnapshot};

/// Inter-snapshot rates for one shard, reconstructed from the cumulative
/// counters of two consecutive snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardRates {
    /// Wall-clock span the rates cover, in nanoseconds.
    pub interval_ns: u64,
    /// Packets received per second.
    pub received_per_sec: f64,
    /// Packets transmitted per second.
    pub transmitted_per_sec: f64,
    /// Controller punts per second.
    pub punts_per_sec: f64,
    /// Throttled injections per second.
    pub throttled_per_sec: f64,
}

/// Merges the per-shard telemetry streams a
/// [`ThreadedHost`](../../sdnfv_dataplane/runtime/struct.ThreadedHost.html)
/// exports: keeps the most recent [`TelemetrySnapshot`] per shard and the
/// one before it, so callers can read both gauges (queue depths, credit
/// occupancy) and rates (punts/sec, throttles/sec).
#[derive(Debug, Default)]
pub struct TelemetryHub {
    latest: Vec<Option<TelemetrySnapshot>>,
    previous: Vec<Option<TelemetrySnapshot>>,
    /// Shards `observe_lifecycle` saw retire and not respawn since. A
    /// retired shard's snapshots may still be in flight (polled into a
    /// batch before the lifecycle event was observed); absorbing one
    /// would resurrect the dead pipeline's gauges permanently, so they
    /// are rejected here. Never truncated: the flag must outlive the
    /// trailing-slot truncation below.
    retired: Vec<bool>,
    absorbed: u64,
    rejected_retired: u64,
}

impl TelemetryHub {
    /// Creates an empty hub (shard slots grow on demand).
    pub fn new() -> Self {
        TelemetryHub::default()
    }

    /// Folds a batch of snapshots (as returned by
    /// `ThreadedHost::poll_telemetry`) into the per-shard view. Snapshots
    /// may arrive in any shard order; within a shard, stale sequence
    /// numbers are ignored.
    pub fn absorb(&mut self, snapshots: Vec<TelemetrySnapshot>) {
        for snapshot in snapshots {
            let shard = snapshot.shard;
            if self.retired.get(shard).copied().unwrap_or(false) {
                // A straggler from a shard that already retired: folding
                // it in would re-open the slot and let a dead pipeline's
                // gauges contribute to merged rates forever.
                self.rejected_retired += 1;
                continue;
            }
            if shard >= self.latest.len() {
                self.latest.resize(shard + 1, None);
                self.previous.resize(shard + 1, None);
            }
            match &self.latest[shard] {
                Some(current) if current.seq >= snapshot.seq => continue,
                _ => {}
            }
            self.previous[shard] = self.latest[shard].take();
            self.latest[shard] = Some(snapshot);
            self.absorbed += 1;
        }
    }

    /// Folds a batch of snapshots in after shifting every shard index by
    /// `shard_offset` — the federation fold: host 0's shards land at
    /// `0..n0`, host 1's at `n0..n0+n1`, and so on, giving one global
    /// per-shard view over many hosts without the per-host streams
    /// colliding on shard numbers.
    pub fn absorb_offset(&mut self, snapshots: Vec<TelemetrySnapshot>, shard_offset: usize) {
        self.absorb(
            snapshots
                .into_iter()
                .map(|mut snapshot| {
                    snapshot.shard += shard_offset;
                    snapshot
                })
                .collect(),
        );
    }

    /// Number of shard slots the hub has seen snapshots for.
    pub fn num_shards(&self) -> usize {
        self.latest.len()
    }

    /// Total snapshots absorbed (stale ones excluded).
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// The most recent snapshot for `shard`, if any.
    pub fn latest(&self, shard: usize) -> Option<&TelemetrySnapshot> {
        self.latest.get(shard).and_then(Option::as_ref)
    }

    /// The most recent snapshot of every shard that has reported.
    pub fn latest_all(&self) -> Vec<&TelemetrySnapshot> {
        self.latest.iter().filter_map(Option::as_ref).collect()
    }

    /// Rates over the last two snapshots of `shard`, or `None` until two
    /// have been absorbed (or if their clocks are not monotonic).
    pub fn rates(&self, shard: usize) -> Option<ShardRates> {
        let current = self.latest(shard)?;
        let previous = self.previous.get(shard)?.as_ref()?;
        let interval_ns = current.at_ns.checked_sub(previous.at_ns)?;
        if interval_ns == 0 {
            return None;
        }
        let per_sec =
            |now: u64, then: u64| now.saturating_sub(then) as f64 * 1e9 / interval_ns as f64;
        Some(ShardRates {
            interval_ns,
            received_per_sec: per_sec(current.received, previous.received),
            transmitted_per_sec: per_sec(current.transmitted, previous.transmitted),
            punts_per_sec: per_sec(current.controller_punts, previous.controller_punts),
            throttled_per_sec: per_sec(current.throttled, previous.throttled),
        })
    }

    /// Total pipeline backlog over every reporting shard.
    pub fn total_backlog(&self) -> usize {
        self.latest_all().iter().map(|s| s.backlog()).sum()
    }

    /// Total packets parked in re-home pens across every reporting shard.
    pub fn total_rehome_pen_depth(&self) -> usize {
        self.latest_all().iter().map(|s| s.rehome_pen_depth).sum()
    }

    /// The worst (oldest) pen age across every reporting shard, in
    /// nanoseconds — the flood-onto-a-mid-move-bucket alarm gauge.
    pub fn worst_rehome_pen_age_ns(&self) -> u64 {
        self.latest_all()
            .iter()
            .map(|s| s.rehome_pen_max_age_ns)
            .max()
            .unwrap_or(0)
    }

    /// Total flow rules evicted by the timeout lifecycle (idle + hard)
    /// across every currently reporting shard. Counters are cumulative per
    /// shard; a retired shard's contribution is forgotten with its
    /// snapshots, so treat this as "evictions on the live data plane".
    pub fn total_rules_evicted(&self) -> u64 {
        self.latest_all()
            .iter()
            .map(|s| s.rules_evicted_idle + s.rules_evicted_hard)
            .sum()
    }

    /// Total per-flow NF state entries scrubbed after rule eviction across
    /// every currently reporting shard (same caveat as
    /// [`TelemetryHub::total_rules_evicted`]).
    pub fn total_nf_state_scrubbed(&self) -> u64 {
        self.latest_all().iter().map(|s| s.nf_state_scrubbed).sum()
    }

    /// Total per-flow NF state entries handed off from retiring replicas
    /// to survivors across every currently reporting shard.
    pub fn total_nf_state_handoffs(&self) -> u64 {
        self.latest_all().iter().map(|s| s.nf_state_handoffs).sum()
    }

    /// Total migrated NF state payloads dropped at import across every
    /// currently reporting shard.
    pub fn total_nf_state_import_drops(&self) -> u64 {
        self.latest_all()
            .iter()
            .map(|s| s.nf_state_import_drops)
            .sum()
    }

    /// Total trace spans lost to full trace rings across every currently
    /// reporting shard.
    pub fn total_spans_dropped(&self) -> u64 {
        self.latest_all().iter().map(|s| s.spans_dropped).sum()
    }

    /// Snapshots rejected because their shard had already retired (the
    /// straggler count the retired-slot guard absorbed).
    pub fn rejected_retired(&self) -> u64 {
        self.rejected_retired
    }

    /// Whole-host latency distributions: the per-stage histograms of
    /// every currently reporting shard, merged. Because per-shard
    /// histograms are cumulative and merging is exact, the merged report's
    /// p50/p90/p99/p999 are the percentiles of the union of every live
    /// shard's samples.
    pub fn merged_latency(&self) -> LatencyReport {
        let mut merged = LatencyReport::default();
        for snapshot in self.latest_all() {
            merged.merge(&snapshot.latency);
        }
        merged
    }

    /// Applies shard lifecycle events: a retired shard's snapshots are
    /// forgotten (trailing slots are truncated away) so stale gauges of a
    /// dead pipeline cannot drive control decisions; a spawned shard's slot
    /// is (re-)opened and fills on its first snapshot.
    pub fn observe_lifecycle(&mut self, events: &[ShardLifecycleEvent]) {
        for event in events {
            match event {
                ShardLifecycleEvent::Spawned { shard, .. } => {
                    if *shard >= self.latest.len() {
                        self.latest.resize(shard + 1, None);
                        self.previous.resize(shard + 1, None);
                    } else {
                        // A reused slot must not inherit the previous
                        // incarnation's gauges.
                        self.latest[*shard] = None;
                        self.previous[*shard] = None;
                    }
                    if let Some(flag) = self.retired.get_mut(*shard) {
                        *flag = false;
                    }
                }
                ShardLifecycleEvent::Retired { shard, .. } => {
                    if *shard >= self.retired.len() {
                        self.retired.resize(shard + 1, false);
                    }
                    self.retired[*shard] = true;
                    if let Some(slot) = self.latest.get_mut(*shard) {
                        *slot = None;
                    }
                    if let Some(slot) = self.previous.get_mut(*shard) {
                        *slot = None;
                    }
                    while self.latest.last().is_some_and(|slot| slot.is_none()) {
                        self.latest.pop();
                        self.previous.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(shard: usize, seq: u64, at_ns: u64, punts: u64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            shard,
            seq,
            at_ns,
            ingress_depth: 0,
            ingress_capacity: 64,
            egress_depth: 0,
            egress_capacity: 64,
            credits_in_flight: 0,
            credit_capacity: 64,
            nfs: Vec::new(),
            nf_slots_allocated: 0,
            received: seq * 10,
            transmitted: seq * 9,
            dropped: 0,
            controller_punts: punts,
            throttled: 0,
            applied_commands: 0,
            rehome_pen_depth: 0,
            rehome_pen_max_age_ns: 0,
            rules_evicted_idle: 0,
            rules_evicted_hard: 0,
            nf_state_scrubbed: 0,
            nf_state_handoffs: 0,
            nf_state_import_drops: 0,
            spans_dropped: 0,
            latency: LatencyReport::default(),
        }
    }

    #[test]
    fn absorb_offset_relocates_shard_slots() {
        let mut global = TelemetryHub::new();
        // Host 0 has two shards, host 1 has one: its shard 0 must land at
        // global slot 2, not collide with host 0's shard 0.
        global.absorb(vec![snapshot(0, 1, 100, 3), snapshot(1, 1, 100, 0)]);
        global.absorb_offset(vec![snapshot(0, 1, 100, 5)], 2);
        assert_eq!(global.num_shards(), 3);
        assert_eq!(global.latest(0).unwrap().controller_punts, 3);
        assert_eq!(global.latest(2).unwrap().controller_punts, 5);
        assert_eq!(global.latest(2).unwrap().shard, 2, "index rewritten");
    }

    #[test]
    fn keeps_latest_per_shard() {
        let mut hub = TelemetryHub::new();
        assert_eq!(hub.num_shards(), 0);
        hub.absorb(vec![snapshot(0, 1, 100, 0), snapshot(2, 1, 100, 0)]);
        assert_eq!(hub.num_shards(), 3);
        assert_eq!(hub.latest(1), None);
        hub.absorb(vec![snapshot(0, 2, 200, 3)]);
        assert_eq!(hub.latest(0).unwrap().seq, 2);
        assert_eq!(hub.latest_all().len(), 2);
        assert_eq!(hub.absorbed(), 3);
    }

    #[test]
    fn stale_sequences_are_ignored() {
        let mut hub = TelemetryHub::new();
        hub.absorb(vec![snapshot(0, 5, 500, 0)]);
        hub.absorb(vec![snapshot(0, 4, 400, 0), snapshot(0, 5, 500, 0)]);
        assert_eq!(hub.latest(0).unwrap().seq, 5);
        assert_eq!(hub.absorbed(), 1);
    }

    #[test]
    fn rates_come_from_consecutive_snapshots() {
        let mut hub = TelemetryHub::new();
        assert_eq!(hub.rates(0), None);
        hub.absorb(vec![snapshot(0, 1, 1_000_000_000, 0)]);
        assert_eq!(hub.rates(0), None, "one snapshot has no rate");
        hub.absorb(vec![snapshot(0, 2, 2_000_000_000, 7)]);
        let rates = hub.rates(0).unwrap();
        assert_eq!(rates.interval_ns, 1_000_000_000);
        assert!((rates.punts_per_sec - 7.0).abs() < 1e-9);
        assert!((rates.received_per_sec - 10.0).abs() < 1e-9);
        assert!((rates.transmitted_per_sec - 9.0).abs() < 1e-9);
    }

    #[test]
    fn lifecycle_events_prune_and_reopen_shard_slots() {
        let mut hub = TelemetryHub::new();
        hub.absorb(vec![snapshot(0, 5, 100, 0), snapshot(1, 7, 100, 0)]);
        assert_eq!(hub.num_shards(), 2);
        // Retiring the last shard forgets its gauges and shrinks the view.
        hub.observe_lifecycle(&[ShardLifecycleEvent::Retired {
            shard: 1,
            at_ns: 200,
        }]);
        assert_eq!(hub.num_shards(), 1);
        assert_eq!(hub.latest(1), None);
        // A respawned shard starts from a clean slot: the dead
        // incarnation's sequence numbers no longer mask the new stream.
        hub.observe_lifecycle(&[ShardLifecycleEvent::Spawned {
            shard: 1,
            at_ns: 300,
        }]);
        assert_eq!(hub.num_shards(), 2);
        hub.absorb(vec![snapshot(1, 1, 400, 0)]);
        assert_eq!(hub.latest(1).unwrap().seq, 1, "fresh stream accepted");
        assert_eq!(
            ShardLifecycleEvent::Spawned { shard: 1, at_ns: 0 }.shard(),
            1
        );
    }

    #[test]
    fn pen_gauges_aggregate_across_shards() {
        let mut hub = TelemetryHub::new();
        assert_eq!(hub.total_rehome_pen_depth(), 0);
        assert_eq!(hub.worst_rehome_pen_age_ns(), 0);
        let mut a = snapshot(0, 1, 100, 0);
        a.rehome_pen_depth = 4;
        a.rehome_pen_max_age_ns = 1_000;
        let mut b = snapshot(1, 1, 100, 0);
        b.rehome_pen_depth = 2;
        b.rehome_pen_max_age_ns = 9_000;
        hub.absorb(vec![a, b]);
        assert_eq!(hub.total_rehome_pen_depth(), 6);
        assert_eq!(hub.worst_rehome_pen_age_ns(), 9_000);
    }

    #[test]
    fn eviction_totals_aggregate_across_shards() {
        let mut hub = TelemetryHub::new();
        assert_eq!(hub.total_rules_evicted(), 0);
        assert_eq!(hub.total_nf_state_scrubbed(), 0);
        let mut a = snapshot(0, 1, 100, 0);
        a.rules_evicted_idle = 3;
        a.rules_evicted_hard = 1;
        a.nf_state_scrubbed = 2;
        let mut b = snapshot(1, 1, 100, 0);
        b.rules_evicted_idle = 5;
        b.nf_state_scrubbed = 4;
        hub.absorb(vec![a, b]);
        assert_eq!(hub.total_rules_evicted(), 9);
        assert_eq!(hub.total_nf_state_scrubbed(), 6);
    }

    #[test]
    fn late_snapshot_from_retired_shard_is_rejected() {
        let mut hub = TelemetryHub::new();
        hub.absorb(vec![snapshot(0, 1, 100, 0), snapshot(1, 1, 100, 0)]);
        assert_eq!(hub.num_shards(), 2);
        // Shard 1 retires; its final snapshot was still in flight (polled
        // into a batch before the lifecycle event was observed).
        hub.observe_lifecycle(&[ShardLifecycleEvent::Retired {
            shard: 1,
            at_ns: 200,
        }]);
        assert_eq!(hub.num_shards(), 1);
        hub.absorb(vec![snapshot(1, 2, 250, 9)]);
        // The straggler must not re-open the slot or contribute to merges.
        assert_eq!(hub.num_shards(), 1, "retired shard stays pruned");
        assert_eq!(hub.latest(1), None);
        assert_eq!(hub.latest_all().len(), 1);
        assert_eq!(hub.rejected_retired(), 1);
        // A genuine respawn lifts the guard and the new stream is absorbed.
        hub.observe_lifecycle(&[ShardLifecycleEvent::Spawned {
            shard: 1,
            at_ns: 300,
        }]);
        hub.absorb(vec![snapshot(1, 1, 400, 0)]);
        assert_eq!(hub.latest(1).unwrap().seq, 1);
    }

    #[test]
    fn merged_latency_is_union_of_live_shards() {
        use crate::hist::LatencyHistogram;
        let mut hub = TelemetryHub::new();
        let per_shard = |values: &[u64]| {
            let hist = LatencyHistogram::new();
            for &v in values {
                hist.record(v);
            }
            hist.snapshot()
        };
        let mut a = snapshot(0, 1, 100, 0);
        a.latency.end_to_end = per_shard(&[100, 200, 300]);
        let mut b = snapshot(1, 1, 100, 0);
        b.latency.end_to_end = per_shard(&[400, 500]);
        hub.absorb(vec![a, b]);
        let merged = hub.merged_latency();
        assert_eq!(merged.end_to_end.count(), 5);
        assert_eq!(merged.end_to_end.max, 500);
        assert_eq!(merged.end_to_end, per_shard(&[100, 200, 300, 400, 500]));
        // Retiring shard 1 removes its samples from the merged view.
        hub.observe_lifecycle(&[ShardLifecycleEvent::Retired {
            shard: 1,
            at_ns: 200,
        }]);
        assert_eq!(hub.merged_latency().end_to_end.count(), 3);
        assert_eq!(hub.total_spans_dropped(), 0);
        assert_eq!(hub.total_nf_state_handoffs(), 0);
        assert_eq!(hub.total_nf_state_import_drops(), 0);
    }

    #[test]
    fn zero_interval_yields_no_rate() {
        let mut hub = TelemetryHub::new();
        hub.absorb(vec![snapshot(0, 1, 100, 0)]);
        hub.absorb(vec![snapshot(0, 2, 100, 0)]);
        assert_eq!(hub.rates(0), None);
    }
}
