//! Data-plane telemetry and elastic control actions (paper §3.5).
//!
//! The paper's hierarchical control plane rests on a feedback path from the
//! data plane to the local NF Manager: the manager makes fast resource
//! decisions (replica scaling, queue management) from observed queue depths
//! and service times, while the SDN controller above it only sets policy.
//! This crate defines the vocabulary of that feedback loop:
//!
//! * [`TelemetrySnapshot`] / [`NfTelemetry`] — the periodic, per-shard
//!   measurement a shard's worker thread publishes: queue-depth gauges for
//!   the ingress/NF/egress rings, credit occupancy, per-NF service-time
//!   EWMAs and the shard's cumulative packet counters. Snapshots travel
//!   over the same lock-free SPSC rings as packets
//!   ([`sdnfv-ring`](../sdnfv_ring/index.html)), so exporting telemetry
//!   takes no lock on the packet path;
//! * [`Ewma`] — the exponentially weighted moving average used for
//!   service-time estimates;
//! * [`TelemetryHub`] — the consumer side: merges snapshot streams from all
//!   shards, keeps the latest view per shard, and computes inter-snapshot
//!   rates (punts/sec, throttles/sec);
//! * [`ControlAction`] — the typed decisions an elastic controller (the
//!   `ElasticNfManager` in
//!   [`sdnfv-control`](../sdnfv_control/index.html)) derives from merged
//!   snapshots: scale an NF's replica count on a shard, resize a shard's
//!   credit budget, or rebalance flow-steering weights.
//!
//! The exporter side lives in the
//! [`sdnfv-dataplane`](../sdnfv_dataplane/index.html) runtime; the control
//! loop that closes the circle lives in `sdnfv-control`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod action;
pub mod clock;
pub mod ewma;
pub mod hist;
pub mod hub;
pub mod snapshot;
pub mod source;
pub mod trace;

pub use action::ControlAction;
pub use clock::HostClock;
pub use ewma::Ewma;
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use hub::{ShardRates, TelemetryHub};
pub use snapshot::{LatencyReport, NfTelemetry, ShardLifecycleEvent, TelemetrySnapshot};
pub use source::TelemetrySource;
pub use trace::{SpanVerdict, TraceSpan, TraceStage};
