//! The periodic per-shard telemetry record.

use crate::hist::HistogramSnapshot;
use sdnfv_flowtable::ServiceId;

/// Per-stage latency distributions for one shard, frozen at snapshot
/// time. Every histogram is cumulative since the shard came up (like the
/// counters), so a lost snapshot loses freshness, never samples; merging
/// the per-shard reports in the hub yields exact whole-host distributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyReport {
    /// Ingress admission → egress-ring push, per transmitted packet.
    pub end_to_end: HistogramSnapshot,
    /// Ingress admission → RX dispatch pop (ingress-ring wait; for a
    /// packet re-homed mid-flight this includes its pen dwell).
    pub ingress_wait: HistogramSnapshot,
    /// Per-packet NF service time (burst time / burst size, recorded by
    /// every replica of the shard into one shared histogram).
    pub nf_service: HistogramSnapshot,
    /// Egress staging → egress-ring push (egress backpressure wait).
    pub egress_wait: HistogramSnapshot,
    /// Re-home pen dwell of packets released to this shard.
    pub pen_dwell: HistogramSnapshot,
}

impl LatencyReport {
    /// Folds another report into this one, stage by stage.
    pub fn merge(&mut self, other: &LatencyReport) {
        self.end_to_end.merge(&other.end_to_end);
        self.ingress_wait.merge(&other.ingress_wait);
        self.nf_service.merge(&other.nf_service);
        self.egress_wait.merge(&other.egress_wait);
        self.pen_dwell.merge(&other.pen_dwell);
    }

    /// The stages as `(name, snapshot)` pairs, in a stable order
    /// (exposition renderers iterate this).
    pub fn stages(&self) -> [(&'static str, &HistogramSnapshot); 5] {
        [
            ("end_to_end", &self.end_to_end),
            ("ingress_wait", &self.ingress_wait),
            ("nf_service", &self.nf_service),
            ("egress_wait", &self.egress_wait),
            ("pen_dwell", &self.pen_dwell),
        ]
    }
}

/// Telemetry for one NF instance on a shard: its input-ring occupancy and
/// the service time the NF thread measured.
#[derive(Debug, Clone, PartialEq)]
pub struct NfTelemetry {
    /// Service the instance implements.
    pub service: ServiceId,
    /// The instance's slot index on its shard (stable across snapshots for
    /// the lifetime of the replica).
    pub slot: usize,
    /// Packets currently waiting in the instance's input ring.
    pub input_depth: usize,
    /// Capacity of the instance's input ring.
    pub input_capacity: usize,
    /// EWMA of the per-packet service time, in nanoseconds (0 until the
    /// instance has processed its first burst).
    pub service_time_ewma_ns: u64,
    /// Total packets the instance has processed.
    pub processed: u64,
    /// `true` while the replica is being retired: it drains its remaining
    /// queue but receives no new packets and does not count as a live
    /// replica.
    pub draining: bool,
}

impl NfTelemetry {
    /// Input-ring occupancy as a fraction of capacity, in `[0, 1]`.
    pub fn fill(&self) -> f64 {
        if self.input_capacity == 0 {
            return 0.0;
        }
        (self.input_depth as f64 / self.input_capacity as f64).min(1.0)
    }
}

/// One shard's periodic telemetry export: every queue-depth gauge, credit
/// occupancy, per-NF service times, and the shard's cumulative counters.
///
/// Snapshots are published by the shard's worker thread over a lock-free
/// SPSC ring; counters are **cumulative** so a lost snapshot (consumer
/// lagging) never loses events — rates are reconstructed from deltas by the
/// [`TelemetryHub`](crate::hub::TelemetryHub).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// The shard this snapshot describes.
    pub shard: usize,
    /// Monotonic per-shard sequence number (gaps mean the consumer lagged
    /// and older snapshots were skipped at the exporter).
    pub seq: u64,
    /// Host-clock time the snapshot was taken, in nanoseconds.
    pub at_ns: u64,
    /// Packets waiting in the shard's ingress ring.
    pub ingress_depth: usize,
    /// Capacity of the ingress ring.
    pub ingress_capacity: usize,
    /// Packets waiting in the shard's egress ring.
    pub egress_depth: usize,
    /// Capacity of the egress ring.
    pub egress_capacity: usize,
    /// Credits currently held by in-flight packets (0 under the drop
    /// policy).
    pub credits_in_flight: usize,
    /// The shard's current credit budget (0 under the drop policy).
    pub credit_capacity: usize,
    /// Per-NF-instance telemetry, one entry per live replica.
    pub nfs: Vec<NfTelemetry>,
    /// NF slots currently allocated on the shard — live replicas *plus*
    /// retired slots whose rings have not been compacted yet. Falls back to
    /// `nfs.len()` once the compaction pass has reclaimed every retired
    /// slot.
    pub nf_slots_allocated: usize,
    /// Cumulative packets received by the shard.
    pub received: u64,
    /// Cumulative packets transmitted by the shard.
    pub transmitted: u64,
    /// Cumulative packets dropped by verdicts or rules.
    pub dropped: u64,
    /// Cumulative packets punted to the controller (flow-table misses).
    pub controller_punts: u64,
    /// Cumulative injections rejected by ingress backpressure.
    pub throttled: u64,
    /// Cumulative control commands the shard's worker has applied.
    pub applied_commands: u64,
    /// Packets currently parked in re-home pens destined for this shard
    /// (stamped by the host when the snapshot is polled — the pens live on
    /// the injection side, not in the shard worker).
    pub rehome_pen_depth: usize,
    /// Age of the oldest packet parked in a pen destined for this shard,
    /// in nanoseconds (0 when no packet is penned). A growing value means
    /// a mid-move bucket is being flooded while its drain is stuck —
    /// backpressure that would otherwise be silent.
    pub rehome_pen_max_age_ns: u64,
    /// Cumulative flow rules evicted on this shard because their idle
    /// timeout elapsed without traffic.
    pub rules_evicted_idle: u64,
    /// Cumulative flow rules evicted on this shard because their hard
    /// timeout elapsed.
    pub rules_evicted_hard: u64,
    /// Cumulative per-flow NF state entries scrubbed on this shard because
    /// their flow's rule was evicted.
    pub nf_state_scrubbed: u64,
    /// Cumulative per-flow NF state entries handed off from a retiring
    /// replica to a surviving replica of the same service.
    pub nf_state_handoffs: u64,
    /// Cumulative migrated NF state payloads dropped because no replica of
    /// their service was live to absorb them.
    pub nf_state_import_drops: u64,
    /// Cumulative trace spans discarded because the shard's trace ring was
    /// full (lossy-by-design tracing makes its losses explicit).
    pub spans_dropped: u64,
    /// Per-stage latency distributions (cumulative, mergeable).
    pub latency: LatencyReport,
}

/// A shard joining or leaving the data plane — published by the host when
/// `spawn_shard` / `retire_shard` complete, so telemetry consumers (the
/// [`TelemetryHub`](crate::hub::TelemetryHub), the elastic manager) can
/// grow or prune their per-shard state instead of planning on ghosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardLifecycleEvent {
    /// A new pipeline shard came up and will start publishing snapshots.
    Spawned {
        /// The new shard's index.
        shard: usize,
        /// Host-clock time of the spawn, in nanoseconds.
        at_ns: u64,
    },
    /// A shard finished draining and its pipeline was torn down; no further
    /// snapshots will arrive for it.
    Retired {
        /// The retired shard's (former) index.
        shard: usize,
        /// Host-clock time the teardown completed, in nanoseconds.
        at_ns: u64,
    },
}

impl ShardLifecycleEvent {
    /// The shard the event concerns.
    pub fn shard(&self) -> usize {
        match self {
            ShardLifecycleEvent::Spawned { shard, .. }
            | ShardLifecycleEvent::Retired { shard, .. } => *shard,
        }
    }
}

impl TelemetrySnapshot {
    /// Ingress-ring occupancy as a fraction of capacity, in `[0, 1]`.
    pub fn ingress_fill(&self) -> f64 {
        if self.ingress_capacity == 0 {
            return 0.0;
        }
        (self.ingress_depth as f64 / self.ingress_capacity as f64).min(1.0)
    }

    /// Credit occupancy as a fraction of the budget, in `[0, 1]` (0 under
    /// the drop policy).
    pub fn credit_fill(&self) -> f64 {
        if self.credit_capacity == 0 {
            return 0.0;
        }
        (self.credits_in_flight as f64 / self.credit_capacity as f64).min(1.0)
    }

    /// The live (non-draining) replica count for `service` on this shard.
    pub fn replicas(&self, service: ServiceId) -> usize {
        self.nfs
            .iter()
            .filter(|nf| nf.service == service && !nf.draining)
            .count()
    }

    /// The worst (highest) input-ring fill across `service`'s live replicas,
    /// or `None` if no replica is live.
    pub fn worst_fill(&self, service: ServiceId) -> Option<f64> {
        self.nfs
            .iter()
            .filter(|nf| nf.service == service && !nf.draining)
            .map(NfTelemetry::fill)
            .max_by(|a, b| a.total_cmp(b))
    }

    /// The services with at least one live replica on this shard, sorted and
    /// deduplicated.
    pub fn services(&self) -> Vec<ServiceId> {
        let mut services: Vec<ServiceId> = self
            .nfs
            .iter()
            .filter(|nf| !nf.draining)
            .map(|nf| nf.service)
            .collect();
        services.sort();
        services.dedup();
        services
    }

    /// Total packets queued anywhere inside the shard's pipeline (ingress +
    /// NF rings + egress).
    pub fn backlog(&self) -> usize {
        self.ingress_depth
            + self.egress_depth
            + self.nfs.iter().map(|nf| nf.input_depth).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(id: u32) -> ServiceId {
        ServiceId::new(id)
    }

    fn nf(service: u32, slot: usize, depth: usize, capacity: usize) -> NfTelemetry {
        NfTelemetry {
            service: svc(service),
            slot,
            input_depth: depth,
            input_capacity: capacity,
            service_time_ewma_ns: 100,
            processed: 10,
            draining: false,
        }
    }

    fn snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            shard: 1,
            seq: 3,
            at_ns: 1_000,
            ingress_depth: 8,
            ingress_capacity: 32,
            egress_depth: 2,
            egress_capacity: 32,
            credits_in_flight: 24,
            credit_capacity: 64,
            nfs: vec![nf(1, 0, 10, 100), nf(1, 2, 50, 100), nf(2, 1, 0, 100)],
            nf_slots_allocated: 3,
            received: 100,
            transmitted: 80,
            dropped: 0,
            controller_punts: 5,
            throttled: 15,
            applied_commands: 0,
            rehome_pen_depth: 3,
            rehome_pen_max_age_ns: 2_000,
            rules_evicted_idle: 0,
            rules_evicted_hard: 0,
            nf_state_scrubbed: 0,
            nf_state_handoffs: 0,
            nf_state_import_drops: 0,
            spans_dropped: 0,
            latency: LatencyReport::default(),
        }
    }

    #[test]
    fn fills_are_fractions() {
        let snap = snapshot();
        assert!((snap.ingress_fill() - 0.25).abs() < 1e-9);
        assert!((snap.credit_fill() - 0.375).abs() < 1e-9);
        assert!((snap.nfs[1].fill() - 0.5).abs() < 1e-9);
        let empty = NfTelemetry {
            input_capacity: 0,
            ..nf(1, 0, 5, 0)
        };
        assert_eq!(empty.fill(), 0.0);
    }

    #[test]
    fn replica_and_fill_queries() {
        let snap = snapshot();
        assert_eq!(snap.replicas(svc(1)), 2);
        assert_eq!(snap.replicas(svc(2)), 1);
        assert_eq!(snap.replicas(svc(9)), 0);
        assert!((snap.worst_fill(svc(1)).unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(snap.worst_fill(svc(9)), None);
        assert_eq!(snap.services(), vec![svc(1), svc(2)]);
        assert_eq!(snap.backlog(), 8 + 2 + 60);
    }

    #[test]
    fn draining_replicas_count_toward_backlog_but_not_replicas() {
        let mut snap = snapshot();
        snap.nfs[1].draining = true; // the svc-1 replica holding 50 packets
        assert_eq!(snap.replicas(svc(1)), 1);
        assert!((snap.worst_fill(svc(1)).unwrap() - 0.1).abs() < 1e-9);
        assert_eq!(snap.backlog(), 8 + 2 + 60, "draining queue still counted");
        snap.nfs[2].draining = true; // the only svc-2 replica
        assert_eq!(snap.replicas(svc(2)), 0);
        assert_eq!(snap.services(), vec![svc(1)]);
    }

    #[test]
    fn zero_capacity_gauges_are_zero() {
        let mut snap = snapshot();
        snap.ingress_capacity = 0;
        snap.credit_capacity = 0;
        assert_eq!(snap.ingress_fill(), 0.0);
        assert_eq!(snap.credit_fill(), 0.0);
    }
}
