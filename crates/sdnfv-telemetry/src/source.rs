//! An injectable source of telemetry for the elastic control loop.
//!
//! The `ElasticNfManager` observes the data plane through exactly two
//! feeds: shard lifecycle events and periodic telemetry snapshots. In
//! production both come straight off the `ThreadedHost`'s SPSC rings; under
//! the deterministic-simulation harness a fault-injecting adapter wraps the
//! same host and drops, duplicates, or delays snapshots according to a
//! seeded plan. [`TelemetrySource`] is that seam: the control loop's
//! observe phase is written against the trait, so the code making scaling
//! decisions is identical whether the feed is pristine or adversarial.

use crate::snapshot::{ShardLifecycleEvent, TelemetrySnapshot};

/// The data-plane feed the elastic control loop observes each tick.
///
/// Implementations must preserve the per-shard cumulative-counter contract
/// of [`TelemetrySnapshot`]: dropping snapshots is always safe (counters
/// are cumulative, rates are reconstructed from deltas), but snapshots for
/// one shard must never be reordered.
pub trait TelemetrySource {
    /// Drain shard spawn/retire events observed since the last call.
    fn take_shard_events(&mut self) -> Vec<ShardLifecycleEvent>;

    /// Drain telemetry snapshots published since the last call.
    fn poll_snapshots(&mut self) -> Vec<TelemetrySnapshot>;
}
