//! Compact span records for sampled flow tracing.
//!
//! A traced packet (hash-sampled by the host's sampling knob, or pinned
//! by a `Trace` rule action in the classifier) emits one span per
//! pipeline stage it crosses: an RX span when the shard worker first
//! dispatches it, one NF span per replica burst that processed it, and a
//! terminal span when it reaches egress (or is dropped / punted along
//! the way). Spans travel over a lossy per-shard SPSC ring — when the
//! ring is full the span is counted in `spans_dropped`, never blocked
//! on — and are drained host-side via `ThreadedHost::poll_traces`.

/// The pipeline stage a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceStage {
    /// The shard worker's RX dispatch role (ingress pop → staging).
    Rx,
    /// One NF replica's service burst.
    Nf,
    /// The shard worker's TX role resolving an NF verdict.
    Tx,
    /// The egress flush (staged → host egress ring).
    Egress,
}

impl TraceStage {
    /// Stable lowercase label (exposition and replay traces).
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceStage::Rx => "rx",
            TraceStage::Nf => "nf",
            TraceStage::Tx => "tx",
            TraceStage::Egress => "egress",
        }
    }
}

/// What happened to the packet at the end of the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanVerdict {
    /// Handed to one or more NF replicas (non-terminal).
    Forwarded,
    /// Pushed to the host egress ring (terminal).
    Egressed,
    /// Dropped (terminal).
    Dropped,
    /// Punted to the controller (terminal).
    Punted,
}

impl SpanVerdict {
    /// Whether this verdict ends the packet's journey through the host.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, SpanVerdict::Forwarded)
    }

    /// Stable lowercase label (exposition and replay traces).
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanVerdict::Forwarded => "forwarded",
            SpanVerdict::Egressed => "egressed",
            SpanVerdict::Dropped => "dropped",
            SpanVerdict::Punted => "punted",
        }
    }
}

/// One stage of one sampled packet's path through the data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Shard the stage ran on.
    pub shard: usize,
    /// Stage kind.
    pub stage: TraceStage,
    /// Service id of the NF replica ([`TraceStage::Nf`] spans; 0 otherwise).
    pub service: u32,
    /// The flow's stable hash (groups spans of one flow without carrying
    /// the full key).
    pub flow_hash: u64,
    /// Host-clock start of the stage (ns). For RX spans this is the
    /// packet's ingress admission stamp, so `t_end - t_start` is the
    /// ingress-ring wait.
    pub t_start_ns: u64,
    /// Host-clock end of the stage (ns).
    pub t_end_ns: u64,
    /// Outcome at span end.
    pub verdict: SpanVerdict,
}

impl TraceSpan {
    /// The stage duration (saturating).
    pub fn duration_ns(&self) -> u64 {
        self.t_end_ns.saturating_sub(self.t_start_ns)
    }

    /// Folds the span into an FNV-1a accumulator (deterministic-replay
    /// digests; order-sensitive).
    pub fn fold_digest(&self, hash: &mut u64) {
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                *hash ^= byte as u64;
                *hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.shard as u64);
        eat(self.stage as u64);
        eat(self.service as u64);
        eat(self.flow_hash);
        eat(self.t_start_ns);
        eat(self.t_end_ns);
        eat(self.verdict as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_terminality() {
        assert!(!SpanVerdict::Forwarded.is_terminal());
        assert!(SpanVerdict::Egressed.is_terminal());
        assert!(SpanVerdict::Dropped.is_terminal());
        assert!(SpanVerdict::Punted.is_terminal());
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let span = TraceSpan {
            shard: 1,
            stage: TraceStage::Rx,
            service: 0,
            flow_hash: 42,
            t_start_ns: 10,
            t_end_ns: 20,
            verdict: SpanVerdict::Forwarded,
        };
        let mut a = 0xcbf2_9ce4_8422_2325u64;
        let mut b = a;
        span.fold_digest(&mut a);
        let mut other = span;
        other.t_end_ns = 21;
        other.fold_digest(&mut b);
        assert_ne!(a, b);
        assert_eq!(span.duration_ns(), 10);
    }
}
