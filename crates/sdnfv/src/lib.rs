//! SDNFV: software defined control of an application- and flow-aware data
//! plane.
//!
//! This facade crate re-exports the whole SDNFV workspace behind one
//! dependency, organised the way the paper organises the system:
//!
//! | Module | Crate | Paper section |
//! |---|---|---|
//! | [`proto`] | `sdnfv-proto` | packet formats the NFs inspect |
//! | [`ring`] | `sdnfv-ring` | §4.1 zero-copy rings and packet pools |
//! | [`flowtable`] | `sdnfv-flowtable` | §3.3 service-ID-extended flow tables |
//! | [`graph`] | `sdnfv-graph` | §3.2 service graphs |
//! | [`nf`] | `sdnfv-nf` | §4.3 the SDNFV-User library and NFs |
//! | [`dataplane`] | `sdnfv-dataplane` | §4.1–4.2 the NF Manager |
//! | [`telemetry`] | `sdnfv-telemetry` | §3.5 telemetry bus and control actions |
//! | [`control`] | `sdnfv-control` | §3.1/§3.4–3.5 controller, orchestrator, application, elastic manager |
//! | [`obs`] | `sdnfv-obs` | latency percentiles, flow traces, control-plane flight recorder |
//! | [`placement`] | `sdnfv-placement` | §3.5 the placement engine |
//! | [`sim`] | `sdnfv-sim` | §5 scenario simulators for the evaluation |
//!
//! # Quickstart
//!
//! ```
//! use sdnfv::graph::{catalog, CompileOptions};
//! use sdnfv::dataplane::{NfManager, PacketOutcome};
//! use sdnfv::nf::nfs::NoOpNf;
//! use sdnfv::proto::packet::PacketBuilder;
//!
//! // Build the anomaly-detection service graph and install it on a host.
//! let (graph, services) = catalog::anomaly_detection();
//! let mut manager = NfManager::default();
//! manager.install_graph(&graph, &CompileOptions::default());
//! manager.add_nf(services.firewall, Box::new(NoOpNf::new()));
//! manager.add_nf(services.sampler, Box::new(NoOpNf::new()));
//!
//! // Push a packet through the default path.
//! let packet = PacketBuilder::udp().ingress_port(0).build();
//! match manager.process_packet(packet, 0) {
//!     PacketOutcome::Transmitted { port, .. } => assert_eq!(port, 1),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sdnfv_control as control;
pub use sdnfv_dataplane as dataplane;
pub use sdnfv_flowtable as flowtable;
pub use sdnfv_graph as graph;
pub use sdnfv_nf as nf;
pub use sdnfv_obs as obs;
pub use sdnfv_placement as placement;
pub use sdnfv_proto as proto;
pub use sdnfv_ring as ring;
pub use sdnfv_sim as sim;
pub use sdnfv_telemetry as telemetry;
