//! The anomaly-detection use case (paper §2.2 and §5.2) end to end:
//! firewall → sampler → {DDoS detector ∥ IDS} → scrubber, including the
//! cross-layer messages that reroute suspicious flows and launch a scrubber
//! when a volumetric attack is detected.
//!
//! Run with: `cargo run --example anomaly_detection`

use sdnfv::control::{AppAction, NfvOrchestrator, SdnfvApplication};
use sdnfv::dataplane::{NfManager, PacketOutcome};
use sdnfv::flowtable::IpPrefix;
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::ddos::DDOS_ALARM_KEY;
use sdnfv::nf::nfs::{DdosDetectorNf, FirewallNf, IdsNf, SamplerNf, ScrubberNf};
use sdnfv::nf::NfRegistry;
use sdnfv::proto::packet::PacketBuilder;
use sdnfv::sim::ddos::DdosExperiment;
use std::net::Ipv4Addr;

fn main() {
    let (graph, services) = catalog::anomaly_detection();

    // Data plane: every service of the graph, with parallel dispatch of the
    // two read-only analysis NFs (DDoS detector and IDS).
    let mut manager = NfManager::default();
    manager.install_graph(
        &graph,
        &CompileOptions {
            enable_parallel: true,
            ..CompileOptions::default()
        },
    );
    manager.add_nf(services.firewall, Box::new(FirewallNf::allow_by_default()));
    manager.add_nf(
        services.sampler,
        Box::new(SamplerNf::per_packet(services.ddos, 2)),
    );
    manager.add_nf(
        services.ddos,
        Box::new(DdosDetectorNf::new(1_000_000_000, 1_000_000, 16)),
    );
    manager.add_nf(
        services.ids,
        Box::new(IdsNf::new(services.ids, services.scrubber)),
    );
    manager.add_nf(
        services.scrubber,
        Box::new(ScrubberNf::new().with_signature(b"UNION SELECT".to_vec())),
    );

    // Control plane: a DDoS alarm triggers launching another scrubber.
    let mut app = SdnfvApplication::new();
    app.register_graph(graph);
    app.register_launch_trigger(DDOS_ALARM_KEY, "scrubber");
    let mut registry = NfRegistry::new();
    registry.register("scrubber", || {
        ScrubberNf::for_prefix(IpPrefix::new(Ipv4Addr::new(66, 0, 0, 0), 16))
    });
    let mut orchestrator = NfvOrchestrator::with_paper_boot_time(registry);

    // Clean web traffic plus one flow carrying a SQL-injection payload.
    let mut dropped = 0;
    let mut transmitted = 0;
    for i in 0..200u16 {
        let malicious = i == 50;
        let payload = if malicious {
            "GET /q?id=1 UNION SELECT password FROM users HTTP/1.1\r\n\r\n".to_string()
        } else {
            format!("GET /page/{i} HTTP/1.1\r\nHost: example.com\r\n\r\n")
        };
        let pkt = PacketBuilder::tcp()
            .src_ip([10, 0, 0, 7])
            .dst_ip([93, 184, 216, 34])
            .src_port(20_000 + i)
            .dst_port(80)
            .payload(payload.as_bytes())
            .ingress_port(0)
            .build();
        match manager.process_packet(pkt, u64::from(i) * 1_000_000) {
            PacketOutcome::Transmitted { .. } => transmitted += 1,
            PacketOutcome::Dropped => dropped += 1,
            PacketOutcome::PuntedToController { .. } => {}
        }
    }
    println!("web traffic: {transmitted} transmitted, {dropped} dropped");
    println!(
        "IDS alerts pinned suspicious flows to the scrubber: {} cross-layer messages",
        manager.stats().snapshot().nf_messages
    );

    // Drive the manager's messages through the SDNFV Application.
    for message in manager.take_messages() {
        for action in app.handle_manager_message(0, message.from, &message.message) {
            match action {
                AppAction::LaunchNf { service_name, .. } => {
                    let ticket = orchestrator
                        .launch(0, &service_name, 0)
                        .expect("registered");
                    println!(
                        "orchestrator: launching `{}`, ready after {:.2}s (VM boot)",
                        ticket.service_name,
                        ticket.ready_at_ns as f64 / 1e9
                    );
                }
                other => println!("application action: {other:?}"),
            }
        }
    }

    // Finally, run the full Figure 9 scenario (attack ramp, detection,
    // scrubber boot, mitigation) in simulated time and print the summary.
    println!("\nrunning the Figure 9 DDoS scenario (simulated 200 s)...");
    let result = DdosExperiment::default().run();
    println!(
        "  attack detected at t={:.1}s, scrubber active at t={:.1}s",
        result.detection_secs.unwrap_or(f64::NAN),
        result.scrubber_active_secs.unwrap_or(f64::NAN)
    );
    println!(
        "  outgoing traffic at t=150s: {:.2} Gbps (incoming {:.2} Gbps)",
        result.outgoing.value_near(150.0).unwrap_or(f64::NAN),
        result.incoming.value_near(150.0).unwrap_or(f64::NAN),
    );
}
