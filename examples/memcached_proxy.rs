//! The application-aware memcached proxy (paper §5.4): layer-7 load
//! balancing on the data path, compared against a TwemProxy-style kernel
//! proxy.
//!
//! Run with: `cargo run --example memcached_proxy`

use sdnfv::dataplane::{NfManager, PacketOutcome};
use sdnfv::flowtable::{Action, FlowMatch, FlowRule, RulePort, ServiceId};
use sdnfv::nf::nfs::{Backend, MemcachedProxyNf};
use sdnfv::proto::memcached::get_request;
use sdnfv::proto::packet::PacketBuilder;
use sdnfv::sim::memcached::{figure12, measure_proxy_ns_per_request, ProxyModel};
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn main() {
    // The proxy NF rewrites each request's destination to the backend chosen
    // by hashing the memcached key.
    let backends = vec![
        Backend::new(Ipv4Addr::new(10, 10, 0, 1), 11211),
        Backend::new(Ipv4Addr::new(10, 10, 0, 2), 11211),
        Backend::new(Ipv4Addr::new(10, 10, 0, 3), 11211),
        Backend::new(Ipv4Addr::new(10, 10, 0, 4), 11211),
    ];
    let proxy_svc = ServiceId::new(1);
    let mut manager = NfManager::default();
    manager.install_rule(FlowRule::new(
        FlowMatch::at_step(RulePort::Nic(0)),
        vec![Action::ToService(proxy_svc)],
    ));
    manager.install_rule(FlowRule::new(
        FlowMatch::at_step(proxy_svc),
        vec![Action::ToPort(1)],
    ));
    manager.add_nf(
        proxy_svc,
        Box::new(MemcachedProxyNf::new(backends.clone(), 1)),
    );

    // Send a batch of GET requests and show how they spread over backends.
    let mut per_backend: HashMap<Ipv4Addr, u32> = HashMap::new();
    for i in 0..10_000u32 {
        let pkt = PacketBuilder::udp()
            .src_ip([192, 0, 2, 10])
            .dst_ip([10, 10, 0, 100]) // the proxy VIP
            .src_port(30_000 + (i % 1000) as u16)
            .dst_port(11211)
            .payload(&get_request(i as u16, &format!("user:{i}")))
            .ingress_port(0)
            .build();
        if let PacketOutcome::Transmitted { packet, .. } = manager.process_packet(pkt, u64::from(i))
        {
            *per_backend.entry(packet.ipv4().unwrap().dst).or_insert(0) += 1;
        }
    }
    println!(
        "10,000 GET requests load-balanced across {} backends:",
        backends.len()
    );
    let mut entries: Vec<_> = per_backend.into_iter().collect();
    entries.sort();
    for (backend, count) in entries {
        println!("  {backend}: {count} requests");
    }

    // Calibrate the proxy model from the real NF and print the Figure 12
    // comparison.
    let measured_ns = measure_proxy_ns_per_request(200_000);
    println!(
        "\nmeasured proxy cost: {measured_ns:.0} ns/request ({:.2} M req/s on one core)",
        1e3 / measured_ns
    );

    let result = figure12();
    println!(
        "TwemProxy saturates at ~{:.0}k req/s; the SDNFV proxy sustains ~{:.1}M req/s ({}x)",
        result.twemproxy_capacity_rps / 1e3,
        result.sdnfv_capacity_rps / 1e6,
        (result.sdnfv_capacity_rps / result.twemproxy_capacity_rps).round()
    );
    println!("\nRTT vs request rate (µs):");
    println!("{:>12} {:>12} {:>12}", "k req/s", "TwemProxy", "SDNFV");
    for ((rate, twem), (_, sdnfv)) in result.twemproxy.points.iter().zip(&result.sdnfv.points) {
        println!("{rate:>12.0} {twem:>12.0} {sdnfv:>12.0}");
    }
    let _ = ProxyModel::sdnfv_calibrated(10_000);
}
