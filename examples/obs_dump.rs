//! End-to-end observability dump: drive a sharded host through a DDoS-style
//! traffic swing while an [`ObsHub`] watches, then print everything the
//! observability layer produces — Prometheus exposition, the JSON report,
//! latency percentiles, sampled flow traces, and the control-plane flight
//! recorder replay.
//!
//! Run with: `cargo run --example obs_dump`

use sdnfv::dataplane::{ThreadedHost, ThreadedHostConfig};
use sdnfv::flowtable::{ServiceId, SharedFlowTable};
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::ComputeNf;
use sdnfv::nf::NetworkFunction;
use sdnfv::obs::{json_report, prometheus_text, ObsHub};
use sdnfv::proto::packet::PacketBuilder;
use sdnfv::telemetry::{ControlAction, TraceStage};

/// Per-shard NF replica set: one light compute stage.
fn nf_set(ids: &[ServiceId]) -> Vec<(ServiceId, Box<dyn NetworkFunction>)> {
    ids.iter()
        .map(|id| (*id, Box::new(ComputeNf::new(4)) as Box<dyn NetworkFunction>))
        .collect()
}

fn main() {
    let (chain, ids) = catalog::chain(&[("scrubber", true)]);
    let table = SharedFlowTable::new();
    for rule in chain.compile(&CompileOptions::default()) {
        table.insert(rule);
    }
    let ids = ids.clone();
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| nf_set(&ids),
        ThreadedHostConfig {
            num_shards: 2,
            burst_size: 32,
            trace_ring_capacity: 8192,
            ..ThreadedHostConfig::default()
        },
    );
    let mut obs = ObsHub::new();

    // The controller turns on flow tracing: 1 of every 4 flows (by stable
    // flow hash) emits per-stage spans.
    let sampling = ControlAction::SetTraceSampling { every: 4 };
    obs.record_actions(host.now_ns(), std::slice::from_ref(&sampling));
    host.set_trace_sampling(4);

    let mut injected = 0u64;
    let mut received = 0u64;
    let push = |host: &ThreadedHost,
                obs: &mut ObsHub,
                injected: &mut u64,
                received: &mut u64,
                flows: u16,
                packets: u32| {
        let mut pending = Vec::new();
        let mut sequence = 0u32;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut sent = 0u32;
        while sent < packets && std::time::Instant::now() < deadline {
            while pending.len() < 32 && sent + (pending.len() as u32) < packets {
                pending.push(
                    PacketBuilder::udp()
                        .src_ip([10, 0, (sequence % 7) as u8, 1])
                        .dst_ip([10, 0, 1, 1])
                        .src_port(1024 + (sequence % u32::from(flows)) as u16)
                        .dst_port(80)
                        .ingress_port(0)
                        .total_size(256)
                        .build(),
                );
                sequence += 1;
            }
            let outcome = host.inject_burst(pending);
            sent += outcome.admitted as u32;
            *injected += outcome.admitted as u64;
            pending = outcome.throttled;
            *received += host.poll_egress_burst(64).len() as u64;
            obs.observe(host);
            if !pending.is_empty() {
                std::thread::yield_now();
            }
        }
    };

    // Phase 1 — baseline: 64 steady flows.
    push(&host, &mut obs, &mut injected, &mut received, 64, 2_000);

    // Phase 2 — attack wave: 512 distinct flows slam the host; the
    // controller reacts by spawning a third shard, which re-homes a fair
    // share of steering buckets through the drain handshake.
    obs.record_actions(host.now_ns(), &[ControlAction::SpawnShard]);
    assert!(host.spawn_shard(nf_set(&ids)).is_ok(), "spawn third shard");
    push(&host, &mut obs, &mut injected, &mut received, 512, 4_000);

    // Phase 3 — the wave passes: retire the extra shard and drain.
    let retire = ControlAction::RetireShard {
        shard: host.num_shards() - 1,
    };
    obs.record_actions(host.now_ns(), std::slice::from_ref(&retire));
    assert!(host.retire_shard(), "retire the attack-era shard");
    push(&host, &mut obs, &mut injected, &mut received, 64, 2_000);

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while received < injected && std::time::Instant::now() < deadline {
        received += host.poll_egress_burst(64).len() as u64;
        obs.observe(&host);
        std::thread::yield_now();
    }
    obs.observe(&host);

    println!("=== traffic ===");
    println!("injected {injected}, egressed {received}\n");

    println!("=== latency percentiles (ns) ===");
    for (stage, hist) in obs.latency().stages() {
        println!(
            "{stage:>12}: count={:<7} p50={:<8} p99={:<8} p999={}",
            hist.count(),
            hist.p50(),
            hist.p99(),
            hist.p999()
        );
    }

    println!("\n=== sampled flow traces ===");
    for stage in [
        TraceStage::Rx,
        TraceStage::Nf,
        TraceStage::Tx,
        TraceStage::Egress,
    ] {
        println!("{:?} spans: {}", stage, obs.spans_for_stage(stage));
    }
    println!(
        "collected {} spans total ({} shed at the hub, {} dropped at the rings)",
        obs.spans_collected(),
        obs.spans_shed(),
        obs.telemetry().total_spans_dropped()
    );

    println!("\n=== control-plane flight recorder ===");
    for line in obs.recorder().replay() {
        println!("{line}");
    }

    println!("\n=== prometheus exposition ===");
    print!("{}", prometheus_text(&obs));

    println!("\n=== json report ===");
    println!("{}", json_report(&obs));

    host.shutdown();
}
