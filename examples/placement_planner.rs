//! NF placement planning (paper §3.5 and Figure 5): compare the greedy
//! baseline, the optimal solver and the division heuristic on the paper's
//! 22-node topology, and show the per-host instance plan the SDNFV
//! Application derives from the winning placement.
//!
//! Run with: `cargo run --example placement_planner`

use sdnfv::control::SdnfvApplication;
use sdnfv::graph::catalog;
use sdnfv::placement::{
    DivisionSolver, GreedySolver, OptimalSolver, PlacementProblem, PlacementSolver,
};

fn main() {
    let flow_counts = [5usize, 10, 20, 30, 40];
    let solvers: Vec<Box<dyn PlacementSolver>> = vec![
        Box::new(GreedySolver),
        Box::new(OptimalSolver::default()),
        Box::new(DivisionSolver::default()),
    ];

    println!(
        "maximum utilization (link / core) by number of flows — 22 nodes, 64 links, chain J1–J5"
    );
    println!(
        "{:>8} {:>22} {:>22} {:>22}",
        "flows", "greedy", "optimal", "division"
    );
    for flows in flow_counts {
        let problem = PlacementProblem::paper_figure5(flows, 1.0, 16631);
        let mut row = format!("{flows:>8}");
        for solver in &solvers {
            let placement = solver.solve(&problem);
            let report = placement.utilization(&problem);
            row.push_str(&format!(
                " {:>9.2}/{:<4.2} ({:>2}/{:<2})",
                report.max_link_utilization,
                report.max_core_utilization,
                report.placed_flows,
                flows
            ));
        }
        println!("{row}");
    }

    // How many flows can each algorithm accommodate before it has to start
    // rejecting them?
    println!("\nflows accommodated before the first rejection:");
    for solver in &solvers {
        let mut supported = 0;
        for flows in (5..=60).step_by(5) {
            let problem = PlacementProblem::paper_figure5(flows, 1.0, 16631);
            let placement = solver.solve(&problem);
            if placement.placed_flows() == flows {
                supported = flows;
            } else {
                break;
            }
        }
        println!("  {:>9}: {supported} flows", solver.name());
    }

    // Feed the winning placement to the SDNFV Application to get the
    // per-host instance plan the NFV orchestrator would execute.
    let (graph, _) = catalog::anomaly_detection();
    let mut app = SdnfvApplication::new();
    app.register_graph(graph);
    let problem = PlacementProblem::paper_figure5(20, 1.0, 16631);
    let (placement, per_host) = app.plan_placement(&OptimalSolver::default(), &problem);
    println!(
        "\noptimal placement for 20 flows: {} placed, {} hosts used",
        placement.placed_flows(),
        per_host.len()
    );
    let mut hosts: Vec<_> = per_host.into_iter().collect();
    hosts.sort();
    for (host, instances) in hosts.iter().take(8) {
        let summary: Vec<String> = instances
            .iter()
            .map(|(svc, count)| format!("{svc}×{count}"))
            .collect();
        println!("  host {host:>2}: {}", summary.join(", "));
    }
    if hosts.len() > 8 {
        println!("  … and {} more hosts", hosts.len() - 8);
    }
}
