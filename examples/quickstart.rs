//! Quickstart: build a service graph, install it on an NF Manager, and push
//! traffic through both the inline engine and the multi-threaded runtime.
//!
//! Run with: `cargo run --example quickstart`

use sdnfv::dataplane::{NfManager, PacketOutcome, ThreadedHost, ThreadedHostConfig};
use sdnfv::flowtable::{ServiceId, SharedFlowTable};
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::{ComputeNf, FirewallNf, NoOpNf, SamplerNf};
use sdnfv::nf::NetworkFunction;
use sdnfv::proto::packet::PacketBuilder;

fn main() {
    // ---------------------------------------------------------------- inline
    // 1. A service graph: the paper's anomaly-detection application.
    let (graph, services) = catalog::anomaly_detection();
    println!(
        "service graph `{}` with {} services",
        graph.name(),
        graph.len()
    );
    println!("default path: {:?}", graph.default_path());

    // 2. An NF Manager with the graph's rules and one NF per service.
    let mut manager = NfManager::default();
    manager.install_graph(&graph, &CompileOptions::default());
    manager.add_nf(services.firewall, Box::new(FirewallNf::allow_by_default()));
    manager.add_nf(
        services.sampler,
        Box::new(SamplerNf::per_packet(services.ddos, 4)),
    );
    manager.add_nf(services.ddos, Box::new(NoOpNf::new()));
    manager.add_nf(services.ids, Box::new(NoOpNf::new()));
    manager.add_nf(services.scrubber, Box::new(NoOpNf::new()));

    // 3. Push traffic through in bursts (the batch-first fast path; use
    //    `process_packet` for one-off packets) and look at what happened.
    let mut transmitted = 0;
    for burst_index in 0..(1000 / 32u32) {
        let burst: Vec<_> = (0..32u32)
            .map(|i| {
                PacketBuilder::udp()
                    .src_ip([10, 0, 0, 1])
                    .dst_ip([10, 0, 1, 1])
                    .src_port(1024 + ((burst_index * 32 + i) % 64) as u16)
                    .dst_port(80)
                    .ingress_port(0)
                    .total_size(256)
                    .build()
            })
            .collect();
        transmitted += manager
            .process_burst(burst, u64::from(burst_index))
            .iter()
            .filter(|o| matches!(o, PacketOutcome::Transmitted { .. }))
            .count();
    }
    let stats = manager.stats().snapshot();
    println!("\ninline engine: {transmitted} packets transmitted");
    println!(
        "  NF invocations: {}, parallel dispatches: {}, drops: {}",
        stats.nf_invocations, stats.parallel_dispatches, stats.dropped
    );
    println!(
        "  every 4th packet visited the DDoS detector: {} invocations",
        manager.service_invocations(services.ddos)
    );

    // ------------------------------------------------------------- threaded
    // The same idea on the multi-threaded runtime: one thread per NF "VM",
    // zero-copy rings in between.
    let (chain, ids) = catalog::chain(&[("stage-a", true), ("stage-b", true)]);
    let table = SharedFlowTable::new();
    for rule in chain.compile(&CompileOptions {
        enable_parallel: true,
        ..CompileOptions::default()
    }) {
        table.insert(rule);
    }
    let nfs: Vec<(ServiceId, Box<dyn NetworkFunction>)> = ids
        .iter()
        .map(|id| (*id, Box::new(ComputeNf::new(8)) as Box<dyn NetworkFunction>))
        .collect();
    // Descriptors move between the worker and NF threads in bursts of
    // `burst_size` packets with one ring operation per burst. The credit
    // budget bounds how many packets the shard holds in flight — the
    // backpressure knob that used to be a hand-rolled in-flight counter.
    let host = ThreadedHost::start(
        table,
        nfs,
        ThreadedHostConfig {
            burst_size: 32,
            shard_credits: 256,
            ..ThreadedHostConfig::default()
        },
    );
    let mut injected = 0u32;
    let mut received = 0u32;
    let mut throttled = 0u32;
    let mut sequence = 0u32;
    let mut total_latency_ns = 0u64;
    let drain = |received: &mut u32, total_latency_ns: &mut u64| {
        for out in host.poll_egress_burst(64) {
            *total_latency_ns += host.now_ns().saturating_sub(out.packet.timestamp_ns);
            *received += 1;
        }
    };
    // No hand-tuned in-flight bound: the host runs under credit-based
    // backpressure (the default `OverflowPolicy::Backpressure`), so a
    // saturated pipeline hands packets back as `Throttled` instead of
    // silently dropping them — we just retry after draining egress.
    let mut pending: Vec<_> = Vec::new();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while injected < 5_000 && std::time::Instant::now() < deadline {
        while pending.len() < 32 {
            pending.push(
                PacketBuilder::udp()
                    .src_port((sequence % 512) as u16 + 1024)
                    .ingress_port(0)
                    .total_size(512)
                    .build(),
            );
            sequence += 1;
        }
        let outcome = host.inject_burst(pending);
        injected += outcome.admitted as u32;
        throttled += outcome.throttled.len() as u32;
        pending = outcome.throttled;
        drain(&mut received, &mut total_latency_ns);
        if !pending.is_empty() {
            // Fully throttled: give the pipeline a beat before retrying.
            std::thread::yield_now();
        }
    }
    while received < injected && std::time::Instant::now() < deadline {
        drain(&mut received, &mut total_latency_ns);
    }
    println!("\nthreaded runtime: {received} packets through a 2-NF parallel chain");
    println!(
        "  average in-host latency: {:.1} µs",
        total_latency_ns as f64 / received as f64 / 1000.0
    );
    println!("  backpressure retries (throttled injections): {throttled}");
    println!("  host stats: {:?}", host.stats().snapshot());
    host.shutdown();
}
