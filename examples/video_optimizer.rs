//! The video-optimization use case (paper §2.2 and §5.3): detect video
//! flows, apply a bandwidth policy on the data path, and react to a policy
//! change far faster than a controller-mediated deployment can.
//!
//! Run with: `cargo run --example video_optimizer`

use sdnfv::dataplane::{NfManager, PacketOutcome};
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::{
    CacheNf, FirewallNf, PolicyEngineNf, PolicyHandle, QualityDetectorNf, ShaperNf, TranscoderNf,
    VideoDetectorNf,
};
use sdnfv::nf::Verdict;
use sdnfv::proto::http::response_with_content_type;
use sdnfv::proto::packet::PacketBuilder;
use sdnfv::sim::video::VideoExperiment;

fn main() {
    let (graph, services) = catalog::video_optimizer();
    println!(
        "video optimizer graph: {:?}",
        graph
            .default_path()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
    );

    // Build the host: the full seven-service pipeline.
    let policy = PolicyHandle::new();
    let mut manager = NfManager::default();
    manager.install_graph(&graph, &CompileOptions::default());
    manager.add_nf(services.firewall, Box::new(FirewallNf::allow_by_default()));
    manager.add_nf(
        services.video_detector,
        Box::new(VideoDetectorNf::new(Verdict::ToPort(1))),
    );
    manager.add_nf(
        services.policy_engine,
        Box::new(PolicyEngineNf::new(
            services.policy_engine,
            services.video_detector,
            services.transcoder,
            sdnfv::flowtable::Action::ToService(services.quality_detector),
            policy.clone(),
        )),
    );
    manager.add_nf(
        services.quality_detector,
        Box::new(QualityDetectorNf::new(50_000, services.cache)),
    );
    manager.add_nf(services.transcoder, Box::new(TranscoderNf::halving()));
    manager.add_nf(services.cache, Box::new(CacheNf::new(1024)));
    manager.add_nf(
        services.shaper,
        Box::new(ShaperNf::new(10_000_000, 1_000_000)),
    );

    // One video flow and one plain web flow.
    let video_header = response_with_content_type(200, "video/mp4");
    let web_header = response_with_content_type(200, "text/html");
    let send = |manager: &mut NfManager, src_port: u16, header: &[u8], count: usize| {
        let mut out = 0;
        for i in 0..count {
            let pkt = if i == 0 {
                PacketBuilder::tcp()
                    .src_port(src_port)
                    .dst_port(40000)
                    .payload(header)
            } else {
                PacketBuilder::tcp()
                    .src_port(src_port)
                    .dst_port(40000)
                    .total_size(1000)
            }
            .src_ip([203, 0, 113, 10])
            .dst_ip([198, 51, 100, 20])
            .ingress_port(0)
            .build();
            if let PacketOutcome::Transmitted { .. } =
                manager.process_packet(pkt, i as u64 * 1_000_000)
            {
                out += 1;
            }
        }
        out
    };

    println!("\npolicy: no throttling");
    let video_out = send(&mut manager, 5000, &video_header, 100);
    let web_out = send(&mut manager, 5001, &web_header, 100);
    println!("  video flow: {video_out}/100 packets out, web flow: {web_out}/100 packets out");

    policy.set_throttle(true);
    println!("policy: throttle video to half rate");
    let video_out = send(&mut manager, 6000, &video_header, 100);
    let web_out = send(&mut manager, 6001, &web_header, 100);
    println!("  video flow: {video_out}/100 packets out (transcoded), web flow: {web_out}/100 packets out");

    // The Figure 11 experiment: how quickly each architecture tracks the
    // policy window.
    println!("\nrunning the Figure 11 scenario (simulated 350 s)...");
    let result = VideoExperiment::default().run();
    let before = result.sdnfv.mean_between(30.0, 58.0).unwrap_or(f64::NAN);
    let sdnfv_during = result.sdnfv.mean_between(70.0, 230.0).unwrap_or(f64::NAN);
    let sdn_during_early = result.sdn.mean_between(62.0, 90.0).unwrap_or(f64::NAN);
    println!("  output before the policy window: {before:.0} packets/s");
    println!(
        "  SDNFV inside the window:         {sdnfv_during:.0} packets/s (throttled immediately)"
    );
    println!("  SDN just after the change:       {sdn_during_early:.0} packets/s (lagging — only new flows throttled)");
}
