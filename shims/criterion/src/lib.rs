//! Offline shim for the `criterion` crate.
//!
//! Implements the macro + builder surface the workspace's benches use and
//! measures with plain wall-clock timing: a short warm-up to calibrate the
//! per-iteration cost, then a timed measurement window. Results print as
//! `<group>/<name>  time: <ns>/iter` plus a throughput line when
//! [`BenchmarkGroup::throughput`] was set. It is deliberately simpler than
//! real criterion (no statistics, no comparisons) but produces honest
//! relative numbers for A/B benches in one process.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Measurement configuration and entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI parsing.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            throughput: None,
        }
    }
}

/// Per-iteration data volume, used to derive throughput from timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes moved per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name, an input parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier carrying only the input parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s where criterion does.
pub trait IntoBenchmarkId {
    /// The printable benchmark label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the per-iteration data volume used for throughput lines.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        self.run(&label, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        self.run(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            ns_per_iter: f64::NAN,
            iterations: 0,
        };
        f(&mut bencher);
        let full = format!("{}/{label}", self.name);
        if bencher.iterations == 0 {
            println!("{full:<55} (no measurement: Bencher::iter never called)");
            return;
        }
        let ns = bencher.ns_per_iter;
        let time = format_ns(ns);
        match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gibps = bytes as f64 / ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
                println!("{full:<55} time: {time:>12}/iter   thrpt: {gibps:.3} GiB/s");
            }
            Some(Throughput::Elements(elems)) => {
                let melems = elems as f64 / ns * 1e9 / 1e6;
                println!("{full:<55} time: {time:>12}/iter   thrpt: {melems:.3} Melem/s");
            }
            None => println!("{full:<55} time: {time:>12}/iter"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    ns_per_iter: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock cost per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for the warm-up window to estimate cost and reach a
        // steady state.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std_black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);
        // Measurement: fixed iteration count sized to the measurement window,
        // timed as one block to amortize clock reads.
        let target =
            ((self.measurement.as_nanos() as f64 / est_ns) as u64).clamp(10, 2_000_000_000);
        let start = Instant::now();
        for _ in 0..target {
            std_black_box(routine());
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / target as f64;
        self.iterations = target;
    }
}

/// Expands to a function running each benchmark target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to a `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_closure() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(count > 0);
    }
}
