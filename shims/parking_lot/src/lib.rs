//! Offline shim for the `parking_lot` crate.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's non-poisoning API,
//! implemented on top of `std::sync`. A poisoned std lock means a thread
//! panicked while holding the guard; parking_lot semantics simply release
//! the lock, so the shim recovers the guard from the poison error.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
