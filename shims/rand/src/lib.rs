//! Offline shim for the `rand` crate.
//!
//! Implements the small surface the workspace uses: `rngs::StdRng`
//! seeded via [`SeedableRng::seed_from_u64`] and uniform sampling via
//! [`Rng::gen_range`]. The generator is SplitMix64 — statistically fine
//! for simulation workloads, not cryptographically secure.

use std::ops::Range;

/// A source of random 64-bit values.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized + Copy {
    /// Samples uniformly from `range` using draws from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        // 53 high-order bits give a uniform value in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + (range.end - range.start) * unit
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let span = (range.end - range.start) as u64;
                assert!(span > 0, "cannot sample from an empty range");
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u16, u32, u64, usize);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open, like rand's).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn f64_range_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.0001..1.0);
            assert!((0.0001..1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..9);
            assert!((5..9).contains(&v));
        }
    }
}
