//! Offline shim for the `serde` crate: provides the `Serialize` and
//! `Deserialize` derive macros (as no-ops) so that derive annotations
//! across the workspace keep compiling without network access. See
//! shims/README.md for the restoration plan.

pub use serde_derive::{Deserialize, Serialize};
