//! Offline shim for `serde_derive`: the `Serialize`/`Deserialize` derive
//! macros expand to nothing, and `#[serde(...)]` helper attributes are
//! accepted and ignored. This keeps `#[derive(Serialize, Deserialize)]`
//! annotations compiling without pulling in the real serde machinery;
//! actual (de)serialization is unavailable until the real dependency is
//! restored (see shims/README.md).

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
