//! Root package of the SDNFV reproduction workspace.
//!
//! This package only exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the actual system lives
//! in the crates under `crates/` and is re-exported here for convenience.

pub use sdnfv::*;
