//! Cross-layer tests: NF → NF Manager → SDNFV Application → orchestrator,
//! plus the packet-in / flow-mod path through the SDN controller.

use sdnfv::control::{AppAction, NfvOrchestrator, SdnController, SdnfvApplication};
use sdnfv::dataplane::{NfManager, PacketOutcome};
use sdnfv::flowtable::{Action, FlowMatch, IpPrefix};
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::ddos::DDOS_ALARM_KEY;
use sdnfv::nf::nfs::{DdosDetectorNf, NoOpNf, SamplerNf, ScrubberNf};
use sdnfv::nf::{NfMessage, NfRegistry};
use sdnfv::proto::packet::PacketBuilder;
use std::net::Ipv4Addr;

#[test]
fn table_miss_packet_in_flow_mod_roundtrip() {
    let (graph, svc) = catalog::anomaly_detection();
    let mut app = SdnfvApplication::new();
    app.register_graph(graph);
    let mut controller = SdnController::default();

    // A manager with no rules at all: the first packet misses.
    let mut manager = NfManager::default();
    manager.add_nf(svc.firewall, Box::new(NoOpNf::new()));
    manager.add_nf(svc.sampler, Box::new(NoOpNf::new()));
    let packet = PacketBuilder::udp()
        .src_port(1234)
        .dst_port(80)
        .ingress_port(0)
        .build();
    let key = packet.flow_key().unwrap();
    let outcome = manager.process_packet(packet.clone(), 0);
    let punted = match outcome {
        PacketOutcome::PuntedToController { packet } => packet,
        other => panic!("expected a punt, got {other:?}"),
    };

    // The controller asks the application for per-flow rules and replies
    // after its (serial) processing delay.
    let reply = controller
        .packet_in(0, 0, punted.ingress_port, &key, |host, port, key| {
            app.reactive_rules_for_flow(host, port, key)
        })
        .expect("controller accepts the request");
    assert_eq!(reply.ready_at_ns, controller.service_time_ns());
    assert!(!reply.rules.is_empty());
    for rule in reply.rules {
        manager.install_rule(rule);
    }

    // Re-injecting the packet (and more of the same flow) now flows through.
    assert!(matches!(
        manager.process_packet(packet.clone(), reply.ready_at_ns),
        PacketOutcome::Transmitted { .. }
    ));
    // A different flow still misses, because the installed rules were
    // flow-specific.
    let other = PacketBuilder::udp()
        .src_port(9999)
        .dst_port(80)
        .ingress_port(0)
        .build();
    assert!(matches!(
        manager.process_packet(other, reply.ready_at_ns + 1),
        PacketOutcome::PuntedToController { .. }
    ));
}

#[test]
fn ddos_alarm_launches_scrubber_and_requestme_reroutes_traffic() {
    let (graph, svc) = catalog::anomaly_detection();
    let mut manager = NfManager::default();
    manager.install_graph(&graph, &CompileOptions::default());
    manager.add_nf(svc.firewall, Box::new(NoOpNf::new()));
    manager.add_nf(svc.sampler, Box::new(SamplerNf::per_packet(svc.ddos, 1)));
    // Low threshold so a handful of packets triggers the alarm.
    manager.add_nf(
        svc.ddos,
        Box::new(DdosDetectorNf::new(1_000_000_000, 10_000, 16)),
    );
    manager.add_nf(svc.ids, Box::new(NoOpNf::new()));

    let mut app = SdnfvApplication::new();
    app.register_graph(graph);
    app.register_launch_trigger(DDOS_ALARM_KEY, "scrubber");
    let mut registry = NfRegistry::new();
    registry.register("scrubber", || {
        ScrubberNf::for_prefix(IpPrefix::new(Ipv4Addr::new(66, 0, 0, 0), 16))
    });
    let mut orchestrator = NfvOrchestrator::new(registry, 1_000_000);

    // Attack traffic until the detector raises its alarm.
    for i in 0..200u64 {
        let pkt = PacketBuilder::udp()
            .src_ip([66, 0, 0, 9])
            .src_port(2000 + (i % 50) as u16)
            .dst_port(53)
            .total_size(512)
            .ingress_port(0)
            .build();
        manager.process_packet(pkt, i * 1000);
    }
    let mut launched = None;
    for message in manager.take_messages() {
        for action in app.handle_manager_message(0, message.from, &message.message) {
            if let AppAction::LaunchNf { service_name, .. } = action {
                launched = orchestrator.launch(0, &service_name, 0);
            }
        }
    }
    let ticket = launched.expect("the DDoS alarm must launch a scrubber");
    assert_eq!(ticket.ready_at_ns, 1_000_000);

    // "Boot" completes: attach the scrubber; its RequestMe steals the
    // IDS's default edge so traffic now reaches it and gets dropped.
    manager.add_nf(svc.scrubber, ticket.nf);
    let before_drops = manager.stats().snapshot().dropped;
    for i in 0..50u64 {
        let pkt = PacketBuilder::udp()
            .src_ip([66, 0, 0, 9])
            .src_port(2000 + (i % 50) as u16)
            .dst_port(53)
            .total_size(512)
            .ingress_port(0)
            .build();
        manager.process_packet(pkt, 2_000_000 + i);
    }
    let after = manager.stats().snapshot();
    assert!(
        after.dropped > before_drops + 40,
        "attack traffic should be scrubbed once the scrubber is active"
    );
    assert!(manager.service_invocations(svc.scrubber) >= 40);
}

#[test]
fn application_rejects_off_graph_change_default() {
    let (graph, svc) = catalog::anomaly_detection();
    let mut app = SdnfvApplication::new();
    app.register_graph(graph);
    let actions = app.handle_manager_message(
        0,
        svc.firewall,
        &NfMessage::ChangeDefault {
            flows: FlowMatch::any(),
            service: svc.firewall,
            new_default: Action::ToService(svc.scrubber),
        },
    );
    assert_eq!(actions, vec![AppAction::Reject]);
}

#[test]
fn placement_plan_feeds_orchestrator() {
    use sdnfv::placement::{OptimalSolver, PlacementProblem};
    let (graph, _) = catalog::anomaly_detection();
    let mut app = SdnfvApplication::new();
    app.register_graph(graph);
    let problem = PlacementProblem::paper_figure5(10, 1.0, 5);
    let (placement, per_host) = app.plan_placement(&OptimalSolver::default(), &problem);
    assert!(
        placement.placed_flows() >= 8,
        "most of the 10 offered flows should be placed, got {}",
        placement.placed_flows()
    );
    // Every planned instance can actually be launched by an orchestrator
    // whose registry knows the J-services.
    let mut registry = NfRegistry::new();
    for service in &problem.services {
        registry.register(service.name.clone(), NoOpNf::new);
    }
    let mut orchestrator = NfvOrchestrator::new(registry, 0);
    let mut total = 0;
    for (host, instances) in per_host {
        for (service_id, count) in instances {
            let spec = problem
                .services
                .iter()
                .find(|s| s.id == service_id)
                .unwrap();
            for _ in 0..count {
                assert!(orchestrator.launch(host, &spec.name, 0).is_some());
                total += 1;
            }
        }
    }
    assert!(total > 0);
    assert_eq!(orchestrator.launched(), total);
}
