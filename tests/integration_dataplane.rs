//! End-to-end tests of the data plane: service graphs compiled into flow
//! tables, NFs attached, packets pushed through both engines.

use sdnfv::dataplane::{
    LoadBalancePolicy, NfManager, NfManagerConfig, PacketOutcome, ThreadedHost,
    ThreadedHostConfig,
};
use sdnfv::flowtable::{ServiceId, SharedFlowTable};
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::{ComputeNf, FirewallNf, IdsNf, NoOpNf, SamplerNf, ScrubberNf};
use sdnfv::nf::NetworkFunction;
use sdnfv::proto::packet::{Packet, PacketBuilder};
use std::time::{Duration, Instant};

fn web_packet(src_port: u16, body: &str) -> Packet {
    PacketBuilder::tcp()
        .src_ip([10, 0, 0, 50])
        .dst_ip([93, 184, 216, 34])
        .src_port(src_port)
        .dst_port(80)
        .payload(format!("GET /{body} HTTP/1.1\r\n\r\n").as_bytes())
        .ingress_port(0)
        .build()
}

#[test]
fn anomaly_detection_chain_scrubs_malicious_flows() {
    let (graph, svc) = catalog::anomaly_detection();
    let mut manager = NfManager::default();
    manager.install_graph(&graph, &CompileOptions::default());
    manager.add_nf(svc.firewall, Box::new(FirewallNf::allow_by_default()));
    // Sample everything so the IDS sees every packet.
    manager.add_nf(svc.sampler, Box::new(SamplerNf::per_packet(svc.ddos, 1)));
    manager.add_nf(svc.ddos, Box::new(NoOpNf::new()));
    manager.add_nf(svc.ids, Box::new(IdsNf::new(svc.ids, svc.scrubber)));
    manager.add_nf(
        svc.scrubber,
        Box::new(ScrubberNf::new().with_signature(b"UNION SELECT".to_vec())),
    );

    // A clean flow goes out; an attack flow is pinned to the scrubber and
    // its malicious packets are dropped there.
    assert!(matches!(
        manager.process_packet(web_packet(1000, "index.html"), 0),
        PacketOutcome::Transmitted { .. }
    ));
    assert!(matches!(
        manager.process_packet(web_packet(2000, "q?id=1 UNION SELECT secret"), 1),
        PacketOutcome::Dropped
    ));
    // The IDS emitted a ChangeDefault pinning the flow; later clean-looking
    // packets of the same flow still go through the scrubber (and pass).
    let outcome = manager.process_packet(web_packet(2000, "innocuous"), 2);
    assert!(matches!(outcome, PacketOutcome::Transmitted { .. }));
    assert!(manager.service_invocations(svc.scrubber) >= 2);
    let messages = manager.take_messages();
    assert!(messages.iter().any(|m| m.from == svc.ids));
}

#[test]
fn parallel_and_sequential_chains_agree_on_results() {
    for parallel in [false, true] {
        let (graph, ids) = catalog::chain(&[("a", true), ("b", true), ("c", true)]);
        let mut manager = NfManager::default();
        manager.install_graph(
            &graph,
            &CompileOptions {
                enable_parallel: parallel,
                ..CompileOptions::default()
            },
        );
        for id in &ids {
            manager.add_nf(*id, Box::new(ComputeNf::new(4)));
        }
        let mut transmitted = 0;
        for i in 0..200 {
            let pkt = PacketBuilder::udp()
                .src_port(1000 + i)
                .ingress_port(0)
                .total_size(512)
                .build();
            if let PacketOutcome::Transmitted { port, .. } = manager.process_packet(pkt, u64::from(i))
            {
                assert_eq!(port, 1);
                transmitted += 1;
            }
        }
        assert_eq!(transmitted, 200);
        let stats = manager.stats().snapshot();
        assert_eq!(stats.nf_invocations, 600);
        assert_eq!(stats.parallel_dispatches, if parallel { 200 } else { 0 });
    }
}

#[test]
fn flow_hash_load_balancing_keeps_flows_sticky() {
    let (graph, ids) = catalog::chain(&[("worker", true)]);
    let mut manager = NfManager::new(NfManagerConfig {
        load_balance: LoadBalancePolicy::FlowHash,
        ..NfManagerConfig::default()
    });
    manager.install_graph(&graph, &CompileOptions::default());
    manager.add_nf(ids[0], Box::new(NoOpNf::new()));
    manager.add_nf(ids[0], Box::new(NoOpNf::new()));
    manager.add_nf(ids[0], Box::new(NoOpNf::new()));
    // Many packets from a handful of flows: total invocations must add up
    // and every flow must consistently hit one instance. We can't observe
    // instance identity directly, but with flow hashing the distribution is
    // deterministic, so re-running the same traffic gives identical stats.
    let run = |manager: &mut NfManager| {
        for flow in 0..6u16 {
            for i in 0..50u64 {
                let pkt = PacketBuilder::udp()
                    .src_port(4000 + flow)
                    .ingress_port(0)
                    .build();
                manager.process_packet(pkt, i);
            }
        }
        manager.service_invocations(ids[0])
    };
    assert_eq!(run(&mut manager), 300);
}

#[test]
fn threaded_host_handles_mixed_chain_with_rewriting_nf() {
    // a (read-only) -> b (mutating): exercises both the read and write paths
    // of the threaded runtime.
    struct Rewriter;
    impl NetworkFunction for Rewriter {
        fn name(&self) -> &str {
            "rewriter"
        }
        fn read_only(&self) -> bool {
            false
        }
        fn process(&mut self, _p: &Packet, _c: &mut sdnfv::nf::NfContext) -> sdnfv::nf::Verdict {
            sdnfv::nf::Verdict::Default
        }
        fn process_mut(
            &mut self,
            packet: &mut Packet,
            _ctx: &mut sdnfv::nf::NfContext,
        ) -> sdnfv::nf::Verdict {
            packet
                .set_dst_ip(std::net::Ipv4Addr::new(1, 2, 3, 4))
                .expect("ipv4 packet");
            sdnfv::nf::Verdict::Default
        }
    }

    let (graph, ids) = catalog::chain(&[("inspect", true), ("rewrite", false)]);
    let table = SharedFlowTable::new();
    for rule in graph.compile(&CompileOptions::default()) {
        table.insert(rule);
    }
    let nfs: Vec<(ServiceId, Box<dyn NetworkFunction>)> = vec![
        (ids[0], Box::new(NoOpNf::new())),
        (ids[1], Box::new(Rewriter)),
    ];
    let host = ThreadedHost::start(table, nfs, ThreadedHostConfig::default());
    for i in 0..100u16 {
        assert!(host.inject(
            PacketBuilder::udp()
                .src_port(7000 + i)
                .ingress_port(0)
                .build()
        ));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut outputs = Vec::new();
    while outputs.len() < 100 && Instant::now() < deadline {
        if let Some(out) = host.poll_egress() {
            outputs.push(out);
        }
    }
    assert_eq!(outputs.len(), 100);
    for (port, packet) in &outputs {
        assert_eq!(*port, 1);
        assert_eq!(packet.ipv4().unwrap().dst, std::net::Ipv4Addr::new(1, 2, 3, 4));
    }
    host.shutdown();
}
