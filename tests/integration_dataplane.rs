//! End-to-end tests of the data plane: service graphs compiled into flow
//! tables, NFs attached, packets pushed through both engines.

use sdnfv::dataplane::{
    LoadBalancePolicy, NfManager, NfManagerConfig, PacketOutcome, ThreadedHost, ThreadedHostConfig,
};
use sdnfv::flowtable::{FlowMatch, ServiceId, SharedFlowTable};
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::{ComputeNf, FirewallNf, IdsNf, NoOpNf, SamplerNf, ScrubberNf};
use sdnfv::nf::{NetworkFunction, NfContext, NfMessage, Verdict};
use sdnfv::proto::packet::{Packet, PacketBuilder};
use std::time::{Duration, Instant};

fn web_packet(src_port: u16, body: &str) -> Packet {
    PacketBuilder::tcp()
        .src_ip([10, 0, 0, 50])
        .dst_ip([93, 184, 216, 34])
        .src_port(src_port)
        .dst_port(80)
        .payload(format!("GET /{body} HTTP/1.1\r\n\r\n").as_bytes())
        .ingress_port(0)
        .build()
}

#[test]
fn anomaly_detection_chain_scrubs_malicious_flows() {
    let (graph, svc) = catalog::anomaly_detection();
    let mut manager = NfManager::default();
    manager.install_graph(&graph, &CompileOptions::default());
    manager.add_nf(svc.firewall, Box::new(FirewallNf::allow_by_default()));
    // Sample everything so the IDS sees every packet.
    manager.add_nf(svc.sampler, Box::new(SamplerNf::per_packet(svc.ddos, 1)));
    manager.add_nf(svc.ddos, Box::new(NoOpNf::new()));
    manager.add_nf(svc.ids, Box::new(IdsNf::new(svc.ids, svc.scrubber)));
    manager.add_nf(
        svc.scrubber,
        Box::new(ScrubberNf::new().with_signature(b"UNION SELECT".to_vec())),
    );

    // A clean flow goes out; an attack flow is pinned to the scrubber and
    // its malicious packets are dropped there.
    assert!(matches!(
        manager.process_packet(web_packet(1000, "index.html"), 0),
        PacketOutcome::Transmitted { .. }
    ));
    assert!(matches!(
        manager.process_packet(web_packet(2000, "q?id=1 UNION SELECT secret"), 1),
        PacketOutcome::Dropped
    ));
    // The IDS emitted a ChangeDefault pinning the flow; later clean-looking
    // packets of the same flow still go through the scrubber (and pass).
    let outcome = manager.process_packet(web_packet(2000, "innocuous"), 2);
    assert!(matches!(outcome, PacketOutcome::Transmitted { .. }));
    assert!(manager.service_invocations(svc.scrubber) >= 2);
    let messages = manager.take_messages();
    assert!(messages.iter().any(|m| m.from == svc.ids));
}

#[test]
fn parallel_and_sequential_chains_agree_on_results() {
    for parallel in [false, true] {
        let (graph, ids) = catalog::chain(&[("a", true), ("b", true), ("c", true)]);
        let mut manager = NfManager::default();
        manager.install_graph(
            &graph,
            &CompileOptions {
                enable_parallel: parallel,
                ..CompileOptions::default()
            },
        );
        for id in &ids {
            manager.add_nf(*id, Box::new(ComputeNf::new(4)));
        }
        let mut transmitted = 0;
        for i in 0..200 {
            let pkt = PacketBuilder::udp()
                .src_port(1000 + i)
                .ingress_port(0)
                .total_size(512)
                .build();
            if let PacketOutcome::Transmitted { port, .. } =
                manager.process_packet(pkt, u64::from(i))
            {
                assert_eq!(port, 1);
                transmitted += 1;
            }
        }
        assert_eq!(transmitted, 200);
        let stats = manager.stats().snapshot();
        assert_eq!(stats.nf_invocations, 600);
        assert_eq!(stats.parallel_dispatches, if parallel { 200 } else { 0 });
    }
}

#[test]
fn flow_hash_load_balancing_keeps_flows_sticky() {
    let (graph, ids) = catalog::chain(&[("worker", true)]);
    let mut manager = NfManager::new(NfManagerConfig {
        load_balance: LoadBalancePolicy::FlowHash,
        ..NfManagerConfig::default()
    });
    manager.install_graph(&graph, &CompileOptions::default());
    manager.add_nf(ids[0], Box::new(NoOpNf::new()));
    manager.add_nf(ids[0], Box::new(NoOpNf::new()));
    manager.add_nf(ids[0], Box::new(NoOpNf::new()));
    // Many packets from a handful of flows: total invocations must add up
    // and every flow must consistently hit one instance. We can't observe
    // instance identity directly, but with flow hashing the distribution is
    // deterministic, so re-running the same traffic gives identical stats.
    let run = |manager: &mut NfManager| {
        for flow in 0..6u16 {
            for i in 0..50u64 {
                let pkt = PacketBuilder::udp()
                    .src_port(4000 + flow)
                    .ingress_port(0)
                    .build();
                manager.process_packet(pkt, i);
            }
        }
        manager.service_invocations(ids[0])
    };
    assert_eq!(run(&mut manager), 300);
}

/// An NF that emits one cross-layer message from *inside* a batch (via the
/// per-packet adapter) the first time it sees the trigger src port.
struct Announcer {
    trigger_port: u16,
    message: Option<NfMessage>,
}

impl NetworkFunction for Announcer {
    fn name(&self) -> &str {
        "announcer"
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        let is_trigger = packet
            .flow_key()
            .map(|k| k.src_port == self.trigger_port)
            .unwrap_or(false);
        if is_trigger {
            if let Some(message) = self.message.take() {
                ctx.send(message);
            }
        }
        Verdict::Default
    }
}

#[test]
fn skip_me_sent_mid_batch_applies_before_next_bursts_lookups() {
    // Chain a -> b -> port 1. Service a announces SkipMe from inside the
    // first burst; the second burst's ingress lookups must already bypass a.
    let (graph, ids) = catalog::chain(&[("a", true), ("b", true)]);
    let mut manager = NfManager::default();
    manager.install_graph(&graph, &CompileOptions::default());
    manager.add_nf(
        ids[0],
        Box::new(Announcer {
            trigger_port: 1002,
            message: Some(NfMessage::SkipMe {
                flows: FlowMatch::any(),
            }),
        }),
    );
    manager.add_nf(ids[1], Box::new(NoOpNf::new()));

    let burst = |base: u16| -> Vec<Packet> {
        (0..6)
            .map(|i| {
                PacketBuilder::udp()
                    .src_port(base + i)
                    .ingress_port(0)
                    .build()
            })
            .collect()
    };

    // First burst: every packet still traverses a (the trigger fires on the
    // third packet of the batch, but the burst's ingress lookups happened
    // before the batch ran).
    let outcomes = manager.process_burst(burst(1000), 0);
    assert!(outcomes
        .iter()
        .all(|o| matches!(o, PacketOutcome::Transmitted { port: 1, .. })));
    assert_eq!(manager.service_invocations(ids[0]), 6);
    assert_eq!(manager.service_invocations(ids[1]), 6);

    // Second burst: the SkipMe is visible to the ingress lookups, so a is
    // bypassed entirely and traffic flows straight to b.
    let outcomes = manager.process_burst(burst(2000), 1);
    assert!(outcomes
        .iter()
        .all(|o| matches!(o, PacketOutcome::Transmitted { port: 1, .. })));
    assert_eq!(manager.service_invocations(ids[0]), 6, "a must be skipped");
    assert_eq!(manager.service_invocations(ids[1]), 12);

    // The message was also queued for the control plane, attributed to a.
    let messages = manager.take_messages();
    assert!(messages
        .iter()
        .any(|m| m.from == ids[0] && matches!(m.message, NfMessage::SkipMe { .. })));
}

#[test]
fn change_default_sent_mid_batch_pins_the_flow_for_later_bursts() {
    // Anomaly-detection graph: the sampler pins one "suspicious" flow to the
    // DDoS detector with a per-flow ChangeDefault sent from inside a batch.
    let (graph, svc) = catalog::anomaly_detection();
    let mut manager = NfManager::default();
    manager.install_graph(&graph, &CompileOptions::default());

    let attack = || {
        PacketBuilder::udp()
            .src_ip([10, 0, 0, 66])
            .dst_ip([10, 0, 0, 2])
            .src_port(4444)
            .dst_port(80)
            .ingress_port(0)
            .build()
    };
    let clean = |port: u16| {
        PacketBuilder::udp()
            .src_ip([10, 0, 0, 1])
            .dst_ip([10, 0, 0, 2])
            .src_port(port)
            .dst_port(80)
            .ingress_port(0)
            .build()
    };
    let attack_key = attack().flow_key().expect("ipv4 packet");
    let pin = NfMessage::ChangeDefault {
        flows: FlowMatch::exact(svc.sampler, &attack_key),
        service: svc.sampler,
        new_default: sdnfv::flowtable::Action::ToService(svc.ddos),
    };

    manager.add_nf(svc.firewall, Box::new(NoOpNf::new()));
    manager.add_nf(
        svc.sampler,
        Box::new(Announcer {
            trigger_port: 4444,
            message: Some(pin),
        }),
    );
    manager.add_nf(svc.ddos, Box::new(NoOpNf::new()));
    manager.add_nf(svc.ids, Box::new(NoOpNf::new()));
    manager.add_nf(svc.scrubber, Box::new(NoOpNf::new()));

    // Burst 1: clean, attack, clean. The pin is emitted inside the sampler's
    // batch; the attack packet's own next lookup already honours it.
    let outcomes = manager.process_burst(vec![clean(100), attack(), clean(101)], 0);
    assert!(outcomes
        .iter()
        .all(|o| matches!(o, PacketOutcome::Transmitted { .. })));
    let after_first = manager.service_invocations(svc.ddos);
    assert_eq!(after_first, 1, "only the attack flow visits the detector");

    // Burst 2: the pinned flow keeps going through the detector, clean flows
    // keep bypassing it — the rule survived the burst boundary (including
    // the lookup cache, whose generation the mid-batch message bumped).
    let outcomes = manager.process_burst(vec![attack(), clean(102), attack()], 1);
    assert!(outcomes
        .iter()
        .all(|o| matches!(o, PacketOutcome::Transmitted { .. })));
    assert_eq!(manager.service_invocations(svc.ddos), after_first + 2);
}

#[test]
fn threaded_host_handles_mixed_chain_with_rewriting_nf() {
    // a (read-only) -> b (mutating): exercises both the read and write paths
    // of the threaded runtime.
    struct Rewriter;
    impl NetworkFunction for Rewriter {
        fn name(&self) -> &str {
            "rewriter"
        }
        fn read_only(&self) -> bool {
            false
        }
        fn process(&mut self, _p: &Packet, _c: &mut sdnfv::nf::NfContext) -> sdnfv::nf::Verdict {
            sdnfv::nf::Verdict::Default
        }
        fn process_mut(
            &mut self,
            packet: &mut Packet,
            _ctx: &mut sdnfv::nf::NfContext,
        ) -> sdnfv::nf::Verdict {
            packet
                .set_dst_ip(std::net::Ipv4Addr::new(1, 2, 3, 4))
                .expect("ipv4 packet");
            sdnfv::nf::Verdict::Default
        }
    }

    let (graph, ids) = catalog::chain(&[("inspect", true), ("rewrite", false)]);
    let table = SharedFlowTable::new();
    for rule in graph.compile(&CompileOptions::default()) {
        table.insert(rule);
    }
    let nfs: Vec<(ServiceId, Box<dyn NetworkFunction>)> = vec![
        (ids[0], Box::new(NoOpNf::new())),
        (ids[1], Box::new(Rewriter)),
    ];
    let host = ThreadedHost::start(table, nfs, ThreadedHostConfig::default());
    for i in 0..100u16 {
        assert!(host
            .inject(
                PacketBuilder::udp()
                    .src_port(7000 + i)
                    .ingress_port(0)
                    .build()
            )
            .is_admitted());
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut outputs = Vec::new();
    while outputs.len() < 100 && Instant::now() < deadline {
        if let Some(out) = host.poll_egress() {
            outputs.push(out);
        }
    }
    assert_eq!(outputs.len(), 100);
    for out in &outputs {
        assert_eq!(out.port, 1);
        assert_eq!(
            out.packet.ipv4().unwrap().dst,
            std::net::Ipv4Addr::new(1, 2, 3, 4)
        );
    }
    host.shutdown();
}
