//! End-to-end tests of the telemetry bus, the elastic control loop
//! (paper §3.5) and the per-shard flow-table partitions.

use sdnfv::control::{
    deploy_sharded, ElasticNfManager, ElasticPolicy, NfvOrchestrator, ShardPlacement,
};
use sdnfv::dataplane::{
    shard_for_flow, InjectResult, OverflowPolicy, ThreadedHost, ThreadedHostConfig,
};
use sdnfv::flowtable::{Action, FlowMatch, FlowRule, RulePort, ServiceId, SharedFlowTable};
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::ComputeNf;
use sdnfv::nf::{NetworkFunction, NfRegistry};
use sdnfv::proto::packet::{Packet, PacketBuilder};
use sdnfv::telemetry::ControlAction;
use std::time::{Duration, Instant};

const WORKER_ROUNDS: u32 = 2000;

fn packet(flow: u16) -> Packet {
    PacketBuilder::udp()
        .src_ip([10, 0, 0, 1])
        .dst_ip([10, 0, 0, 2])
        .src_port(1024 + (flow % 4096))
        .dst_port(80)
        .ingress_port(0)
        .total_size(256)
        .build()
}

fn worker_table() -> (SharedFlowTable, ServiceId) {
    let (graph, ids) = catalog::chain(&[("worker", true)]);
    let table = SharedFlowTable::new();
    for rule in graph.compile(&CompileOptions::default()) {
        table.insert(rule);
    }
    (table, ids[0])
}

fn worker_registry() -> NfRegistry {
    let mut registry = NfRegistry::new();
    registry.register("worker", || ComputeNf::new(WORKER_ROUNDS));
    registry
}

fn drain(host: &ThreadedHost, expected: usize, deadline: Duration) -> usize {
    let until = Instant::now() + deadline;
    let mut received = 0;
    while received < expected && Instant::now() < until {
        let got = host.poll_egress_burst(64).len();
        if got == 0 {
            std::thread::yield_now();
        }
        received += got;
    }
    received
}

/// The acceptance loop: a flooded shard's telemetry shows queue growth, the
/// elastic manager emits a scale-up, a second replica is launched through
/// the orchestrator and absorbs the backlog, and a scale-down follows once
/// the load subsides — with zero packet loss end to end.
#[test]
fn flood_scales_up_then_quiet_scales_down() {
    let (table, worker) = worker_table();
    let mut orchestrator = NfvOrchestrator::new(worker_registry(), 1_000_000); // 1 ms boot
    let placement = ShardPlacement::uniform(&[(worker, "worker")], 1, 1);
    let host = deploy_sharded(
        &mut orchestrator,
        &placement,
        table,
        ThreadedHostConfig {
            nf_ring_capacity: 64,
            shard_credits: 64,
            burst_size: 16,
            telemetry_interval_ns: 200_000,
            overflow_policy: OverflowPolicy::Backpressure,
            ..ThreadedHostConfig::default()
        },
    )
    .expect("worker is registered");

    let mut manager = ElasticNfManager::new(
        orchestrator,
        ElasticPolicy {
            scale_up_fill: 0.5,
            scale_down_fill: 0.05,
            max_replicas: 2,
            min_replicas: 1,
            cooldown_ns: 5_000_000,
            ..ElasticPolicy::default()
        },
    );
    manager
        .register_service(worker, "worker")
        .expect("worker is in the registry");

    // Phase 1 — flood: inject far faster than one replica can serve, drive
    // the control loop, and watch it add the second replica.
    let mut admitted = 0u64;
    let mut drained = 0u64;
    let mut peak_fill = 0.0f64;
    let mut flow = 0u16;
    let deadline = Instant::now() + Duration::from_secs(30);
    let scaled = loop {
        let burst: Vec<Packet> = (0..32)
            .map(|_| {
                flow = flow.wrapping_add(1);
                packet(flow)
            })
            .collect();
        let outcome = host.inject_burst(burst);
        admitted += outcome.admitted as u64;
        assert_eq!(outcome.dropped, 0, "backpressure must never drop");
        drained += host.poll_egress_burst(64).len() as u64;
        manager.drive(&host);
        if let Some(snapshot) = manager.hub().latest(0) {
            peak_fill = peak_fill.max(snapshot.worst_fill(worker).unwrap_or(0.0));
            if snapshot.replicas(worker) == 2 {
                break true;
            }
        }
        if Instant::now() > deadline {
            break false;
        }
    };
    assert!(scaled, "the second replica never became visible");
    assert!(
        peak_fill >= 0.5,
        "telemetry should have shown queue growth (peak fill {peak_fill})"
    );
    assert!(manager.scale_ups() >= 1, "a scale-up was emitted");
    assert_eq!(manager.pending_launches(), 0, "the launch ticket matured");

    // Phase 2 — the pool absorbs the backlog: both replicas process while
    // we only drain.
    drained += drain(
        &host,
        (admitted - drained) as usize,
        Duration::from_secs(30),
    ) as u64;
    assert_eq!(drained, admitted, "every admitted packet came back out");

    // Phase 3 — quiet: keep driving without injecting until the manager
    // retires the extra replica.
    let deadline = Instant::now() + Duration::from_secs(30);
    let calmed = loop {
        manager.drive(&host);
        if let Some(snapshot) = manager.hub().latest(0) {
            if snapshot.replicas(worker) == 1 && snapshot.nfs.len() == 1 {
                break true;
            }
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::yield_now();
    };
    assert!(calmed, "the extra replica was never retired");
    assert!(manager.scale_downs() >= 1, "a scale-down was emitted");

    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0, "no silent drops anywhere");
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.transmitted, admitted);
    // All credits are home again.
    let deadline = Instant::now() + Duration::from_secs(5);
    while host.available_credits(0) != host.credit_budget(0) && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(host.available_credits(0), host.credit_budget(0));
    host.shutdown();
}

/// Sustained pressure never overshoots `max_replicas`, even in the window
/// where a just-installed replica is not yet visible in telemetry.
#[test]
fn scale_up_never_overshoots_max_replicas() {
    let (table, worker) = worker_table();
    let mut orchestrator = NfvOrchestrator::new(worker_registry(), 0); // instant boot
    let placement = ShardPlacement::uniform(&[(worker, "worker")], 1, 1);
    let host = deploy_sharded(
        &mut orchestrator,
        &placement,
        table,
        ThreadedHostConfig {
            nf_ring_capacity: 64,
            shard_credits: 64,
            burst_size: 16,
            telemetry_interval_ns: 200_000,
            ..ThreadedHostConfig::default()
        },
    )
    .expect("worker is registered");
    let mut manager = ElasticNfManager::new(
        orchestrator,
        ElasticPolicy {
            scale_up_fill: 0.5,
            max_replicas: 2,
            cooldown_ns: 2_000_000, // comfortably above the telemetry interval
            ..ElasticPolicy::default()
        },
    );
    manager
        .register_service(worker, "worker")
        .expect("worker is in the registry");

    let mut drained = 0u64;
    let mut admitted = 0u64;
    let mut flow = 0u16;
    let mut max_seen = 0usize;
    let until = Instant::now() + Duration::from_millis(1500);
    while Instant::now() < until {
        let burst: Vec<Packet> = (0..32)
            .map(|_| {
                flow = flow.wrapping_add(1);
                packet(flow)
            })
            .collect();
        admitted += host.inject_burst(burst).admitted as u64;
        drained += host.poll_egress_burst(64).len() as u64;
        manager.drive(&host);
        if let Some(snapshot) = manager.hub().latest(0) {
            max_seen = max_seen.max(snapshot.replicas(worker));
        }
    }
    assert!(max_seen >= 2, "pressure reached the replica cap");
    assert!(max_seen <= 2, "never overshot max_replicas: saw {max_seen}");
    // The load may legitimately oscillate (scale-down in a quiet window,
    // scale-up when the flood bites again); the invariant is that ups and
    // downs stay in lockstep rather than ups running ahead.
    assert!(
        manager.scale_ups() <= manager.scale_downs() + 1,
        "scale-ups ({}) ran ahead of scale-downs ({}) at cap 2",
        manager.scale_ups(),
        manager.scale_downs()
    );
    drained += drain(
        &host,
        (admitted - drained) as usize,
        Duration::from_secs(30),
    ) as u64;
    assert_eq!(drained, admitted);
    host.shutdown();
}

/// Mid-traffic control actions: a busy replica is retired and the credit
/// budget resized while packets are in flight — no loss, no deadlock.
#[test]
fn control_actions_apply_mid_traffic_without_loss() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start(
        table,
        vec![
            (
                worker,
                Box::new(ComputeNf::new(500)) as Box<dyn NetworkFunction>,
            ),
            (
                worker,
                Box::new(ComputeNf::new(500)) as Box<dyn NetworkFunction>,
            ),
        ],
        ThreadedHostConfig {
            nf_ring_capacity: 128,
            shard_credits: 64,
            telemetry_interval_ns: 200_000,
            ..ThreadedHostConfig::default()
        },
    );

    let apply = |action: &ControlAction| -> bool {
        match action {
            ControlAction::ScaleDown { shard, service } => host.remove_nf_replica(*shard, *service),
            ControlAction::ResizeCredits { shard, credits } => {
                host.resize_credits(*shard, *credits)
            }
            ControlAction::SetSteeringWeights { weights } => host.set_steering_weights(weights),
            ControlAction::SetTraceSampling { every } => {
                host.set_trace_sampling(*every);
                true
            }
            ControlAction::ScaleUp { .. }
            | ControlAction::SpawnShard
            | ControlAction::RetireShard { .. } => false,
        }
    };

    let mut admitted = 0u64;
    let mut drained = 0u64;
    let mut flow = 0u16;
    for round in 0..300 {
        let burst: Vec<Packet> = (0..16)
            .map(|_| {
                flow = flow.wrapping_add(1);
                packet(flow)
            })
            .collect();
        let outcome = host.inject_burst(burst);
        admitted += outcome.admitted as u64;
        assert_eq!(outcome.dropped, 0);
        drained += host.poll_egress_burst(64).len() as u64;
        match round {
            // Retire one of the two busy replicas mid-flood.
            100 => assert!(apply(&ControlAction::ScaleDown {
                shard: 0,
                service: worker
            })),
            // Shrink, then later re-grow, the credit budget mid-flood.
            150 => assert!(apply(&ControlAction::ResizeCredits {
                shard: 0,
                credits: 32
            })),
            250 => assert!(apply(&ControlAction::ResizeCredits {
                shard: 0,
                credits: 64
            })),
            _ => {}
        }
    }
    drained += drain(
        &host,
        (admitted - drained) as usize,
        Duration::from_secs(30),
    ) as u64;
    assert_eq!(drained, admitted, "scale-down/resize lost no packet");

    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0);
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.transmitted, admitted);
    assert_eq!(host.credit_budget(0), Some(64), "resize took effect");

    // The retired replica's thread is gone: telemetry reports one live NF.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut live = usize::MAX;
    while Instant::now() < deadline {
        for snapshot in host.poll_telemetry() {
            live = snapshot.nfs.len();
        }
        if live == 1 {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(live, 1, "the drained replica was retired from telemetry");
    host.shutdown();
}

/// Credits spent on packets that punt to the controller (flow-table miss)
/// are replenished: punts are terminal states, not leaks.
#[test]
fn punt_path_replenishes_credits() {
    let host = ThreadedHost::start(
        SharedFlowTable::new(), // empty table: every packet punts
        vec![],
        ThreadedHostConfig {
            shard_credits: 8,
            ingress_capacity: 8,
            nf_ring_capacity: 8,
            ..ThreadedHostConfig::default()
        },
    );
    assert_eq!(host.credit_budget(0), Some(8));
    let mut admitted = 0u64;
    for flow in 0..100u16 {
        match host.inject(packet(flow)) {
            InjectResult::Admitted => admitted += 1,
            InjectResult::Throttled(_) => {}
            InjectResult::Dropped => panic!("backpressure must not drop"),
        }
    }
    assert!(admitted > 0);
    // Every admitted packet punts; every punt returns its credit.
    let deadline = Instant::now() + Duration::from_secs(5);
    while host.stats().snapshot().controller_punts < admitted && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(host.stats().snapshot().controller_punts, admitted);
    let deadline = Instant::now() + Duration::from_secs(5);
    while host.available_credits(0) != Some(8) && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(host.available_credits(0), Some(8), "punts released credits");
    // And the lane is genuinely open again.
    assert!(host.inject(packet(999)).is_admitted());
    host.shutdown();
}

/// Per-shard flow-table partitions: shard packet paths never touch the
/// template's lock, and one shard's table mutations are invisible to the
/// others.
#[test]
fn flow_table_partitions_isolate_shards() {
    let template = SharedFlowTable::new();
    template.insert(FlowRule::new(
        FlowMatch::at_step(RulePort::Nic(0)),
        vec![Action::ToPort(1)],
    ));
    let host = ThreadedHost::start_sharded(
        template.clone(),
        |_shard| vec![],
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );

    // Find one flow per shard under default steering.
    let flow_on = |shard: usize| {
        (0..u16::MAX)
            .find(|f| {
                packet(*f)
                    .flow_key()
                    .is_some_and(|k| shard_for_flow(&k, 2) == shard)
            })
            .expect("some flow steers to the shard")
    };
    let flow0 = flow_on(0);
    let flow1 = flow_on(1);

    // Traffic flows through the partitions, not the template.
    for _ in 0..25 {
        assert!(host.inject(packet(flow0)).is_admitted());
        assert!(host.inject(packet(flow1)).is_admitted());
    }
    assert_eq!(drain(&host, 50, Duration::from_secs(10)), 50);
    assert_eq!(
        host.flow_table().stats().lookups,
        0,
        "no shard lookup touched the template's lock"
    );
    assert!(host.shard_table(0).stats().lookups > 0);
    assert!(host.shard_table(1).stats().lookups > 0);

    // A shard-local mutation (the NF cross-layer message path) stays local:
    // shard 0 starts dropping, shard 1 keeps forwarding.
    let generation1 = host.shard_table(1).generation();
    host.shard_table(0).with_write(|t| {
        t.insert(
            FlowRule::new(FlowMatch::at_step(RulePort::Nic(0)), vec![Action::Drop])
                .with_priority(100),
        );
    });
    assert_eq!(
        host.shard_table(1).generation(),
        generation1,
        "no cross-shard generation bump"
    );
    assert!(host.inject(packet(flow0)).is_admitted());
    assert!(host.inject(packet(flow1)).is_admitted());
    assert_eq!(
        drain(&host, 1, Duration::from_secs(10)),
        1,
        "shard 1 still forwards"
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while host.stats().snapshot().dropped < 1 && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(host.stats().snapshot().dropped, 1, "shard 0 now drops");
    assert_eq!(template.len(), 1, "template untouched by shard mutations");

    // The control-plane write path reaches every partition.
    host.install_rule(FlowRule::new(
        FlowMatch::at_step(RulePort::Nic(7)),
        vec![Action::ToPort(2)],
    ));
    assert_eq!(template.len(), 2);
    assert_eq!(host.shard_table(0).len(), 3); // + the local drop rule
    assert_eq!(host.shard_table(1).len(), 2);
    host.shutdown();
}

/// Steering weights re-home new buckets: all-to-one weights funnel every
/// flow to shard 0, and restoring uniform weights spreads them again.
#[test]
fn steering_weights_rebalance_traffic() {
    let table = SharedFlowTable::new();
    table.insert(FlowRule::new(
        FlowMatch::at_step(RulePort::Nic(0)),
        vec![Action::ToPort(1)],
    ));
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| vec![],
        ThreadedHostConfig {
            num_shards: 4,
            ..ThreadedHostConfig::default()
        },
    );
    // The re-home handshake completes over a few polling ticks (even idle
    // buckets collect NF state from their old shard's worker first).
    let settle = |host: &ThreadedHost| {
        let deadline = Instant::now() + Duration::from_secs(10);
        while host.pending_rehomes() > 0 && Instant::now() < deadline {
            let _ = host.poll_egress();
            std::thread::yield_now();
        }
        assert_eq!(host.pending_rehomes(), 0, "rebalance settles");
    };
    assert!(host.set_steering_weights(&[1, 0, 0, 0]));
    settle(&host);
    assert!(host.steering_table().iter().all(|shard| *shard == 0));
    for flow in 0..200u16 {
        assert!(host.inject(packet(flow)).is_admitted());
    }
    assert_eq!(drain(&host, 200, Duration::from_secs(10)), 200);
    let received: Vec<u64> = host
        .stats()
        .shard_snapshots()
        .iter()
        .map(|s| s.received)
        .collect();
    assert_eq!(received[0], 200, "all flows funneled to shard 0");

    // Restore uniform weights: new traffic spreads again.
    assert!(host.set_steering_weights(&[1, 1, 1, 1]));
    settle(&host);
    for flow in 0..200u16 {
        assert!(host.inject(packet(flow)).is_admitted());
    }
    assert_eq!(drain(&host, 200, Duration::from_secs(10)), 200);
    let after: Vec<u64> = host
        .stats()
        .shard_snapshots()
        .iter()
        .map(|s| s.received)
        .collect();
    assert!(
        (1..4).all(|shard| after[shard] > 0),
        "uniform weights spread traffic again: {after:?}"
    );
    // Zero-sum and mismatched weight vectors are rejected.
    assert!(!host.set_steering_weights(&[0, 0, 0, 0]));
    assert!(!host.set_steering_weights(&[1, 1]));
    host.shutdown();
}
