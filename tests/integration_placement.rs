//! Placement engine integration: the paper's Figure 5 configuration solved
//! by all three algorithms, validated against the MILP constraints, and the
//! qualitative ordering of the algorithms.

use sdnfv::placement::{
    DivisionSolver, GreedySolver, OptimalSolver, PlacementProblem, PlacementSolver,
};

#[test]
fn all_solvers_satisfy_constraints_on_the_paper_topology() {
    let problem = PlacementProblem::paper_figure5(25, 1.0, 16631);
    for solver in [
        Box::new(GreedySolver) as Box<dyn PlacementSolver>,
        Box::new(OptimalSolver::default()),
        Box::new(DivisionSolver::default()),
    ] {
        let placement = solver.solve(&problem);
        placement
            .validate(&problem)
            .unwrap_or_else(|e| panic!("{} violated constraints: {e:?}", solver.name()));
        let report = placement.utilization(&problem);
        // Core capacity is never exceeded, so per-core utilization is <= 1.
        assert!(report.max_core_utilization <= 1.0 + 1e-9);
        assert!(report.placed_flows > 0);
    }
}

#[test]
fn optimal_objective_beats_greedy_when_both_place_everything() {
    let problem = PlacementProblem::paper_figure5(15, 1.0, 16631);
    let greedy = GreedySolver.solve(&problem);
    let optimal = OptimalSolver::default().solve(&problem);
    if greedy.placed_flows() == problem.flows.len() && optimal.placed_flows() == problem.flows.len()
    {
        let gr = greedy.utilization(&problem);
        let or = optimal.utilization(&problem);
        assert!(
            or.max_utilization <= gr.max_utilization + 1e-9,
            "optimal U={} should not exceed greedy U={}",
            or.max_utilization,
            gr.max_utilization
        );
    }
}

#[test]
fn division_heuristic_is_never_worse_than_greedy_and_scales_with_capacity() {
    // The paper reports the division heuristic fits ~85% of the flows the
    // fully-optimal solution accommodates. Our division implementation never
    // revisits committed sub-problems, so at the tightest capacity it tracks
    // the greedy baseline rather than the optimal solver (see EXPERIMENTS.md);
    // what must hold is that it is never worse than greedy and that it
    // overtakes greedy once capacity is scaled up (the right-hand side of
    // Figure 5).
    let count_supported = |solver: &dyn PlacementSolver, scale: f64| {
        let mut supported = 0;
        for flows in (5..=120).step_by(5) {
            let problem = PlacementProblem::paper_figure5(flows, scale, 16631);
            if solver.solve(&problem).placed_flows() == flows {
                supported = flows;
            } else {
                break;
            }
        }
        supported
    };
    let greedy_1x = count_supported(&GreedySolver, 1.0);
    let division_1x = count_supported(&DivisionSolver::default(), 1.0);
    assert!(
        division_1x >= greedy_1x,
        "division {division_1x} < greedy {greedy_1x} at 1x"
    );
    let greedy_2x = count_supported(&GreedySolver, 2.0);
    let division_2x = count_supported(&DivisionSolver::default(), 2.0);
    assert!(
        division_2x > greedy_2x,
        "division {division_2x} should beat greedy {greedy_2x} at 2x capacity"
    );
}

#[test]
fn extra_capacity_increases_supported_flows() {
    let solver = DivisionSolver::default();
    let base = PlacementProblem::paper_figure5(60, 1.0, 16631);
    let scaled = PlacementProblem::paper_figure5(60, 4.0, 16631);
    let placed_base = solver.solve(&base).placed_flows();
    let placed_scaled = solver.solve(&scaled).placed_flows();
    assert!(
        placed_scaled >= placed_base,
        "4x capacity should not place fewer flows ({placed_scaled} vs {placed_base})"
    );
    assert_eq!(
        placed_scaled, 60,
        "with 4x capacity all 60 flows should fit"
    );
}
