//! Smoke tests for every evaluation scenario: each figure's driver runs end
//! to end (on reduced parameters where the full run is long) and reproduces
//! the paper's qualitative outcome.

use sdnfv::sim::{ant, ddos, flow_churn, memcached, ovs, video};

#[test]
fn figure1_controller_share_collapses_throughput() {
    let curves = ovs::figure1();
    assert_eq!(curves.len(), 2);
    for curve in &curves {
        let at_zero = curve.points[0].1;
        let at_25 = curve.points.last().unwrap().1;
        assert!(
            at_25 < at_zero / 5.0,
            "{}: {at_zero} -> {at_25} should collapse",
            curve.label
        );
    }
}

#[test]
fn figure5_optimal_supports_more_flows_than_greedy() {
    use sdnfv::placement::{GreedySolver, OptimalSolver, PlacementProblem, PlacementSolver};
    // Find the largest flow count (in steps of 5) each algorithm fully
    // accommodates on the paper topology.
    let supported = |solver: &dyn PlacementSolver| {
        let mut supported = 0;
        for flows in (5..=80).step_by(5) {
            let problem = PlacementProblem::paper_figure5(flows, 1.0, 16631);
            if solver.solve(&problem).placed_flows() == flows {
                supported = flows;
            } else {
                break;
            }
        }
        supported
    };
    let greedy = supported(&GreedySolver);
    let optimal = supported(&OptimalSolver::default());
    assert!(
        optimal > greedy,
        "the optimal solver ({optimal} flows) must accommodate more than greedy ({greedy} flows)"
    );
}

#[test]
fn figure8_ant_flow_gets_fast_path() {
    let result = ant::AntExperiment {
        duration_secs: 60.0,
        ant_phase_start_secs: 20.0,
        ant_phase_end_secs: 45.0,
        ..ant::AntExperiment::default()
    }
    .run();
    let elephant_phase = result.flow1_latency.mean_between(5.0, 18.0).unwrap();
    let ant_phase = result.flow1_latency.mean_between(25.0, 43.0).unwrap();
    assert!(ant_phase < elephant_phase);
    assert!(!result.reroute_times.is_empty());
}

#[test]
fn figure9_scrubber_restores_outgoing_traffic() {
    // A faster ramp and shorter boot keep the test quick while preserving
    // the causal chain: detect → boot → scrub.
    let result = ddos::DdosExperiment {
        duration_secs: 60.0,
        attack_start_secs: 10.0,
        attack_ramp_gbps_per_sec: 0.2,
        vm_boot_ns: 3_000_000_000,
        ..ddos::DdosExperiment::default()
    }
    .run();
    let detected = result.detection_secs.expect("attack detected");
    let active = result.scrubber_active_secs.expect("scrubber active");
    assert!(active > detected);
    assert!((active - detected - 3.0).abs() < 1.5);
    let late_out = result.outgoing.mean_between(active + 5.0, 60.0).unwrap();
    let late_in = result.incoming.mean_between(active + 5.0, 60.0).unwrap();
    assert!(late_out < late_in / 2.0);
}

#[test]
fn figure10_sdnfv_outscales_sdn() {
    let result = flow_churn::figure10();
    assert!(result.sdnfv.max_y().unwrap() > result.sdn.max_y().unwrap() * 5.0);
}

#[test]
fn figure11_sdnfv_reacts_faster_than_sdn() {
    let result = video::VideoExperiment {
        duration_secs: 120.0,
        throttle_start_secs: 30.0,
        throttle_end_secs: 90.0,
        concurrent_flows: 30,
        packets_per_flow_per_sec: 3.0,
        ..video::VideoExperiment::default()
    }
    .run();
    let before = result.sdnfv.mean_between(10.0, 28.0).unwrap();
    let sdnfv_after = result.sdnfv.mean_between(32.0, 45.0).unwrap();
    let sdn_after = result.sdn.mean_between(32.0, 45.0).unwrap();
    assert!(sdnfv_after < before * 0.75, "SDNFV throttles promptly");
    assert!(sdn_after > sdnfv_after, "SDN lags behind SDNFV");
}

#[test]
fn figure12_sdnfv_proxy_outperforms_twemproxy_by_orders_of_magnitude() {
    let result = memcached::figure12();
    assert!(result.sdnfv_capacity_rps / result.twemproxy_capacity_rps > 50.0);
    // And the real NF implementation is indeed in the right ballpark.
    let measured = memcached::measure_proxy_ns_per_request(20_000);
    assert!(
        measured < 20_000.0,
        "proxy should cost well under 20µs/request"
    );
}
