//! End-to-end tests of dynamic shard scale-out/in and the state-safe
//! bucket re-home handshake (quiesce → drain → export rules → flip).
//!
//! Includes the two regression tests this PR's bugfixes demand:
//! * a steering rebalance must carry shard-local exact-flow rules along
//!   with the moved buckets (previously they were silently stranded on the
//!   old shard);
//! * a retired NF replica's rings must be reclaimed when the host scales
//!   down and stays down (previously they were kept until a later reuse).

use sdnfv::control::{
    deploy_sharded, ElasticNfManager, ElasticPolicy, NfvOrchestrator, ShardPlacement, ShardPolicy,
};
use sdnfv::dataplane::{shard_for_flow, OverflowPolicy, ThreadedHost, ThreadedHostConfig};
use sdnfv::flowtable::{Action, FlowMatch, FlowRule, RulePort, ServiceId, SharedFlowTable};
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::{ComputeNf, NoOpNf};
use sdnfv::nf::{NetworkFunction, NfRegistry};
use sdnfv::proto::packet::{Packet, PacketBuilder};
use sdnfv::telemetry::ShardLifecycleEvent;
use std::time::{Duration, Instant};

fn packet(flow: u16) -> Packet {
    PacketBuilder::udp()
        .src_ip([10, 0, 0, 1])
        .dst_ip([10, 0, 0, 2])
        .src_port(1024 + (flow % 4096))
        .dst_port(80)
        .ingress_port(0)
        .total_size(256)
        .build()
}

fn forward_table() -> SharedFlowTable {
    let table = SharedFlowTable::new();
    table.insert(FlowRule::new(
        FlowMatch::at_step(RulePort::Nic(0)),
        vec![Action::ToPort(1)],
    ));
    table
}

fn worker_table() -> (SharedFlowTable, ServiceId) {
    let (graph, ids) = catalog::chain(&[("worker", true)]);
    let table = SharedFlowTable::new();
    for rule in graph.compile(&CompileOptions::default()) {
        table.insert(rule);
    }
    (table, ids[0])
}

fn noop_nfs(service: ServiceId) -> Vec<(ServiceId, Box<dyn NetworkFunction>)> {
    vec![(service, Box::new(NoOpNf::new()) as Box<dyn NetworkFunction>)]
}

/// A flow that the *default* steering of an `n`-shard host sends to `shard`.
fn flow_on(shard: usize, n: usize) -> u16 {
    (0..u16::MAX)
        .find(|f| {
            packet(*f)
                .flow_key()
                .is_some_and(|k| shard_for_flow(&k, n) == shard)
        })
        .expect("some flow steers to the shard")
}

/// Installs a shard-local exact-flow drop rule for `flow` in `shard`'s
/// partition (the state the re-home handshake must carry along).
fn install_local_drop(host: &ThreadedHost, shard: usize, flow: u16) {
    let key = packet(flow).flow_key().expect("udp packet");
    host.shard_table(shard).with_write(|t| {
        t.insert(
            FlowRule::new(FlowMatch::exact(RulePort::Nic(0), &key), vec![Action::Drop])
                .with_priority(100),
        );
    });
}

/// Whether `flow`'s exact-flow rule is installed in `shard`'s partition.
fn has_local_rule(host: &ThreadedHost, shard: usize, flow: u16) -> bool {
    let key = packet(flow).flow_key().expect("udp packet");
    host.shard_table(shard)
        .with_read(|t| t.exact_rule_id(RulePort::Nic(0), &key).is_some())
}

fn drain(host: &ThreadedHost, expected: usize, deadline: Duration) -> usize {
    let until = Instant::now() + deadline;
    let mut received = 0;
    while received < expected && Instant::now() < until {
        let got = host.poll_egress_burst(64).len();
        if got == 0 {
            std::thread::yield_now();
        }
        received += got;
    }
    received
}

/// Polls the host until a condition holds (the host advances its re-home
/// handshake inside the polling calls). Egress drained while waiting is
/// added to `drained` so packet-conservation tallies stay exact.
fn wait_for_counting(
    host: &ThreadedHost,
    deadline: Duration,
    drained: &mut u64,
    mut cond: impl FnMut() -> bool,
) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if cond() {
            return true;
        }
        *drained += host.poll_egress_burst(16).len() as u64;
        std::thread::yield_now();
    }
    cond()
}

/// [`wait_for_counting`] for phases where nothing is in flight (the drain
/// count is irrelevant).
fn wait_for(host: &ThreadedHost, deadline: Duration, cond: impl FnMut() -> bool) -> bool {
    let mut sink = 0u64;
    wait_for_counting(host, deadline, &mut sink, cond)
}

/// **Regression (rule loss on rebalance):** a steering rebalance moves a
/// bucket's shard-local exact-flow rules into the new owner's partition —
/// the flow keeps matching its rule after the move.
#[test]
fn rebalance_preserves_shard_local_exact_flow_rules() {
    let host = ThreadedHost::start_sharded(
        forward_table(),
        |_shard| vec![],
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    let flow = flow_on(0, 2);
    install_local_drop(&host, 0, flow);

    // The rule governs the flow on shard 0.
    assert!(host.inject(packet(flow)).is_admitted());
    assert!(
        wait_for(&host, Duration::from_secs(5), || host
            .stats()
            .snapshot()
            .dropped
            == 1),
        "the shard-local rule drops the flow before the move"
    );

    // Re-home every bucket to shard 1. The host is idle, so the handshake
    // completes (essentially) synchronously — a bucket whose last packet's
    // in-flight count is still settling may take one more advance tick.
    assert!(host.set_steering_weights(&[0, 1]));
    assert!(
        wait_for(&host, Duration::from_secs(5), || host.pending_rehomes()
            == 0),
        "idle buckets complete their move promptly"
    );
    assert_eq!(host.shard_of(&packet(flow)), 1, "flow re-homed to shard 1");
    assert!(
        has_local_rule(&host, 1, flow),
        "the exact-flow rule moved with its bucket"
    );
    assert!(
        !has_local_rule(&host, 0, flow),
        "the old shard no longer holds the rule"
    );
    assert!(host.rehome_report().rules_rehomed >= 1);

    // And it still governs the flow on its new shard: the packet is
    // dropped by the rule, not forwarded.
    assert!(host.inject(packet(flow)).is_admitted());
    assert!(
        wait_for(&host, Duration::from_secs(5), || host
            .stats()
            .snapshot()
            .dropped
            == 2),
        "the rule keeps matching after the re-home"
    );
    assert_eq!(host.stats().snapshot().transmitted, 0);
    host.shutdown();
}

/// **Regression (retired-slot ring leak):** after a flood scales a service
/// up and the quiet phase scales it back down, the retired replica's rings
/// are compacted away — the allocated slot count returns to baseline.
#[test]
fn retired_nf_slot_rings_are_reclaimed() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start(
        table,
        vec![
            (
                worker,
                Box::new(ComputeNf::new(50)) as Box<dyn NetworkFunction>,
            ),
            (
                worker,
                Box::new(ComputeNf::new(50)) as Box<dyn NetworkFunction>,
            ),
        ],
        ThreadedHostConfig {
            telemetry_interval_ns: 200_000,
            ..ThreadedHostConfig::default()
        },
    );
    // Baseline: two replicas, two slots.
    let mut slots = 0;
    assert!(wait_for(&host, Duration::from_secs(5), || {
        for snapshot in host.poll_telemetry() {
            slots = snapshot.nf_slots_allocated;
        }
        slots == 2
    }));

    // Scale down and stay down: the replica drains, retires, and its slot
    // (rings included) is reclaimed by the compaction pass.
    assert!(host.remove_nf_replica(0, worker));
    assert!(
        wait_for(&host, Duration::from_secs(10), || {
            let mut live = usize::MAX;
            for snapshot in host.poll_telemetry() {
                live = snapshot.nfs.len();
                slots = snapshot.nf_slots_allocated;
            }
            live == 1 && slots == 1
        }),
        "slot count returns to baseline after scale-down (slots = {slots})"
    );
    host.shutdown();
}

/// The acceptance loop: flood a 2-shard host, scale out to 3 shards while
/// traffic flows, absorb, then scale back in — zero packets dropped and
/// zero exact-flow rules lost across every re-home.
#[test]
fn flood_scale_out_absorb_scale_in_loses_nothing() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![(
                worker,
                Box::new(ComputeNf::new(200)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            nf_ring_capacity: 128,
            shard_credits: 128,
            burst_size: 16,
            overflow_policy: OverflowPolicy::Backpressure,
            ..ThreadedHostConfig::default()
        },
    );
    // Shard-local state on both shards (installed after the partitions
    // forked, so only the re-home handshake can carry it).
    let ruled_flow_0 = flow_on(0, 2);
    let ruled_flow_1 = flow_on(1, 2);
    install_local_drop(&host, 0, ruled_flow_0);
    install_local_drop(&host, 1, ruled_flow_1);

    let mut admitted = 0u64;
    let mut drained = 0u64;
    let mut flow = 0u16;
    let mut pump = |host: &ThreadedHost, rounds: usize, admitted: &mut u64, drained: &mut u64| {
        for _ in 0..rounds {
            let burst: Vec<Packet> = (0..16)
                .map(|_| {
                    // Steer clear of the ruled flows: their drops are
                    // asserted separately. `packet` maps flow ids modulo
                    // 4096 onto source ports, so the comparison must too —
                    // id 4096 + r regenerates flow r's 5-tuple.
                    loop {
                        flow = flow.wrapping_add(1);
                        let id = flow % 4096;
                        if id != ruled_flow_0 % 4096 && id != ruled_flow_1 % 4096 {
                            break;
                        }
                    }
                    packet(flow)
                })
                .collect();
            let outcome = host.inject_burst(burst);
            *admitted += outcome.admitted as u64;
            assert_eq!(outcome.dropped, 0, "backpressure must never drop");
            *drained += host.poll_egress_burst(64).len() as u64;
        }
    };

    // Phase 1 — flood the 2-shard host.
    pump(&host, 100, &mut admitted, &mut drained);

    // Phase 2 — scale out to 3 shards mid-traffic.
    let spawned = host.spawn_shard(vec![(
        worker,
        Box::new(ComputeNf::new(200)) as Box<dyn NetworkFunction>,
    )]);
    let new_shard = spawned
        .map_err(|_| "spawn refused")
        .expect("spawn accepted while traffic flows");
    assert_eq!(new_shard, 2);
    assert_eq!(host.num_shards(), 3);

    // Phase 3 — absorb: keep pumping; the new shard picks up re-homed
    // buckets.
    pump(&host, 200, &mut admitted, &mut drained);
    assert!(
        wait_for_counting(&host, Duration::from_secs(10), &mut drained, || host
            .pending_rehomes()
            == 0),
        "every bucket move completes"
    );
    let spread = host.stats().shard_snapshot(2).received;
    assert!(spread > 0, "the spawned shard serves re-homed traffic");

    // Phase 4 — scale back in.
    assert!(host.retire_shard());
    assert!(
        wait_for_counting(&host, Duration::from_secs(10), &mut drained, || !host
            .is_retiring()),
        "retirement completes"
    );
    assert_eq!(host.num_shards(), 2);
    pump(&host, 50, &mut admitted, &mut drained);

    // Drain everything; nothing was lost anywhere.
    drained += drain(
        &host,
        (admitted - drained) as usize,
        Duration::from_secs(30),
    ) as u64;
    assert_eq!(drained, admitted, "every admitted packet came back out");
    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0, "no silent drops");
    assert_eq!(snap.transmitted, admitted);

    // Zero exact-flow rules lost: each ruled flow's rule lives exactly
    // where its bucket now lives, and still governs it.
    for ruled in [ruled_flow_0, ruled_flow_1] {
        let owner = host.shard_of(&packet(ruled));
        assert!(
            has_local_rule(&host, owner, ruled),
            "flow {ruled}'s rule followed its bucket to shard {owner}"
        );
        let dropped_before = host.stats().snapshot().dropped;
        assert!(host.inject(packet(ruled)).is_admitted());
        assert!(
            wait_for(&host, Duration::from_secs(5), || host
                .stats()
                .snapshot()
                .dropped
                > dropped_before),
            "flow {ruled} is still governed by its exact rule"
        );
    }

    // Lifecycle events recorded the scale-out and scale-in.
    let events = host.take_shard_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, ShardLifecycleEvent::Spawned { shard: 2, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, ShardLifecycleEvent::Retired { shard: 2, .. })));
    host.shutdown();
}

/// Edge case: a scale-out lands while buckets are still mid-drain from a
/// rebalance — the moves finish, the spawn re-homes around them, and no
/// packet is lost.
#[test]
fn scale_out_while_buckets_are_mid_drain() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![(
                worker,
                Box::new(ComputeNf::new(2000)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            nf_ring_capacity: 256,
            shard_credits: 256,
            ..ThreadedHostConfig::default()
        },
    );
    // Fill the pipelines without draining, so buckets have in-flight
    // packets when the rebalance hits. Alternate the weight vector until a
    // rebalance catches busy buckets mid-flight (each call only re-plans
    // buckets that are not already moving).
    let mut admitted = 0u64;
    for flow in 0..200u16 {
        if host.inject(packet(flow)).is_admitted() {
            admitted += 1;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut skew = false;
    while host.pending_rehomes() == 0 && Instant::now() < deadline {
        for flow in 0..64u16 {
            if host.inject(packet(flow)).is_admitted() {
                admitted += 1;
            }
        }
        let weights: &[u32] = if skew { &[3, 1] } else { &[1, 3] };
        skew = !skew;
        assert!(host.set_steering_weights(weights));
    }
    assert!(
        host.pending_rehomes() > 0,
        "busy buckets park instead of flipping"
    );

    // Spawn a shard while those moves are still draining.
    let spawned = host.spawn_shard(vec![(
        worker,
        Box::new(ComputeNf::new(2000)) as Box<dyn NetworkFunction>,
    )]);
    assert_eq!(
        spawned
            .map_err(|_| "spawn refused")
            .expect("spawn during mid-drain moves"),
        2
    );

    // Keep injecting (some flows land in pens) and drain everything.
    for flow in 200..300u16 {
        match host.inject(packet(flow)) {
            sdnfv::dataplane::InjectResult::Admitted => admitted += 1,
            sdnfv::dataplane::InjectResult::Throttled(_) => {}
            sdnfv::dataplane::InjectResult::Dropped => panic!("backpressure must not drop"),
        }
    }
    let drained = drain(&host, admitted as usize, Duration::from_secs(30));
    assert_eq!(drained as u64, admitted);
    assert!(
        wait_for(&host, Duration::from_secs(10), || host.pending_rehomes()
            == 0),
        "all moves complete"
    );
    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0);
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.transmitted, admitted);
    host.shutdown();
}

/// Edge case: retiring the shard that owns punted packets — punts are
/// terminal states, so the drain handshake completes and the retirement
/// goes through.
#[test]
fn retire_shard_that_punted_packets() {
    // An empty flow table: every packet punts to the controller.
    let host = ThreadedHost::start_sharded(
        SharedFlowTable::new(),
        |_shard| vec![],
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    let mut admitted = 0u64;
    for flow in 0..100u16 {
        if host.inject(packet(flow)).is_admitted() {
            admitted += 1;
        }
    }
    // Wait until every punt has been counted (all terminal).
    assert!(wait_for(&host, Duration::from_secs(10), || {
        host.stats().snapshot().controller_punts == admitted
    }));
    assert!(host.retire_shard());
    assert!(
        wait_for(&host, Duration::from_secs(10), || !host.is_retiring()),
        "punted packets do not block the retirement"
    );
    assert_eq!(host.num_shards(), 1);
    host.shutdown();
}

/// Edge case: retire-then-immediately-respawn. The spawn is refused while
/// the retirement is still in flight (the NF set is handed back), then
/// succeeds once the teardown completes.
#[test]
fn retire_then_immediately_respawn() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![(
                worker,
                Box::new(ComputeNf::new(500)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    // Busy the host so the retirement takes at least one drain cycle.
    let mut admitted = 0u64;
    for flow in 0..100u16 {
        if host.inject(packet(flow)).is_admitted() {
            admitted += 1;
        }
    }
    assert!(host.retire_shard());
    let mut nfs = noop_nfs(worker);
    if host.is_retiring() {
        // The immediate respawn is refused; the NF set comes back intact.
        match host.spawn_shard(nfs) {
            Err(returned) => {
                assert_eq!(returned.len(), 1);
                nfs = returned;
            }
            Ok(_) => panic!("spawn must be refused while retiring"),
        }
    }
    let drained = drain(&host, admitted as usize, Duration::from_secs(30));
    assert_eq!(drained as u64, admitted);
    assert!(wait_for(&host, Duration::from_secs(10), || !host.is_retiring()));
    assert_eq!(host.num_shards(), 1);

    // Now the respawn goes through and the new shard serves traffic again.
    let before_respawn = host.stats().shard_snapshot(1).received;
    assert_eq!(
        host.spawn_shard(nfs)
            .map_err(|_| "spawn refused")
            .expect("respawn after teardown"),
        1
    );
    let mut more = 0u64;
    for flow in 0..200u16 {
        if host.inject(packet(flow)).is_admitted() {
            more += 1;
        }
    }
    let drained = drain(&host, more as usize, Duration::from_secs(30));
    assert_eq!(drained as u64, more);
    assert!(
        host.stats().shard_snapshot(1).received > before_respawn,
        "the respawned shard serves its bucket share"
    );
    host.shutdown();
}

/// Edge case: a retiring shard's credit gate converges while packets are
/// still in flight — every credit comes home before the gate is torn down,
/// and the surviving shards end with full budgets.
#[test]
fn credit_gate_converges_through_retirement() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![(
                worker,
                Box::new(ComputeNf::new(1000)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            nf_ring_capacity: 64,
            shard_credits: 64,
            ..ThreadedHostConfig::default()
        },
    );
    // Saturate both shards, then retire shard 1 with its pipeline full.
    let mut admitted = 0u64;
    for flow in 0..400u16 {
        if host.inject(packet(flow)).is_admitted() {
            admitted += 1;
        }
    }
    assert!(host.retire_shard());
    let drained = drain(&host, admitted as usize, Duration::from_secs(30));
    assert_eq!(drained as u64, admitted, "in-flight packets all completed");
    assert!(wait_for(&host, Duration::from_secs(10), || !host.is_retiring()));
    assert_eq!(host.num_shards(), 1);
    // The survivor's credits are all home.
    assert!(wait_for(&host, Duration::from_secs(5), || {
        host.available_credits(0) == host.credit_budget(0)
    }));
    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0);
    assert_eq!(snap.transmitted, admitted);
    host.shutdown();
}

/// The `ShardPolicy` layer end to end: a flood drives the elastic manager
/// to spawn a shard (through the orchestrator's boot delay), the pool
/// absorbs, and the quiet phase retires it — zero loss throughout.
#[test]
fn elastic_manager_scales_shard_count_out_and_in() {
    let (table, worker) = worker_table();
    let mut registry = NfRegistry::new();
    registry.register("worker", || ComputeNf::new(2000));
    let mut orchestrator = NfvOrchestrator::new(registry, 1_000_000); // 1 ms boot
    let placement = ShardPlacement::uniform(&[(worker, "worker")], 1, 1);
    let host = deploy_sharded(
        &mut orchestrator,
        &placement,
        table,
        ThreadedHostConfig {
            nf_ring_capacity: 64,
            shard_credits: 64,
            burst_size: 16,
            telemetry_interval_ns: 200_000,
            ..ThreadedHostConfig::default()
        },
    )
    .expect("worker is registered");

    let mut manager = ElasticNfManager::new(orchestrator, ElasticPolicy::default());
    manager
        .enable_shard_scaling(
            ShardPolicy {
                scale_out_fill: 0.5,
                scale_in_fill: 0.05,
                min_shards: 1,
                max_shards: 2,
                cooldown_ns: 5_000_000,
                latency_slo_ns: None,
            },
            vec![(worker, "worker".to_string(), 1)],
        )
        .expect("worker is in the registry");

    // Phase 1 — flood until the shard count grows.
    let mut admitted = 0u64;
    let mut drained = 0u64;
    let mut flow = 0u16;
    let deadline = Instant::now() + Duration::from_secs(30);
    let scaled = loop {
        let burst: Vec<Packet> = (0..32)
            .map(|_| {
                flow = flow.wrapping_add(1);
                packet(flow)
            })
            .collect();
        let outcome = host.inject_burst(burst);
        admitted += outcome.admitted as u64;
        assert_eq!(outcome.dropped, 0, "backpressure must never drop");
        drained += host.poll_egress_burst(64).len() as u64;
        manager.drive(&host);
        if host.num_shards() == 2 {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
    };
    assert!(scaled, "the flood never grew the shard count");
    assert!(manager.shard_spawns() >= 1);
    assert!(!manager.shard_pending(), "the shard launch matured");

    // Phase 2 — absorb the backlog with both shards.
    drained += drain(
        &host,
        (admitted - drained) as usize,
        Duration::from_secs(30),
    ) as u64;
    assert_eq!(drained, admitted, "every admitted packet came back out");

    // Phase 3 — quiet: the manager retires the extra shard.
    let deadline = Instant::now() + Duration::from_secs(30);
    let calmed = loop {
        manager.drive(&host);
        let _ = host.poll_egress_burst(16);
        if host.num_shards() == 1 && !host.is_retiring() {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::yield_now();
    };
    assert!(calmed, "the quiet phase never retired the extra shard");
    assert!(manager.shard_retires() >= 1);

    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0, "no silent drops anywhere");
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.transmitted, admitted);
    host.shutdown();
}
