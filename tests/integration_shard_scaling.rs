//! End-to-end tests of dynamic shard scale-out/in and the state-safe
//! bucket re-home handshake (quiesce → drain → export rules → flip).
//!
//! Includes the two regression tests this PR's bugfixes demand:
//! * a steering rebalance must carry shard-local exact-flow rules along
//!   with the moved buckets (previously they were silently stranded on the
//!   old shard);
//! * a retired NF replica's rings must be reclaimed when the host scales
//!   down and stays down (previously they were kept until a later reuse).

use sdnfv::control::{
    deploy_sharded, ElasticNfManager, ElasticPolicy, NfvOrchestrator, ShardPlacement, ShardPolicy,
};
use sdnfv::dataplane::{
    shard_for_flow, HostOutput, OverflowPolicy, RehomeOrdering, ThreadedHost, ThreadedHostConfig,
};
use sdnfv::flowtable::{Action, FlowMatch, FlowRule, RulePort, ServiceId, SharedFlowTable};
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::{ComputeNf, IdsNf, NoOpNf};
use sdnfv::nf::{NetworkFunction, NfContext, NfFlowState, NfMessage, NfRegistry, Verdict};
use sdnfv::proto::flow::FlowKey;
use sdnfv::proto::packet::{Packet, PacketBuilder};
use sdnfv::telemetry::ShardLifecycleEvent;
use std::collections::HashMap;
use std::time::{Duration, Instant};

fn packet(flow: u16) -> Packet {
    PacketBuilder::udp()
        .src_ip([10, 0, 0, 1])
        .dst_ip([10, 0, 0, 2])
        .src_port(1024 + (flow % 4096))
        .dst_port(80)
        .ingress_port(0)
        .total_size(256)
        .build()
}

fn forward_table() -> SharedFlowTable {
    let table = SharedFlowTable::new();
    table.insert(FlowRule::new(
        FlowMatch::at_step(RulePort::Nic(0)),
        vec![Action::ToPort(1)],
    ));
    table
}

fn worker_table() -> (SharedFlowTable, ServiceId) {
    let (graph, ids) = catalog::chain(&[("worker", true)]);
    let table = SharedFlowTable::new();
    for rule in graph.compile(&CompileOptions::default()) {
        table.insert(rule);
    }
    (table, ids[0])
}

fn noop_nfs(service: ServiceId) -> Vec<(ServiceId, Box<dyn NetworkFunction>)> {
    vec![(service, Box::new(NoOpNf::new()) as Box<dyn NetworkFunction>)]
}

/// A flow that the *default* steering of an `n`-shard host sends to `shard`.
fn flow_on(shard: usize, n: usize) -> u16 {
    (0..u16::MAX)
        .find(|f| {
            packet(*f)
                .flow_key()
                .is_some_and(|k| shard_for_flow(&k, n) == shard)
        })
        .expect("some flow steers to the shard")
}

/// Installs a shard-local exact-flow drop rule for `flow` in `shard`'s
/// partition (the state the re-home handshake must carry along).
fn install_local_drop(host: &ThreadedHost, shard: usize, flow: u16) {
    let key = packet(flow).flow_key().expect("udp packet");
    host.shard_table(shard).with_write(|t| {
        t.insert(
            FlowRule::new(FlowMatch::exact(RulePort::Nic(0), &key), vec![Action::Drop])
                .with_priority(100),
        );
    });
}

/// Whether `flow`'s exact-flow rule is installed in `shard`'s partition.
fn has_local_rule(host: &ThreadedHost, shard: usize, flow: u16) -> bool {
    let key = packet(flow).flow_key().expect("udp packet");
    host.shard_table(shard)
        .with_read(|t| t.exact_rule_id(RulePort::Nic(0), &key).is_some())
}

fn drain(host: &ThreadedHost, expected: usize, deadline: Duration) -> usize {
    let until = Instant::now() + deadline;
    let mut received = 0;
    while received < expected && Instant::now() < until {
        let got = host.poll_egress_burst(64).len();
        if got == 0 {
            std::thread::yield_now();
        }
        received += got;
    }
    received
}

/// Polls the host until a condition holds (the host advances its re-home
/// handshake inside the polling calls). Egress drained while waiting is
/// added to `drained` so packet-conservation tallies stay exact.
fn wait_for_counting(
    host: &ThreadedHost,
    deadline: Duration,
    drained: &mut u64,
    mut cond: impl FnMut() -> bool,
) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if cond() {
            return true;
        }
        *drained += host.poll_egress_burst(16).len() as u64;
        std::thread::yield_now();
    }
    cond()
}

/// [`wait_for_counting`] for phases where nothing is in flight (the drain
/// count is irrelevant).
fn wait_for(host: &ThreadedHost, deadline: Duration, cond: impl FnMut() -> bool) -> bool {
    let mut sink = 0u64;
    wait_for_counting(host, deadline, &mut sink, cond)
}

/// **Regression (rule loss on rebalance):** a steering rebalance moves a
/// bucket's shard-local exact-flow rules into the new owner's partition —
/// the flow keeps matching its rule after the move.
#[test]
fn rebalance_preserves_shard_local_exact_flow_rules() {
    let host = ThreadedHost::start_sharded(
        forward_table(),
        |_shard| vec![],
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    let flow = flow_on(0, 2);
    install_local_drop(&host, 0, flow);

    // The rule governs the flow on shard 0.
    assert!(host.inject(packet(flow)).is_admitted());
    assert!(
        wait_for(&host, Duration::from_secs(5), || host
            .stats()
            .snapshot()
            .dropped
            == 1),
        "the shard-local rule drops the flow before the move"
    );

    // Re-home every bucket to shard 1. The host is idle, so the handshake
    // completes (essentially) synchronously — a bucket whose last packet's
    // in-flight count is still settling may take one more advance tick.
    assert!(host.set_steering_weights(&[0, 1]));
    assert!(
        wait_for(&host, Duration::from_secs(5), || host.pending_rehomes()
            == 0),
        "idle buckets complete their move promptly"
    );
    assert_eq!(host.shard_of(&packet(flow)), 1, "flow re-homed to shard 1");
    assert!(
        has_local_rule(&host, 1, flow),
        "the exact-flow rule moved with its bucket"
    );
    assert!(
        !has_local_rule(&host, 0, flow),
        "the old shard no longer holds the rule"
    );
    assert!(host.rehome_report().rules_rehomed >= 1);

    // And it still governs the flow on its new shard: the packet is
    // dropped by the rule, not forwarded.
    assert!(host.inject(packet(flow)).is_admitted());
    assert!(
        wait_for(&host, Duration::from_secs(5), || host
            .stats()
            .snapshot()
            .dropped
            == 2),
        "the rule keeps matching after the re-home"
    );
    assert_eq!(host.stats().snapshot().transmitted, 0);
    host.shutdown();
}

/// **Regression (retired-slot ring leak):** after a flood scales a service
/// up and the quiet phase scales it back down, the retired replica's rings
/// are compacted away — the allocated slot count returns to baseline.
#[test]
fn retired_nf_slot_rings_are_reclaimed() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start(
        table,
        vec![
            (
                worker,
                Box::new(ComputeNf::new(50)) as Box<dyn NetworkFunction>,
            ),
            (
                worker,
                Box::new(ComputeNf::new(50)) as Box<dyn NetworkFunction>,
            ),
        ],
        ThreadedHostConfig {
            telemetry_interval_ns: 200_000,
            ..ThreadedHostConfig::default()
        },
    );
    // Baseline: two replicas, two slots.
    let mut slots = 0;
    assert!(wait_for(&host, Duration::from_secs(5), || {
        for snapshot in host.poll_telemetry() {
            slots = snapshot.nf_slots_allocated;
        }
        slots == 2
    }));

    // Scale down and stay down: the replica drains, retires, and its slot
    // (rings included) is reclaimed by the compaction pass.
    assert!(host.remove_nf_replica(0, worker));
    assert!(
        wait_for(&host, Duration::from_secs(10), || {
            let mut live = usize::MAX;
            for snapshot in host.poll_telemetry() {
                live = snapshot.nfs.len();
                slots = snapshot.nf_slots_allocated;
            }
            live == 1 && slots == 1
        }),
        "slot count returns to baseline after scale-down (slots = {slots})"
    );
    host.shutdown();
}

/// The acceptance loop: flood a 2-shard host, scale out to 3 shards while
/// traffic flows, absorb, then scale back in — zero packets dropped and
/// zero exact-flow rules lost across every re-home.
#[test]
fn flood_scale_out_absorb_scale_in_loses_nothing() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![(
                worker,
                Box::new(ComputeNf::new(200)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            nf_ring_capacity: 128,
            shard_credits: 128,
            burst_size: 16,
            overflow_policy: OverflowPolicy::Backpressure,
            ..ThreadedHostConfig::default()
        },
    );
    // Shard-local state on both shards (installed after the partitions
    // forked, so only the re-home handshake can carry it).
    let ruled_flow_0 = flow_on(0, 2);
    let ruled_flow_1 = flow_on(1, 2);
    install_local_drop(&host, 0, ruled_flow_0);
    install_local_drop(&host, 1, ruled_flow_1);

    let mut admitted = 0u64;
    let mut drained = 0u64;
    let mut flow = 0u16;
    let mut pump = |host: &ThreadedHost, rounds: usize, admitted: &mut u64, drained: &mut u64| {
        for _ in 0..rounds {
            let burst: Vec<Packet> = (0..16)
                .map(|_| {
                    // Steer clear of the ruled flows: their drops are
                    // asserted separately. `packet` maps flow ids modulo
                    // 4096 onto source ports, so the comparison must too —
                    // id 4096 + r regenerates flow r's 5-tuple.
                    loop {
                        flow = flow.wrapping_add(1);
                        let id = flow % 4096;
                        if id != ruled_flow_0 % 4096 && id != ruled_flow_1 % 4096 {
                            break;
                        }
                    }
                    packet(flow)
                })
                .collect();
            let outcome = host.inject_burst(burst);
            *admitted += outcome.admitted as u64;
            assert_eq!(outcome.dropped, 0, "backpressure must never drop");
            *drained += host.poll_egress_burst(64).len() as u64;
        }
    };

    // Phase 1 — flood the 2-shard host.
    pump(&host, 100, &mut admitted, &mut drained);

    // Phase 2 — scale out to 3 shards mid-traffic.
    let spawned = host.spawn_shard(vec![(
        worker,
        Box::new(ComputeNf::new(200)) as Box<dyn NetworkFunction>,
    )]);
    let new_shard = spawned
        .map_err(|_| "spawn refused")
        .expect("spawn accepted while traffic flows");
    assert_eq!(new_shard, 2);
    assert_eq!(host.num_shards(), 3);

    // Phase 3 — absorb: keep pumping; the new shard picks up re-homed
    // buckets.
    pump(&host, 200, &mut admitted, &mut drained);
    assert!(
        wait_for_counting(&host, Duration::from_secs(10), &mut drained, || host
            .pending_rehomes()
            == 0),
        "every bucket move completes"
    );
    let spread = host.stats().shard_snapshot(2).received;
    assert!(spread > 0, "the spawned shard serves re-homed traffic");

    // Phase 4 — scale back in.
    assert!(host.retire_shard());
    assert!(
        wait_for_counting(&host, Duration::from_secs(10), &mut drained, || !host
            .is_retiring()),
        "retirement completes"
    );
    assert_eq!(host.num_shards(), 2);
    pump(&host, 50, &mut admitted, &mut drained);

    // Drain everything; nothing was lost anywhere.
    drained += drain(
        &host,
        (admitted - drained) as usize,
        Duration::from_secs(30),
    ) as u64;
    assert_eq!(drained, admitted, "every admitted packet came back out");
    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0, "no silent drops");
    assert_eq!(snap.transmitted, admitted);

    // Zero exact-flow rules lost: each ruled flow's rule lives exactly
    // where its bucket now lives, and still governs it.
    for ruled in [ruled_flow_0, ruled_flow_1] {
        let owner = host.shard_of(&packet(ruled));
        assert!(
            has_local_rule(&host, owner, ruled),
            "flow {ruled}'s rule followed its bucket to shard {owner}"
        );
        let dropped_before = host.stats().snapshot().dropped;
        assert!(host.inject(packet(ruled)).is_admitted());
        assert!(
            wait_for(&host, Duration::from_secs(5), || host
                .stats()
                .snapshot()
                .dropped
                > dropped_before),
            "flow {ruled} is still governed by its exact rule"
        );
    }

    // Lifecycle events recorded the scale-out and scale-in.
    let events = host.take_shard_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, ShardLifecycleEvent::Spawned { shard: 2, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, ShardLifecycleEvent::Retired { shard: 2, .. })));
    host.shutdown();
}

/// Edge case: a scale-out lands while buckets are still mid-drain from a
/// rebalance — the moves finish, the spawn re-homes around them, and no
/// packet is lost.
#[test]
fn scale_out_while_buckets_are_mid_drain() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![(
                worker,
                Box::new(ComputeNf::new(2000)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            nf_ring_capacity: 256,
            shard_credits: 256,
            ..ThreadedHostConfig::default()
        },
    );
    // Fill the pipelines without draining, so buckets have in-flight
    // packets when the rebalance hits. Alternate the weight vector until a
    // rebalance catches busy buckets mid-flight (each call only re-plans
    // buckets that are not already moving).
    let mut admitted = 0u64;
    for flow in 0..200u16 {
        if host.inject(packet(flow)).is_admitted() {
            admitted += 1;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut skew = false;
    while host.pending_rehomes() == 0 && Instant::now() < deadline {
        for flow in 0..64u16 {
            if host.inject(packet(flow)).is_admitted() {
                admitted += 1;
            }
        }
        let weights: &[u32] = if skew { &[3, 1] } else { &[1, 3] };
        skew = !skew;
        assert!(host.set_steering_weights(weights));
    }
    assert!(
        host.pending_rehomes() > 0,
        "busy buckets park instead of flipping"
    );

    // Spawn a shard while those moves are still draining.
    let spawned = host.spawn_shard(vec![(
        worker,
        Box::new(ComputeNf::new(2000)) as Box<dyn NetworkFunction>,
    )]);
    assert_eq!(
        spawned
            .map_err(|_| "spawn refused")
            .expect("spawn during mid-drain moves"),
        2
    );

    // Keep injecting (some flows land in pens) and drain everything.
    for flow in 200..300u16 {
        match host.inject(packet(flow)) {
            sdnfv::dataplane::InjectResult::Admitted => admitted += 1,
            sdnfv::dataplane::InjectResult::Throttled(_) => {}
            sdnfv::dataplane::InjectResult::Dropped => panic!("backpressure must not drop"),
        }
    }
    let drained = drain(&host, admitted as usize, Duration::from_secs(30));
    assert_eq!(drained as u64, admitted);
    assert!(
        wait_for(&host, Duration::from_secs(10), || host.pending_rehomes()
            == 0),
        "all moves complete"
    );
    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0);
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.transmitted, admitted);
    host.shutdown();
}

/// Edge case: retiring the shard that owns punted packets — punts are
/// terminal states, so the drain handshake completes and the retirement
/// goes through.
#[test]
fn retire_shard_that_punted_packets() {
    // An empty flow table: every packet punts to the controller.
    let host = ThreadedHost::start_sharded(
        SharedFlowTable::new(),
        |_shard| vec![],
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    let mut admitted = 0u64;
    for flow in 0..100u16 {
        if host.inject(packet(flow)).is_admitted() {
            admitted += 1;
        }
    }
    // Wait until every punt has been counted (all terminal).
    assert!(wait_for(&host, Duration::from_secs(10), || {
        host.stats().snapshot().controller_punts == admitted
    }));
    assert!(host.retire_shard());
    assert!(
        wait_for(&host, Duration::from_secs(10), || !host.is_retiring()),
        "punted packets do not block the retirement"
    );
    assert_eq!(host.num_shards(), 1);
    host.shutdown();
}

/// Edge case: retire-then-immediately-respawn. The spawn is refused while
/// the retirement is still in flight (the NF set is handed back), then
/// succeeds once the teardown completes.
#[test]
fn retire_then_immediately_respawn() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![(
                worker,
                Box::new(ComputeNf::new(500)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    // Busy the host so the retirement takes at least one drain cycle.
    let mut admitted = 0u64;
    for flow in 0..100u16 {
        if host.inject(packet(flow)).is_admitted() {
            admitted += 1;
        }
    }
    assert!(host.retire_shard());
    let mut nfs = noop_nfs(worker);
    if host.is_retiring() {
        // The immediate respawn is refused; the NF set comes back intact.
        match host.spawn_shard(nfs) {
            Err(returned) => {
                assert_eq!(returned.len(), 1);
                nfs = returned;
            }
            Ok(_) => panic!("spawn must be refused while retiring"),
        }
    }
    let drained = drain(&host, admitted as usize, Duration::from_secs(30));
    assert_eq!(drained as u64, admitted);
    assert!(wait_for(&host, Duration::from_secs(10), || !host.is_retiring()));
    assert_eq!(host.num_shards(), 1);

    // Now the respawn goes through and the new shard serves traffic again.
    let before_respawn = host.stats().shard_snapshot(1).received;
    assert_eq!(
        host.spawn_shard(nfs)
            .map_err(|_| "spawn refused")
            .expect("respawn after teardown"),
        1
    );
    let mut more = 0u64;
    for flow in 0..200u16 {
        if host.inject(packet(flow)).is_admitted() {
            more += 1;
        }
    }
    let drained = drain(&host, more as usize, Duration::from_secs(30));
    assert_eq!(drained as u64, more);
    assert!(
        host.stats().shard_snapshot(1).received > before_respawn,
        "the respawned shard serves its bucket share"
    );
    host.shutdown();
}

/// Edge case: a retiring shard's credit gate converges while packets are
/// still in flight — every credit comes home before the gate is torn down,
/// and the surviving shards end with full budgets.
#[test]
fn credit_gate_converges_through_retirement() {
    let (table, worker) = worker_table();
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![(
                worker,
                Box::new(ComputeNf::new(1000)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            nf_ring_capacity: 64,
            shard_credits: 64,
            ..ThreadedHostConfig::default()
        },
    );
    // Saturate both shards, then retire shard 1 with its pipeline full.
    let mut admitted = 0u64;
    for flow in 0..400u16 {
        if host.inject(packet(flow)).is_admitted() {
            admitted += 1;
        }
    }
    assert!(host.retire_shard());
    let drained = drain(&host, admitted as usize, Duration::from_secs(30));
    assert_eq!(drained as u64, admitted, "in-flight packets all completed");
    assert!(wait_for(&host, Duration::from_secs(10), || !host.is_retiring()));
    assert_eq!(host.num_shards(), 1);
    // The survivor's credits are all home.
    assert!(wait_for(&host, Duration::from_secs(5), || {
        host.available_credits(0) == host.credit_budget(0)
    }));
    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0);
    assert_eq!(snap.transmitted, admitted);
    host.shutdown();
}

/// Collects exactly `expected` egressed packets (with their ports).
fn collect(host: &ThreadedHost, expected: usize, deadline: Duration) -> Vec<HostOutput> {
    let until = Instant::now() + deadline;
    let mut out = Vec::new();
    while out.len() < expected && Instant::now() < until {
        let got = host.poll_egress_burst(64);
        if got.is_empty() {
            std::thread::yield_now();
        }
        out.extend(got);
    }
    out
}

/// Polls until every pending re-home completes.
fn settle(host: &ThreadedHost) {
    assert!(
        wait_for(host, Duration::from_secs(10), || host.pending_rehomes()
            == 0),
        "re-homes settle"
    );
}

/// A service-chain table `NIC 0 → worker → {port 1 (default), port 2}`:
/// the two-port menu lets test NFs flip the default with `ChangeDefault`.
fn two_port_table(worker: ServiceId) -> SharedFlowTable {
    let table = SharedFlowTable::new();
    table.insert(FlowRule::new(
        FlowMatch::at_step(RulePort::Nic(0)),
        vec![Action::ToService(worker)],
    ));
    table.insert(FlowRule::new(
        FlowMatch::at_step(worker),
        vec![Action::ToPort(1), Action::ToPort(2)],
    ));
    table
}

/// Test NF: on the first packet of the trigger flow, emits a **wildcard**
/// `ChangeDefault` flipping its own default edge to port 2 — the
/// shard-local wildcard mutation whose survival across bucket moves this
/// suite regresses.
struct WildcardPinNf {
    own: ServiceId,
    trigger_src_port: u16,
    fired: bool,
}

impl NetworkFunction for WildcardPinNf {
    fn name(&self) -> &str {
        "wildcard-pin"
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        if !self.fired {
            if let Some(key) = packet.flow_key() {
                if key.src_port == self.trigger_src_port {
                    self.fired = true;
                    ctx.send_for_flow(
                        &key,
                        NfMessage::ChangeDefault {
                            flows: FlowMatch::any(),
                            service: self.own,
                            new_default: Action::ToPort(2),
                        },
                    );
                }
            }
        }
        Verdict::Default
    }
}

/// Test NF modeling an IDS-style per-flow counter: once a flow's count
/// reaches `threshold`, its default edge is pinned to port 2 via an exact
/// `ChangeDefault`. The counter itself lives only inside the NF, so the
/// pin can fire across a re-home **only if** the NF state migrated.
struct CounterPinNf {
    own: ServiceId,
    threshold: u64,
    counts: HashMap<FlowKey, u64>,
}

impl CounterPinNf {
    fn new(own: ServiceId, threshold: u64) -> Self {
        CounterPinNf {
            own,
            threshold,
            counts: HashMap::new(),
        }
    }
}

impl NetworkFunction for CounterPinNf {
    fn name(&self) -> &str {
        "counter-pin"
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        let Some(key) = packet.flow_key() else {
            return Verdict::Default;
        };
        let count = self.counts.entry(key).or_insert(0);
        *count += 1;
        if *count == self.threshold {
            ctx.send_for_flow(
                &key,
                NfMessage::ChangeDefault {
                    flows: FlowMatch::exact(RulePort::Service(self.own), &key),
                    service: self.own,
                    new_default: Action::ToPort(2),
                },
            );
        }
        Verdict::Default
    }

    fn export_flow_state(&mut self, key: &FlowKey) -> Option<NfFlowState> {
        self.counts
            .remove(key)
            .map(|count| NfFlowState::with_counter("count", count))
    }

    fn import_flow_state(&mut self, key: &FlowKey, state: NfFlowState) {
        if let Some(count) = state.counter("count") {
            *self.counts.entry(*key).or_insert(0) += count;
        }
    }

    fn flow_state_keys(&self) -> Vec<FlowKey> {
        self.counts.keys().copied().collect()
    }
}

/// Test NF standing in for a scrubber that eats everything it is handed —
/// makes "the flow went to the scrubber" observable as a drop.
struct DiscardNf;

impl NetworkFunction for DiscardNf {
    fn name(&self) -> &str {
        "discard"
    }

    fn process(&mut self, _packet: &Packet, _ctx: &mut NfContext) -> Verdict {
        Verdict::Discard
    }
}

/// **Regression (wildcard-mutation loss, rebalance):** a wildcard
/// `ChangeDefault` applied inside one shard's partition pre-move must keep
/// governing the mutating flow's packets after its bucket is re-homed —
/// previously the mutation silently stayed behind in the old partition.
#[test]
fn wildcard_mutation_survives_rebalance() {
    let worker = ServiceId::new(1);
    let trigger = flow_on(0, 2);
    let host = ThreadedHost::start_sharded(
        two_port_table(worker),
        |_shard| {
            vec![(
                worker,
                Box::new(WildcardPinNf {
                    own: worker,
                    trigger_src_port: 1024 + (trigger % 4096),
                    fired: false,
                }) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    // First trigger packet fires the wildcard mutation (its own egress may
    // still take the old default — messages apply before the *next* burst).
    assert!(host.inject(packet(trigger)).is_admitted());
    assert_eq!(collect(&host, 1, Duration::from_secs(5)).len(), 1);
    // The mutation governs the flow on shard 0 …
    assert!(host.inject(packet(trigger)).is_admitted());
    let out = collect(&host, 1, Duration::from_secs(5));
    assert_eq!(out[0].port, 2, "wildcard mutation flipped the default");
    // … and is shard-local: shard 1's partition still defaults to port 1.
    let key = packet(trigger).flow_key().unwrap();
    assert_eq!(
        host.shard_table(1).with_read(|t| t
            .peek(RulePort::Service(worker), &key)
            .unwrap()
            .default_action()),
        Some(Action::ToPort(1))
    );

    // Re-home every bucket (including the mutating flow's) to shard 1.
    assert!(host.set_steering_weights(&[0, 1]));
    settle(&host);
    assert_eq!(host.shard_of(&packet(trigger)), 1);

    // The wildcard mutation traveled: post-move packets of the mutating
    // flow still egress on port 2, served from shard 1's partition.
    assert!(host.inject(packet(trigger)).is_admitted());
    let out = collect(&host, 1, Duration::from_secs(5));
    assert_eq!(out[0].port, 2, "the mutation governs post-move packets");
    assert_eq!(
        host.shard_table(1).with_read(|t| t
            .peek(RulePort::Service(worker), &key)
            .unwrap()
            .default_action()),
        Some(Action::ToPort(2)),
        "the destination partition absorbed the replayed mutation"
    );
    assert!(host.rehome_report().wildcard_mutations_rehomed >= 1);
    host.shutdown();
}

/// Retire-shard variant of the wildcard regression: the mutation lives in
/// the retiring shard's partition and must survive onto the survivor.
#[test]
fn wildcard_mutation_survives_shard_retirement() {
    let worker = ServiceId::new(1);
    let trigger = flow_on(1, 2);
    let host = ThreadedHost::start_sharded(
        two_port_table(worker),
        |_shard| {
            vec![(
                worker,
                Box::new(WildcardPinNf {
                    own: worker,
                    trigger_src_port: 1024 + (trigger % 4096),
                    fired: false,
                }) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    assert_eq!(host.shard_of(&packet(trigger)), 1);
    assert!(host.inject(packet(trigger)).is_admitted());
    assert_eq!(collect(&host, 1, Duration::from_secs(5)).len(), 1);
    assert!(host.inject(packet(trigger)).is_admitted());
    assert_eq!(
        collect(&host, 1, Duration::from_secs(5))[0].port,
        2,
        "mutation active on the shard about to retire"
    );

    assert!(host.retire_shard());
    assert!(
        wait_for(&host, Duration::from_secs(10), || !host.is_retiring()),
        "retirement completes"
    );
    assert_eq!(host.num_shards(), 1);
    assert!(host.inject(packet(trigger)).is_admitted());
    assert_eq!(
        collect(&host, 1, Duration::from_secs(5))[0].port,
        2,
        "the mutation followed the bucket onto the survivor"
    );
    host.shutdown();
}

/// **Regression (NF-internal flow-state loss, rebalance):** an IDS-style
/// per-flow counter must survive a re-home. The counter reaches its
/// threshold only if the old shard's tally migrates — the pin (an exact
/// `ChangeDefault` continuation) then fires on the *new* shard.
#[test]
fn nf_flow_state_survives_rebalance() {
    let worker = ServiceId::new(1);
    let flow = flow_on(0, 2);
    let host = ThreadedHost::start_sharded(
        two_port_table(worker),
        |_shard| {
            vec![(
                worker,
                Box::new(CounterPinNf::new(worker, 5)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    // Four packets on shard 0: one short of the pin threshold. The flow
    // has NF state but no exact rule — only `flow_state_keys` exposes it.
    for _ in 0..4 {
        assert!(host.inject(packet(flow)).is_admitted());
    }
    assert_eq!(collect(&host, 4, Duration::from_secs(5)).len(), 4);

    // Move the flow's bucket to shard 1, then send the fifth packet.
    assert!(host.set_steering_weights(&[0, 1]));
    settle(&host);
    assert!(host.rehome_report().nf_flow_states_rehomed >= 1);
    assert!(host.inject(packet(flow)).is_admitted());
    assert_eq!(collect(&host, 1, Duration::from_secs(5)).len(), 1);
    // The fifth packet crossed the threshold on the new shard (4 migrated
    // + 1): the pin rule now exists in shard 1's partition and governs the
    // sixth packet. Without state migration the new shard's count would be
    // 1 and the pin could not have fired.
    assert!(host.inject(packet(flow)).is_admitted());
    let out = collect(&host, 1, Duration::from_secs(5));
    assert_eq!(out[0].port, 2, "the migrated counter fired the pin");
    let key = packet(flow).flow_key().unwrap();
    assert!(host
        .shard_table(1)
        .with_read(|t| t.exact_rule_id(RulePort::Service(worker), &key).is_some()));
    host.shutdown();
}

/// Retire-shard variant of the NF-state regression.
#[test]
fn nf_flow_state_survives_shard_retirement() {
    let worker = ServiceId::new(1);
    let flow = flow_on(1, 2);
    let host = ThreadedHost::start_sharded(
        two_port_table(worker),
        |_shard| {
            vec![(
                worker,
                Box::new(CounterPinNf::new(worker, 5)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    for _ in 0..4 {
        assert!(host.inject(packet(flow)).is_admitted());
    }
    assert_eq!(collect(&host, 4, Duration::from_secs(5)).len(), 4);
    assert!(host.retire_shard());
    assert!(
        wait_for(&host, Duration::from_secs(10), || !host.is_retiring()),
        "retirement completes"
    );
    assert!(host.inject(packet(flow)).is_admitted());
    assert_eq!(collect(&host, 1, Duration::from_secs(5)).len(), 1);
    assert!(host.inject(packet(flow)).is_admitted());
    assert_eq!(
        collect(&host, 1, Duration::from_secs(5))[0].port,
        2,
        "the counter survived the retirement and fired on the survivor"
    );
    host.shutdown();
}

/// End to end with the real built-in IDS: a flagged flow keeps being
/// scrubbed after its bucket moves — both the exact pin rule *and* the
/// IDS's internal flagged set travel with the bucket.
#[test]
fn ids_flagged_flow_keeps_scrubbing_after_rehome() {
    let ids = ServiceId::new(1);
    let scrubber = ServiceId::new(2);
    let table = SharedFlowTable::new();
    table.insert(FlowRule::new(
        FlowMatch::at_step(RulePort::Nic(0)),
        vec![Action::ToService(ids)],
    ));
    table.insert(FlowRule::new(
        FlowMatch::at_step(ids),
        vec![Action::ToPort(1), Action::ToService(scrubber)],
    ));
    table.insert(FlowRule::new(
        FlowMatch::at_step(scrubber),
        vec![Action::ToPort(1)],
    ));
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![
                (
                    ids,
                    Box::new(IdsNf::new(ids, scrubber)) as Box<dyn NetworkFunction>,
                ),
                (scrubber, Box::new(DiscardNf) as Box<dyn NetworkFunction>),
            ]
        },
        ThreadedHostConfig {
            num_shards: 2,
            ..ThreadedHostConfig::default()
        },
    );
    let flow = flow_on(0, 2);
    let attack = |payload: &str| {
        PacketBuilder::udp()
            .src_ip([10, 0, 0, 1])
            .dst_ip([10, 0, 0, 2])
            .src_port(1024 + (flow % 4096))
            .dst_port(80)
            .ingress_port(0)
            .payload(payload.as_bytes())
            .build()
    };
    // The malicious packet flags the flow (scrubbed → discarded).
    assert!(host.inject(attack("q=UNION SELECT secrets")).is_admitted());
    assert!(
        wait_for(&host, Duration::from_secs(5), || host
            .stats()
            .snapshot()
            .dropped
            == 1),
        "the malicious packet was scrubbed"
    );
    // Move the flow's bucket to shard 1 and send an *innocent* packet:
    // the flag (NF state) and the pin (exact rule) both traveled, so it
    // is still scrubbed rather than forwarded.
    assert!(host.set_steering_weights(&[0, 1]));
    settle(&host);
    assert!(host.inject(attack("q=hello world")).is_admitted());
    assert!(
        wait_for(&host, Duration::from_secs(5), || host
            .stats()
            .snapshot()
            .dropped
            == 2),
        "the flagged flow is still scrubbed after the re-home"
    );
    assert_eq!(host.stats().snapshot().transmitted, 0, "nothing leaked");
    host.shutdown();
}

/// The `RehomeOrdering::Strict` knob: a moving bucket is released only
/// once its packets have *fully egressed*, so per-flow egress order is
/// preserved across the move (and the pen gauges expose the wait).
#[test]
fn strict_ordering_releases_buckets_at_full_egress_in_order() {
    let host = ThreadedHost::start_sharded(
        forward_table(),
        |_shard| vec![],
        ThreadedHostConfig {
            num_shards: 2,
            rehome_ordering: RehomeOrdering::Strict,
            telemetry_interval_ns: 200_000,
            ..ThreadedHostConfig::default()
        },
    );
    let flow = flow_on(0, 2);
    let seq_packet = |seq: u8| {
        PacketBuilder::udp()
            .src_ip([10, 0, 0, 1])
            .dst_ip([10, 0, 0, 2])
            .src_port(1024 + (flow % 4096))
            .dst_port(80)
            .ingress_port(0)
            .payload(&[seq])
            .build()
    };
    // Ten packets of one flow reach the old shard's egress ring (counted
    // as transmitted at staging) — but are not polled out yet.
    for seq in 0..10u8 {
        assert!(host.inject(seq_packet(seq)).is_admitted());
    }
    assert!(wait_for(&host, Duration::from_secs(5), || {
        host.stats().shard_snapshot(0).transmitted == 10
    }));

    // Rebalance everything onto shard 1. Under Strict the flow's bucket
    // cannot flip while its packets sit unpolled in shard 0's egress ring.
    assert!(host.set_steering_weights(&[0, 1]));
    let deadline = Instant::now() + Duration::from_secs(5);
    while host.pending_rehomes() > 1 && Instant::now() < deadline {
        // Advance the handshake without draining egress: idle buckets
        // complete, the busy one must stay parked.
        let _ = host.take_shard_events();
        std::thread::yield_now();
    }
    assert_eq!(
        host.pending_rehomes(),
        1,
        "only the flow's bucket is still mid-move"
    );
    // Arrivals for the parked bucket wait in its pen, visible as gauges.
    for seq in 10..15u8 {
        assert!(host.inject(seq_packet(seq)).is_admitted());
    }
    assert!(
        wait_for(&host, Duration::from_secs(5), || {
            host.poll_telemetry().iter().any(|snap| {
                snap.shard == 1 && snap.rehome_pen_depth == 5 && snap.rehome_pen_max_age_ns > 0
            })
        }),
        "pen depth and age are visible in shard 1's telemetry"
    );
    assert_eq!(host.rehome_report().packets_penned, 5);

    // Now drain: the ten staged packets come out first, the bucket
    // releases, and the five penned packets follow — in strict per-flow
    // order 0..15.
    let out = collect(&host, 15, Duration::from_secs(10));
    assert_eq!(out.len(), 15);
    let sequence: Vec<u8> = out
        .iter()
        .map(|out| out.packet.l4_payload().unwrap()[0])
        .collect();
    assert_eq!(
        sequence,
        (0..15u8).collect::<Vec<u8>>(),
        "per-flow egress order is preserved across the move"
    );
    settle(&host);
    let ages = host.take_rehome_pen_ages_ns();
    assert_eq!(ages.len(), 5, "one age sample per released penned packet");
    host.shutdown();
}

/// The `ShardPolicy` layer end to end: a flood drives the elastic manager
/// to spawn a shard (through the orchestrator's boot delay), the pool
/// absorbs, and the quiet phase retires it — zero loss throughout.
#[test]
fn elastic_manager_scales_shard_count_out_and_in() {
    let (table, worker) = worker_table();
    let mut registry = NfRegistry::new();
    registry.register("worker", || ComputeNf::new(2000));
    let mut orchestrator = NfvOrchestrator::new(registry, 1_000_000); // 1 ms boot
    let placement = ShardPlacement::uniform(&[(worker, "worker")], 1, 1);
    let host = deploy_sharded(
        &mut orchestrator,
        &placement,
        table,
        ThreadedHostConfig {
            nf_ring_capacity: 64,
            shard_credits: 64,
            burst_size: 16,
            telemetry_interval_ns: 200_000,
            ..ThreadedHostConfig::default()
        },
    )
    .expect("worker is registered");

    let mut manager = ElasticNfManager::new(orchestrator, ElasticPolicy::default());
    manager
        .enable_shard_scaling(
            ShardPolicy {
                scale_out_fill: 0.5,
                scale_in_fill: 0.05,
                min_shards: 1,
                max_shards: 2,
                cooldown_ns: 5_000_000,
                latency_slo_ns: None,
            },
            vec![(worker, "worker".to_string(), 1)],
        )
        .expect("worker is in the registry");

    // Phase 1 — flood until the shard count grows.
    let mut admitted = 0u64;
    let mut drained = 0u64;
    let mut flow = 0u16;
    let deadline = Instant::now() + Duration::from_secs(30);
    let scaled = loop {
        let burst: Vec<Packet> = (0..32)
            .map(|_| {
                flow = flow.wrapping_add(1);
                packet(flow)
            })
            .collect();
        let outcome = host.inject_burst(burst);
        admitted += outcome.admitted as u64;
        assert_eq!(outcome.dropped, 0, "backpressure must never drop");
        drained += host.poll_egress_burst(64).len() as u64;
        manager.drive(&host);
        if host.num_shards() == 2 {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
    };
    assert!(scaled, "the flood never grew the shard count");
    assert!(manager.shard_spawns() >= 1);
    assert!(!manager.shard_pending(), "the shard launch matured");

    // Phase 2 — absorb the backlog with both shards.
    drained += drain(
        &host,
        (admitted - drained) as usize,
        Duration::from_secs(30),
    ) as u64;
    assert_eq!(drained, admitted, "every admitted packet came back out");

    // Phase 3 — quiet: the manager retires the extra shard.
    let deadline = Instant::now() + Duration::from_secs(30);
    let calmed = loop {
        manager.drive(&host);
        let _ = host.poll_egress_burst(16);
        if host.num_shards() == 1 && !host.is_retiring() {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::yield_now();
    };
    assert!(calmed, "the quiet phase never retired the extra shard");
    assert!(manager.shard_retires() >= 1);

    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0, "no silent drops anywhere");
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.transmitted, admitted);
    host.shutdown();
}

/// **Regression (NF state loss on replica scale-down):** retiring a
/// replica of a service hands its per-flow NF state to a surviving
/// replica of the same service — previously the draining replica's state
/// was silently dropped with it. Counters pin the flow once the
/// *combined* (pre-handoff + post-handoff) count reaches the threshold,
/// so the pin only fires if the state actually migrated; and the
/// `nf_state_import_drops` counter must stay zero.
#[test]
fn scale_down_hands_nf_state_to_surviving_replica() {
    let worker = ServiceId::new(1);
    let host = ThreadedHost::start(
        two_port_table(worker),
        vec![
            (
                worker,
                Box::new(CounterPinNf::new(worker, 6)) as Box<dyn NetworkFunction>,
            ),
            (
                worker,
                Box::new(CounterPinNf::new(worker, 6)) as Box<dyn NetworkFunction>,
            ),
        ],
        ThreadedHostConfig::default(),
    );

    // Warm several flows to a count of 3 — flow-hash load balancing
    // spreads them over both replicas, so the retiring replica holds live
    // counter state when it drains.
    let flows: Vec<u16> = (0..8).collect();
    for _ in 0..3 {
        for &flow in &flows {
            assert!(host.inject(packet(flow)).is_admitted());
        }
    }
    assert_eq!(
        drain(&host, 3 * flows.len(), Duration::from_secs(10)),
        3 * flows.len(),
        "warm-up packets all egress"
    );

    // Scale down. The draining replica exports all of its per-flow state
    // at drain-exit and the worker imports it into the survivor; the
    // handoff counter proves the path ran, the import-drop counter proves
    // nothing was discarded.
    assert!(host.remove_nf_replica(0, worker));
    assert!(
        wait_for(&host, Duration::from_secs(10), || host
            .stats()
            .snapshot()
            .nf_state_handoffs
            > 0),
        "the retiring replica's state is handed to the survivor"
    );

    // Three more packets per flow: the survivor's merged counts cross the
    // threshold of 6 and every flow gets pinned to port 2 — which can only
    // happen if the first three counts survived the scale-down.
    for _ in 0..3 {
        for &flow in &flows {
            assert!(host.inject(packet(flow)).is_admitted());
        }
    }
    assert_eq!(
        drain(&host, 3 * flows.len(), Duration::from_secs(10)),
        3 * flows.len()
    );
    for &flow in &flows {
        assert!(host.inject(packet(flow)).is_admitted());
    }
    let pinned = {
        let mut outputs = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while outputs.len() < flows.len() && Instant::now() < deadline {
            outputs.extend(host.poll_egress_burst(16));
            std::thread::yield_now();
        }
        outputs
    };
    assert_eq!(pinned.len(), flows.len());
    assert!(
        pinned.iter().all(|out| out.port == 2),
        "every flow forwards on the pinned port after the handoff"
    );

    let snap = host.stats().snapshot();
    assert_eq!(snap.nf_state_import_drops, 0, "no state discarded");
    assert!(snap.nf_state_handoffs >= 1);
    host.shutdown();
}
