//! End-to-end tests of the sharded threaded runtime: flow-hash steering
//! invariants and credit-based ingress backpressure.

use sdnfv::dataplane::{
    shard_for_flow, InjectResult, OverflowPolicy, ThreadedHost, ThreadedHostConfig,
};
use sdnfv::flowtable::{ServiceId, SharedFlowTable};
use sdnfv::graph::{catalog, CompileOptions};
use sdnfv::nf::nfs::ComputeNf;
use sdnfv::nf::{NetworkFunction, NfContext, Verdict};
use sdnfv::proto::flow::FlowKey;
use sdnfv::proto::packet::{Packet, PacketBuilder};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A read-only NF that records which shard processed each flow.
struct ShardRecorder {
    seen: Arc<Mutex<BTreeMap<FlowKey, BTreeSet<usize>>>>,
}

impl NetworkFunction for ShardRecorder {
    fn name(&self) -> &str {
        "shard-recorder"
    }

    fn process(&mut self, packet: &Packet, ctx: &mut NfContext) -> Verdict {
        if let Some(key) = packet.flow_key() {
            self.seen
                .lock()
                .unwrap()
                .entry(key)
                .or_default()
                .insert(ctx.shard());
        }
        Verdict::Default
    }
}

/// A deterministic LCG standing in for proptest's generators (the real
/// `proptest` crate is unavailable offline): hundreds of pseudo-random
/// 5-tuples exercise the steering invariant the way a property test would.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn random_packet(lcg: &mut Lcg) -> Packet {
    let src = (lcg.next() % 200) as u8 + 1;
    let dst = (lcg.next() % 50) as u8 + 1;
    let src_port = (lcg.next() % 512) as u16 + 1024;
    let dst_port = if lcg.next().is_multiple_of(2) {
        80
    } else {
        443
    };
    PacketBuilder::udp()
        .src_ip([10, 0, 0, src])
        .dst_ip([10, 1, 0, dst])
        .src_port(src_port)
        .dst_port(dst_port)
        .ingress_port(0)
        .total_size(256)
        .build()
}

fn drain(host: &ThreadedHost, expected: usize) -> usize {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut received = 0;
    while received < expected && Instant::now() < deadline {
        let got = host.poll_egress_burst(64).len();
        if got == 0 {
            std::thread::yield_now();
        }
        received += got;
    }
    received
}

/// Property: every packet of a flow lands on exactly one shard, and that
/// shard is the one `shard_for_flow` predicts.
#[test]
fn all_packets_of_a_flow_land_on_one_shard() {
    const NUM_SHARDS: usize = 4;
    let (graph, ids) = catalog::chain(&[("recorder", true)]);
    let table = SharedFlowTable::new();
    for rule in graph.compile(&CompileOptions::default()) {
        table.insert(rule);
    }
    let seen: Arc<Mutex<BTreeMap<FlowKey, BTreeSet<usize>>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![(
                ids[0],
                Box::new(ShardRecorder {
                    seen: Arc::clone(&seen),
                }) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: NUM_SHARDS,
            ..ThreadedHostConfig::default()
        },
    );

    // ~600 pseudo-random packets over a few hundred distinct flows, each
    // flow injected several times across separate bursts.
    let mut lcg = Lcg(0x5d0f_a7e5_9e37_79b9);
    let mut packets: Vec<Packet> = Vec::new();
    for _ in 0..200 {
        let pkt = random_packet(&mut lcg);
        for _ in 0..3 {
            packets.push(pkt.clone());
        }
    }
    let total = packets.len();
    let mut expected: BTreeMap<FlowKey, usize> = BTreeMap::new();
    for pkt in &packets {
        let key = pkt.flow_key().expect("udp packet");
        expected.insert(key, shard_for_flow(&key, NUM_SHARDS));
    }

    let mut admitted = 0;
    let mut drained_early = 0;
    for chunk in packets.chunks(32) {
        let mut pending = chunk.to_vec();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !pending.is_empty() && Instant::now() < deadline {
            let outcome = host.inject_burst(pending);
            admitted += outcome.admitted;
            pending = outcome.throttled;
            if !pending.is_empty() {
                drained_early += host.poll_egress_burst(64).len();
            }
        }
        assert!(pending.is_empty(), "injection stalled");
    }
    assert_eq!(admitted, total);
    assert_eq!(drained_early + drain(&host, total - drained_early), total);

    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), expected.len(), "every flow was recorded");
    for (key, shards) in seen.iter() {
        assert_eq!(
            shards.len(),
            1,
            "flow {key} was processed on multiple shards: {shards:?}"
        );
        let shard = *shards.iter().next().unwrap();
        assert_eq!(
            shard, expected[key],
            "flow {key} landed on shard {shard}, steering predicts {}",
            expected[key]
        );
    }
    // More than one shard actually carried traffic.
    let used: BTreeSet<usize> = seen.values().flatten().copied().collect();
    assert!(used.len() > 1, "traffic spread over shards: {used:?}");
    host.shutdown();
}

/// Property: a flooded host under backpressure throttles (handing packets
/// back) and never silently drops — every admitted packet comes back out.
#[test]
fn flooded_host_throttles_instead_of_dropping() {
    let (graph, ids) = catalog::chain(&[("slow", true)]);
    let table = SharedFlowTable::new();
    for rule in graph.compile(&CompileOptions::default()) {
        table.insert(rule);
    }
    let host = ThreadedHost::start_sharded(
        table,
        |_shard| {
            vec![(
                ids[0],
                // Enough per-packet work that injection outruns the chain.
                Box::new(ComputeNf::new(2000)) as Box<dyn NetworkFunction>,
            )]
        },
        ThreadedHostConfig {
            num_shards: 2,
            nf_ring_capacity: 128,
            shard_credits: 64,
            egress_capacity: 128,
            overflow_policy: OverflowPolicy::Backpressure,
            ..ThreadedHostConfig::default()
        },
    );
    assert_eq!(host.credit_capacity(), Some(64));

    let mut admitted = 0u64;
    let mut throttled_returns = 0u64;
    let mut drained = 0u64;
    let mut flow = 0u16;
    // Sustained overload: offer far more than the pipeline can hold, only
    // draining occasionally.
    for round in 0..200 {
        let burst: Vec<Packet> = (0..32)
            .map(|_| {
                flow = flow.wrapping_add(1);
                PacketBuilder::udp()
                    .src_ip([10, 0, 0, 1])
                    .dst_ip([10, 0, 0, 2])
                    .src_port(1024 + (flow % 256))
                    .dst_port(80)
                    .ingress_port(0)
                    .total_size(256)
                    .build()
            })
            .collect();
        let outcome = host.inject_burst(burst);
        admitted += outcome.admitted as u64;
        throttled_returns += outcome.throttled.len() as u64;
        assert_eq!(outcome.dropped, 0, "backpressure must never drop");
        if round % 8 == 0 {
            drained += host.poll_egress_burst(64).len() as u64;
        }
    }
    assert!(
        throttled_returns > 0,
        "sustained overload must throttle some injections"
    );

    // Drain everything still in flight: zero silent drops means every
    // admitted packet is eventually transmitted.
    drained += drain(&host, (admitted - drained) as usize) as u64;
    assert_eq!(drained, admitted, "every admitted packet came back out");

    let snap = host.stats().snapshot();
    assert_eq!(snap.overflow_drops, 0, "no silent overflow drops");
    assert_eq!(snap.dropped, 0, "no verdict drops in this chain");
    assert_eq!(snap.received, admitted);
    assert_eq!(snap.transmitted, admitted);
    assert_eq!(
        snap.throttled, throttled_returns,
        "every rejected injection is surfaced as Throttled"
    );

    // With the pipeline idle again, every credit is back in both gates.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let restored =
            (0..host.num_shards()).all(|shard| host.available_credits(shard) == Some(64));
        if restored || Instant::now() > deadline {
            break;
        }
        std::thread::yield_now();
    }
    for shard in 0..host.num_shards() {
        assert_eq!(
            host.available_credits(shard),
            Some(64),
            "credits leaked on shard {shard}"
        );
    }
    host.shutdown();
}

/// The explicit drop policy still drops (and counts) instead of throttling.
#[test]
fn drop_policy_surfaces_ingress_drops() {
    let table = SharedFlowTable::new();
    table.insert(sdnfv::flowtable::FlowRule::new(
        sdnfv::flowtable::FlowMatch::at_step(sdnfv::flowtable::RulePort::Nic(0)),
        vec![sdnfv::flowtable::Action::ToPort(1)],
    ));
    let host = ThreadedHost::start(
        table,
        vec![] as Vec<(ServiceId, Box<dyn NetworkFunction>)>,
        ThreadedHostConfig {
            ingress_capacity: 8,
            egress_capacity: 8,
            overflow_policy: OverflowPolicy::Drop,
            ..ThreadedHostConfig::default()
        },
    );
    let mut dropped = 0u64;
    for i in 0..400u16 {
        match host.inject(
            PacketBuilder::udp()
                .src_port(1024 + i)
                .ingress_port(0)
                .build(),
        ) {
            InjectResult::Dropped => dropped += 1,
            InjectResult::Admitted => {}
            InjectResult::Throttled(_) => panic!("drop policy never throttles"),
        }
    }
    assert!(dropped > 0);
    assert!(host.stats().snapshot().overflow_drops >= dropped);
    host.shutdown();
}
